//! Fault-tolerant serving: the resilience layer over the deterministic
//! batcher.
//!
//! [`simulate_ft`] extends the virtual-clock batching simulation of
//! [`crate::batcher`] with everything that goes wrong in production —
//! replica crashes, latency degradation, stragglers, transient response
//! corruption — as declared by a seeded `swfault` [`ServeFaultPlan`].
//! Everything stays a pure function of the trace, the latency model, the
//! configuration and the plan seed, so outcomes are byte-identical
//! across reruns, plan replays and functional backends.
//!
//! The moving parts, per the design doc's §10:
//!
//! * **Health state machine** per CG replica:
//!   `Healthy → Degraded → Dead → Rewarming → Healthy`. A corrupted
//!   (Fletcher-64 mismatch) or deadline-late response marks its replica
//!   `Degraded`; a deadline timeout with no response at all marks it
//!   `Dead`; a dead replica re-warms by reloading its frozen snapshot
//!   (cost modeled like a checkpoint read-back) and rejoins `Healthy`.
//!   A degraded replica serves a probation of clean on-time batches to
//!   recover.
//! * **Deadline-aware bounded retry with failover**: requests of a lost
//!   or corrupted batch re-enter the queue (after a seeded
//!   decorrelated-jitter backoff, charged to the virtual clock) and are
//!   re-dispatched — necessarily to a different, live replica when the
//!   original died — but only while their per-request deadline
//!   (`arrival + slo`) still covers an execution; otherwise they are
//!   shed. Served requests therefore meet the SLO *by construction*,
//!   faults or not.
//! * **Hedged dispatch**: a batch headed to a `Degraded` replica is
//!   raced against a second copy on an idle `Healthy` replica when one
//!   exists; the first clean response wins, the loser is just charged
//!   utilization.
//! * **Brown-out degradation** under capacity loss, in escalating tiers:
//!   with any replica down the coalescing horizon shrinks (less
//!   batching latency, tier 1); at ≤ 50% capacity the batch bucket is
//!   capped (smaller worst-case execution widens every queueing budget,
//!   tier 2); at ≤ 25% capacity the lowest request tiers are shed at
//!   admission so paying traffic keeps its SLO (tier 3).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use swfault::serve::{ServeFaultReport, ServeFaultSession};
use swprof::ServeHealthCounters;

use crate::batcher::{BatchConfig, BatchRecord, Request, ServeOutcome, ServedRequest};
use crate::error::ServeError;

/// Replica health, as observed by the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Healthy,
    /// Produced a corrupted or deadline-late response recently; still
    /// dispatched to (with hedging) until probation clears it.
    Degraded,
    /// Deadline timeout fired with no response: presumed crashed.
    Dead,
    /// Reloading its frozen snapshot before rejoining.
    Rewarming,
}

/// One recorded health transition of the state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthTransition {
    pub replica: usize,
    /// Virtual time of the transition.
    pub at: f64,
    pub to: Health,
}

/// Escalating brown-out responses to capacity loss. The thresholds are
/// fixed fractions of healthy replicas (any loss / ≤ 50% / ≤ 25%); the
/// knobs say what each tier does.
#[derive(Debug, Clone, Copy)]
pub struct BrownoutPolicy {
    /// Tier 1 — multiply the coalescing timeout by this factor while any
    /// replica is down (trade batch efficiency for queueing headroom).
    pub horizon_shrink: f64,
    /// Tier 2 — cap `max_batch` at this fraction (rounded up, min 1)
    /// while ≤ 50% of replicas are live (smaller worst-case execution
    /// widens every request's queueing budget).
    pub batch_cap_frac: f64,
    /// Tier 3 — while ≤ 25% of replicas are live, shed requests with
    /// `tier <` this at admission (lowest tiers first).
    pub shed_below_tier: u8,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            horizon_shrink: 0.5,
            batch_cap_frac: 0.5,
            shed_below_tier: 1,
        }
    }
}

/// Configuration of the resilience layer.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Total dispatch attempts per request (1 = no retry).
    pub max_attempts: u32,
    /// Race suspect (Degraded) replicas against an idle healthy one.
    pub hedge: bool,
    /// Virtual seconds a dead replica spends reloading its frozen
    /// snapshot before rejoining — model with the same striped-
    /// filesystem read-back the training checkpoints pay (see
    /// [`crate::FrozenGraph::snapshot_bytes`]).
    pub rewarm_s: f64,
    /// Clean on-time winner batches a Degraded replica must serve before
    /// it is Healthy again.
    pub probation: u32,
    pub brownout: BrownoutPolicy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_attempts: 3,
            hedge: true,
            rewarm_s: 0.05,
            probation: 3,
            brownout: BrownoutPolicy::default(),
        }
    }
}

/// Result of a fault-tolerant serving simulation: the plain outcome plus
/// the resilience layer's own accounting.
#[derive(Debug, Clone)]
pub struct FtServeOutcome {
    /// Served/shed/batches/busy/makespan, as in the fault-free batcher.
    /// `shed` holds every dropped request id regardless of reason.
    pub outcome: ServeOutcome,
    /// Shed counts grouped by request tier, ascending.
    pub shed_by_tier: Vec<(u8, u64)>,
    /// Every health transition, in virtual-time order.
    pub transitions: Vec<HealthTransition>,
    /// Health/retry/hedge/shed counters (exported through swprof).
    pub health: ServeHealthCounters,
    /// The fault session's injection counters.
    pub faults: ServeFaultReport,
}

impl FtServeOutcome {
    /// Final health of `replica` after the trace drained.
    pub fn final_health(&self, replica: usize) -> Health {
        self.transitions
            .iter()
            .rev()
            .find(|t| t.replica == replica)
            .map(|t| t.to)
            .unwrap_or(Health::Healthy)
    }
}

/// A queued request attempt.
#[derive(Debug, Clone, Copy)]
struct QReq {
    req: Request,
    /// Dispatch attempts already consumed.
    attempts: u32,
    /// Earliest virtual time this attempt may dispatch (arrival, or
    /// retry time plus backoff).
    ready: f64,
}

/// One execution copy in flight on a replica.
#[derive(Debug, Clone, Copy)]
struct Flight {
    batch: usize,
    replica: usize,
    seq: u64,
    dispatch: f64,
    /// Actual completion (with degradation/straggle stretch); only
    /// meaningful when `lost` is false.
    completion: f64,
    lost: bool,
    corrupted: bool,
    hedge: bool,
}

/// One logical batch of requests, possibly executing as several copies.
#[derive(Debug, Clone)]
struct LogicalBatch {
    reqs: Vec<QReq>,
    copies: usize,
    failed: usize,
    resolved: bool,
    /// Latest failure-known time across copies (requeue happens when the
    /// last copy is known to have failed).
    last_fail: f64,
    /// True when some failed copy was a dead replica (failover).
    dead_copy: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A flight completes (possibly with a corrupted payload).
    FlightDone(usize),
    /// A lost flight's deadline timeout fires: replica presumed dead.
    FlightDead(usize),
    /// A rewarming replica rejoins healthy.
    Rewarmed(usize),
    /// A request arrives.
    Arrive(usize),
    /// Re-evaluate dispatch (coalescing timer / retry backoff expiry).
    Wake,
}

/// Heap key: (time, class, insertion seq) with total f64 order — the
/// deterministic processing order the byte-identical replays rely on.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: f64,
    class: u8,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .total_cmp(&self.at)
            .then(other.class.cmp(&self.class))
            .then(other.seq.cmp(&self.seq))
    }
}

struct Sim<'a> {
    cfg: BatchConfig,
    res: ResilienceConfig,
    session: &'a mut ServeFaultSession,
    latency: &'a mut dyn FnMut(usize) -> f64,
    replicas: usize,

    state: Vec<Health>,
    free: Vec<f64>,
    crash_pending: Vec<Option<f64>>,
    clean_streak: Vec<u32>,

    queue: VecDeque<QReq>,
    trace: Vec<Request>,
    flights: Vec<Flight>,
    batches_tbl: Vec<LogicalBatch>,
    heap: BinaryHeap<Scheduled>,
    ev_seq: u64,
    batch_seq: u64,

    out: ServeOutcome,
    shed_by_tier: Vec<(u8, u64)>,
    transitions: Vec<HealthTransition>,
    health: ServeHealthCounters,
}

impl<'a> Sim<'a> {
    fn push_ev(&mut self, at: f64, ev: Ev) {
        let class = match ev {
            Ev::FlightDone(_) => 0,
            Ev::FlightDead(_) => 1,
            Ev::Rewarmed(_) => 2,
            Ev::Arrive(_) => 3,
            Ev::Wake => 4,
        };
        let seq = self.ev_seq;
        self.ev_seq += 1;
        self.heap.push(Scheduled { at, class, seq, ev });
    }

    fn record(&mut self, replica: usize, at: f64, to: Health) {
        self.state[replica] = to;
        self.transitions.push(HealthTransition { replica, at, to });
    }

    fn live(&self, r: usize) -> bool {
        matches!(self.state[r], Health::Healthy | Health::Degraded)
    }

    fn live_count(&self) -> usize {
        (0..self.replicas).filter(|&r| self.live(r)).count()
    }

    /// Brown-out-adjusted (timeout, max_batch) for the current capacity.
    fn effective(&mut self) -> (f64, usize) {
        let frac = self.live_count() as f64 / self.replicas as f64;
        let mut timeout = self.cfg.timeout;
        let mut max_batch = self.cfg.max_batch;
        if frac < 1.0 {
            timeout *= self.res.brownout.horizon_shrink;
        }
        if frac <= 0.5 {
            max_batch =
                ((max_batch as f64 * self.res.brownout.batch_cap_frac).ceil() as usize).max(1);
        }
        (timeout, max_batch)
    }

    /// Is admission currently shedding `tier` (brown-out tier 3)?
    fn brownout_sheds(&self, tier: u8) -> bool {
        let frac = self.live_count() as f64 / self.replicas as f64;
        frac <= 0.25 && tier < self.res.brownout.shed_below_tier
    }

    fn shed(&mut self, req: Request, brownout: bool) {
        self.out.shed.push(req.id);
        match self.shed_by_tier.binary_search_by_key(&req.tier, |e| e.0) {
            Ok(i) => self.shed_by_tier[i].1 += 1,
            Err(i) => self.shed_by_tier.insert(i, (req.tier, 1)),
        }
        if brownout {
            self.health.brownout_shed += 1;
        } else {
            self.health.deadline_shed += 1;
        }
    }

    fn mark_degraded(&mut self, r: usize, at: f64) {
        if self.state[r] == Health::Healthy {
            self.health.degraded_transitions += 1;
            self.record(r, at, Health::Degraded);
        }
        self.clean_streak[r] = 0;
    }

    /// Insert an attempt keeping the queue sorted by (arrival, id) —
    /// FIFO admission order survives retries and rejoins.
    fn enqueue(&mut self, q: QReq) {
        let pos = self
            .queue
            .iter()
            .position(|e| (e.req.arrival, e.req.id) > (q.req.arrival, q.req.id))
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, q);
    }

    /// All copies of `batch` failed: retry within the deadline budget or
    /// shed. `now` is when the last copy's failure became known.
    fn fail_batch(&mut self, bi: usize, now: f64) {
        let b = self.batches_tbl[bi].clone();
        debug_assert!(!b.resolved && b.failed == b.copies);
        if b.dead_copy {
            self.health.failovers += 1;
        }
        // Key the backoff on the logical batch's first flight seq so the
        // whole failed cohort waits out one jittered interval together.
        let seq = self
            .flights
            .iter()
            .find(|f| f.batch == bi)
            .map(|f| f.seq)
            .unwrap_or(0);
        for q in &b.reqs {
            let attempts = q.attempts + 1;
            if attempts >= self.res.max_attempts {
                self.shed(q.req, false);
                continue;
            }
            let backoff = self.session.backoff_s(seq, attempts);
            self.health.retries += 1;
            self.health.backoff_s += backoff;
            self.enqueue(QReq {
                req: q.req,
                attempts,
                ready: now + backoff,
            });
        }
        self.batches_tbl[bi].resolved = true;
        self.push_ev(now, Ev::Wake);
    }

    /// Resolve a clean flight that won its batch: serve every request
    /// still inside its deadline, shed the rest (a served request can
    /// never be late — SLO safety by construction).
    fn resolve_batch(&mut self, fi: usize) {
        let f = self.flights[fi];
        let bi = f.batch;
        let reqs = self.batches_tbl[bi].reqs.clone();
        let mut ids = Vec::with_capacity(reqs.len());
        let mut any_late = false;
        for q in &reqs {
            ids.push(q.req.id);
            if f.completion <= q.req.arrival + self.cfg.slo + 1e-12 {
                self.out.served.push(ServedRequest {
                    id: q.req.id,
                    arrival: q.req.arrival,
                    dispatch: f.dispatch,
                    completion: f.completion,
                    replica: f.replica,
                });
            } else {
                any_late = true;
                self.shed(q.req, false);
            }
        }
        self.out.batches.push(BatchRecord {
            replica: f.replica,
            dispatch: f.dispatch,
            completion: f.completion,
            request_ids: ids,
        });
        self.out.makespan = self.out.makespan.max(f.completion);
        self.batches_tbl[bi].resolved = true;
        if f.hedge {
            self.health.hedge_wins += 1;
        }
        if any_late {
            // The response came back, but slower than the healthy
            // estimate promised: treat the replica as suspect.
            self.mark_degraded(f.replica, f.completion);
        } else if self.state[f.replica] == Health::Degraded {
            self.clean_streak[f.replica] += 1;
            if self.clean_streak[f.replica] >= self.res.probation {
                self.health.recovered_transitions += 1;
                self.record(f.replica, f.completion, Health::Healthy);
            }
        }
    }

    fn on_flight_done(&mut self, fi: usize) {
        let f = self.flights[fi];
        if f.lost {
            return; // lost flights resolve via FlightDead
        }
        if f.corrupted {
            // Fletcher-64 mismatch on the response payload.
            self.mark_degraded(f.replica, f.completion);
            let b = &mut self.batches_tbl[f.batch];
            b.failed += 1;
            b.last_fail = b.last_fail.max(f.completion);
            if !b.resolved && b.failed == b.copies {
                self.fail_batch(f.batch, f.completion);
            }
            return;
        }
        if !self.batches_tbl[f.batch].resolved {
            self.resolve_batch(fi);
        }
        // A clean loser copy needs no bookkeeping: its utilization was
        // charged at dispatch.
    }

    fn on_flight_dead(&mut self, fi: usize, now: f64) {
        let f = self.flights[fi];
        let r = f.replica;
        if let Some(crash_t) = self.crash_pending[r] {
            // Deadline timeout with no response: declare the replica
            // dead and start the re-warm (snapshot read-back).
            self.session.charge_crash();
            self.health.dead_transitions += 1;
            self.health.detect_latency_s += now - crash_t.min(now);
            self.crash_pending[r] = None;
            self.record(r, now, Health::Dead);
            self.record(r, now, Health::Rewarming);
            self.health.rewarm_s += self.res.rewarm_s;
            self.free[r] = now + self.res.rewarm_s;
            self.push_ev(now + self.res.rewarm_s, Ev::Rewarmed(r));
        }
        let b = &mut self.batches_tbl[f.batch];
        b.failed += 1;
        b.dead_copy = true;
        b.last_fail = b.last_fail.max(now);
        if !b.resolved && b.failed == b.copies {
            self.fail_batch(f.batch, now);
        }
    }

    fn on_rewarmed(&mut self, r: usize, now: f64) {
        self.health.rewarms += 1;
        self.clean_streak[r] = 0;
        self.record(r, now, Health::Healthy);
    }

    /// Dispatch one execution copy of `batch` on `replica` at `now`.
    fn launch(&mut self, bi: usize, replica: usize, now: f64, base: f64, hedge: bool) {
        let seq = self.batch_seq;
        self.batch_seq += 1;
        self.batches_tbl[bi].copies += 1;
        let crash = self.crash_pending[replica];
        let detect = self.session.detect_timeout_s();
        if let Some(ct) = crash {
            if ct <= now + base * self.session.degrade_factor(replica, now) {
                // The replica dies before this execution completes: the
                // response never arrives. The dispatcher notices when
                // the expected completion plus the deadline slack
                // passes in silence.
                let known = now + base + detect;
                self.flights.push(Flight {
                    batch: bi,
                    replica,
                    seq,
                    dispatch: now,
                    completion: f64::INFINITY,
                    lost: true,
                    corrupted: false,
                    hedge,
                });
                self.free[replica] = known;
                self.push_ev(known, Ev::FlightDead(self.flights.len() - 1));
                return;
            }
        }
        let factor = self.session.charge_execution(replica, seq, now);
        let exec = base * factor;
        let corrupted = self.session.charge_response(replica, seq, now);
        let completion = now + exec;
        self.flights.push(Flight {
            batch: bi,
            replica,
            seq,
            dispatch: now,
            completion,
            lost: false,
            corrupted,
            hedge,
        });
        self.out.busy[replica] += exec;
        self.free[replica] = completion;
        self.push_ev(completion, Ev::FlightDone(self.flights.len() - 1));
    }

    /// Pick a dispatchable replica at `now`: earliest free among the
    /// live ones, lowest index on ties — the base batcher's rotation.
    /// Degraded replicas stay in it (hedging covers the risk); Dead and
    /// Rewarming ones are out until they rejoin.
    fn pick_replica(&self, now: f64) -> Option<usize> {
        (0..self.replicas)
            .filter(|&r| self.live(r) && self.free[r] <= now)
            .min_by(|&a, &b| self.free[a].total_cmp(&self.free[b]).then(a.cmp(&b)))
    }

    /// Dispatch every batch that can go at `now`; schedule wakes for the
    /// decisions that must wait.
    fn try_dispatch(&mut self, now: f64) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            let (eff_timeout, eff_max_batch) = self.effective();
            let eff_worst = (self.latency)(eff_max_batch);
            // Shed from the front anything whose deadline no longer
            // covers an execution (deadline-aware retry bound included:
            // an expired retry dies here).
            while let Some(front) = self.queue.front().copied() {
                let start = now.max(front.ready);
                if front.req.arrival + self.cfg.slo - eff_worst < start {
                    self.queue.pop_front();
                    self.shed(front.req, false);
                } else {
                    break;
                }
            }
            let Some(front) = self.queue.front().copied() else {
                return;
            };
            if front.ready > now {
                // Head-of-line retry still backing off (strict FIFO: no
                // overtaking, the backoff is microseconds).
                self.push_ev(front.ready, Ev::Wake);
                return;
            }
            let Some(replica) = self.pick_replica(now) else {
                // Every live replica is busy; a FlightDone/Rewarmed
                // event will call back.
                return;
            };
            // Coalesce: wait for the batch to fill until the shrunken
            // horizon or the front's own budget runs out, whichever is
            // first.
            let anchor = front.req.arrival.max(front.ready);
            let deadline_latest = front.req.arrival + self.cfg.slo - eff_worst;
            let coalesce_until = (anchor + eff_timeout).min(deadline_latest);
            if self.queue.len() < eff_max_batch && now < coalesce_until {
                self.push_ev(coalesce_until, Ev::Wake);
                return;
            }
            // Form and dispatch the batch.
            let size = self.queue.len().min(eff_max_batch);
            let mut reqs = Vec::with_capacity(size);
            for _ in 0..size {
                reqs.push(self.queue.pop_front().unwrap());
            }
            let base = (self.latency)(size);
            self.batches_tbl.push(LogicalBatch {
                reqs,
                copies: 0,
                failed: 0,
                resolved: false,
                last_fail: 0.0,
                dead_copy: false,
            });
            let bi = self.batches_tbl.len() - 1;
            self.launch(bi, replica, now, base, false);
            // Hedge a suspect primary onto an idle healthy replica when
            // the budget covers a second copy (it does by construction:
            // dispatch implies deadline >= now + eff_worst).
            if self.res.hedge && self.state[replica] == Health::Degraded {
                let second = (0..self.replicas)
                    .filter(|&r| {
                        r != replica && self.state[r] == Health::Healthy && self.free[r] <= now
                    })
                    .min_by(|&a, &b| self.free[a].total_cmp(&self.free[b]).then(a.cmp(&b)));
                if let Some(r2) = second {
                    self.health.hedges += 1;
                    self.launch(bi, r2, now, base, true);
                }
            }
        }
    }

    fn run(mut self) -> FtServeOutcome {
        for i in 0..self.trace.len() {
            let at = self.trace[i].arrival;
            self.push_ev(at, Ev::Arrive(i));
        }
        while let Some(s) = self.heap.pop() {
            match s.ev {
                Ev::FlightDone(fi) => self.on_flight_done(fi),
                Ev::FlightDead(fi) => self.on_flight_dead(fi, s.at),
                Ev::Rewarmed(r) => self.on_rewarmed(r, s.at),
                Ev::Arrive(i) => {
                    let req = self.trace[i];
                    if self.brownout_sheds(req.tier) {
                        self.shed(req, true);
                    } else {
                        self.enqueue(QReq {
                            req,
                            attempts: 0,
                            ready: req.arrival,
                        });
                    }
                }
                Ev::Wake => {}
            }
            self.try_dispatch(s.at);
        }
        debug_assert!(self.queue.is_empty(), "event loop drained with queued work");
        FtServeOutcome {
            outcome: self.out,
            shed_by_tier: self.shed_by_tier,
            transitions: self.transitions,
            health: self.health,
            faults: self.session.report,
        }
    }
}

/// Simulate fault-tolerant serving of `trace` on `replicas` replicas
/// under the fault plan walked by `session`. `latency` maps a batch
/// size to its healthy execution seconds (monotone); all stretch factors
/// come from the plan. See the module docs for the policy.
pub fn simulate_ft(
    trace: &[Request],
    replicas: usize,
    cfg: &BatchConfig,
    res: &ResilienceConfig,
    session: &mut ServeFaultSession,
    latency: &mut dyn FnMut(usize) -> f64,
) -> Result<FtServeOutcome, ServeError> {
    if replicas == 0 {
        return Err(ServeError::NoReplicas);
    }
    if cfg.max_batch == 0 {
        return Err(ServeError::ZeroMaxBatch);
    }
    let worst = latency(cfg.max_batch);
    let budget = cfg.slo - worst;
    if budget < 0.0 {
        return Err(ServeError::InfeasibleSlo {
            slo: cfg.slo,
            max_batch: cfg.max_batch,
            worst,
        });
    }
    if (0..replicas).all(|r| session.crash_time(r).is_some_and(|t| t <= 0.0)) {
        return Err(ServeError::AllReplicasDead);
    }
    let mut trace: Vec<Request> = trace.to_vec();
    trace.sort_by(|a, b| {
        a.arrival
            .partial_cmp(&b.arrival)
            .unwrap_or(Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    let crash_pending: Vec<Option<f64>> = (0..replicas).map(|r| session.crash_time(r)).collect();
    let sim = Sim {
        cfg: *cfg,
        res: *res,
        session,
        latency,
        replicas,
        state: vec![Health::Healthy; replicas],
        free: vec![0.0; replicas],
        crash_pending,
        clean_streak: vec![0; replicas],
        queue: VecDeque::new(),
        trace,
        flights: Vec::new(),
        batches_tbl: Vec::new(),
        heap: BinaryHeap::new(),
        ev_seq: 0,
        batch_seq: 0,
        out: ServeOutcome {
            busy: vec![0.0; replicas],
            queue_budget: budget,
            ..Default::default()
        },
        shed_by_tier: Vec::new(),
        transitions: Vec::new(),
        health: ServeHealthCounters::default(),
    };
    Ok(sim.run())
}
