//! Frozen-graph executor: runs an optimized [`FrozenGraph`] on one core
//! group through `swbackend::dispatch`, so the same engine serves the
//! `Sw26010` mesh, `HostNative` threads and `TimingOnly` alike.
//!
//! Batch sizes are bucketed to powers of two: the `Input` shape bakes
//! the batch into every downstream blob, so the engine keeps one lazily
//! built net per bucket and pads functional batches with zero rows.
//! Latency estimates always come from a `TimingOnly` twin — identical
//! across value backends, which is what makes the batcher's virtual
//! clock backend-independent.
//!
//! Every fallible path returns a typed [`ServeError`] value — injected
//! faults and malformed inputs surface as data, never as aborts.

use sw26010::{CoreGroup, ExecMode, SimTime};
use swcaffe_core::{Net, Phase};

use crate::error::ServeError;
use crate::graph::{def_with_batch, FrozenGraph};

/// Round a batch size up to its serving bucket (next power of two).
pub fn bucket(batch: usize) -> usize {
    batch.max(1).next_power_of_two()
}

/// One core group executing a frozen graph.
pub struct Engine {
    graph: FrozenGraph,
    mode: ExecMode,
    cg: CoreGroup,
    timing_cg: CoreGroup,
    nets: Vec<(usize, Net)>,
    latencies: Vec<(usize, f64)>,
}

impl Engine {
    pub fn new(graph: FrozenGraph, mode: ExecMode) -> Engine {
        Engine {
            graph,
            mode,
            cg: CoreGroup::new(mode),
            timing_cg: CoreGroup::new(ExecMode::TimingOnly),
            nets: Vec::new(),
            latencies: Vec::new(),
        }
    }

    pub fn graph(&self) -> &FrozenGraph {
        &self.graph
    }

    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Simulated seconds one forward pass of `batch` images takes,
    /// evaluated at the batch's bucket on the `TimingOnly` twin and
    /// memoized per bucket. Fails with [`ServeError::Graph`] if the
    /// frozen def no longer builds at that bucket.
    pub fn latency_seconds(&mut self, batch: usize) -> Result<f64, ServeError> {
        let b = bucket(batch);
        if let Some(&(_, s)) = self.latencies.iter().find(|(k, _)| *k == b) {
            return Ok(s);
        }
        let def = def_with_batch(&self.graph.def, b);
        let mut net = Net::from_def_mode(&def, ExecMode::TimingOnly).map_err(ServeError::Graph)?;
        net.set_phase(Phase::Test);
        let before = self.timing_cg.elapsed();
        net.forward(&mut self.timing_cg);
        let s = (self.timing_cg.elapsed() - before).seconds();
        self.latencies.push((b, s));
        Ok(s)
    }

    /// [`Engine::latency_seconds`] as a [`SimTime`].
    pub fn latency(&mut self, batch: usize) -> Result<SimTime, ServeError> {
        Ok(SimTime::from_seconds(self.latency_seconds(batch)?))
    }

    /// Run `batch` images (row-major, `graph.per_image` floats each)
    /// through the frozen graph and return their output rows. Pads the
    /// batch with zero rows up to its bucket. Requires a functional
    /// backend (`Sw26010` functional or `HostNative`).
    pub fn infer(&mut self, batch: usize, input: &[f32]) -> Result<Vec<f32>, ServeError> {
        if !self.mode.is_functional() {
            return Err(ServeError::NonFunctionalBackend { mode: self.mode });
        }
        let per = self.graph.per_image;
        if input.len() != batch * per {
            return Err(ServeError::InputShape {
                got: input.len(),
                batch,
                per_image: per,
            });
        }
        let b = bucket(batch);
        let idx = match self.nets.iter().position(|(k, _)| *k == b) {
            Some(i) => i,
            None => {
                let def = def_with_batch(&self.graph.def, b);
                let mut net = Net::from_def_mode(&def, self.mode).map_err(ServeError::Graph)?;
                net.set_phase(Phase::Test);
                net.load_layer_snapshots(&self.graph.weights)
                    .map_err(ServeError::Snapshot)?;
                self.nets.push((b, net));
                self.nets.len() - 1
            }
        };
        let net = &mut self.nets[idx].1;
        let mut padded = vec![0.0f32; b * per];
        padded[..input.len()].copy_from_slice(input);
        net.set_input(&self.graph.input, &padded);
        net.forward(&mut self.cg);
        let out = net.blob(&self.graph.output);
        let data = out.data();
        let per_out = data.len() / b;
        Ok(data[..batch * per_out].to_vec())
    }

    /// [`Engine::infer`], stamped with the Fletcher-64 checksum of the
    /// response payload — the integrity tag the cluster's health state
    /// machine verifies on every reply, so a response corrupted in
    /// flight is detected (and retried) instead of handed to a client.
    pub fn infer_checked(
        &mut self,
        batch: usize,
        input: &[f32],
    ) -> Result<(Vec<f32>, u64), ServeError> {
        let out = self.infer(batch, input)?;
        let tag = swfault::checksum(&out);
        Ok((out, tag))
    }
}

/// Verify a response payload against its Fletcher-64 tag.
pub fn verify_response(payload: &[f32], tag: u64) -> bool {
    swfault::checksum(payload) == tag
}
