//! # swserve — batched multi-CG inference serving for swCaffe
//!
//! Five pieces, composable and individually testable:
//!
//! - [`graph`]: freeze a trained `Net` into a [`FrozenGraph`] — weights
//!   captured, training-only nodes removed, inverse transforms folded,
//!   conv+BN+ReLU chains fused (bit-identically), and a topological
//!   eval schedule computed.
//! - [`engine`]: execute a frozen graph on one core group through
//!   `swbackend::dispatch` — the same engine runs on the simulated
//!   SW26010 mesh, host-native threads, or timing-only.
//! - [`batcher`]: a deterministic virtual-time dynamic batcher that
//!   coalesces an open-loop arrival stream into batches under a latency
//!   SLO and dispatches them across replicas.
//! - [`resilient`]: the fault-tolerance layer over the batcher — per-
//!   replica health state machine, deadline-aware retry with failover,
//!   hedged dispatch, snapshot re-warm and tiered brown-out degradation,
//!   all driven by a seeded `swfault` serving fault plan.
//! - [`error`]: the typed [`ServeError`] every fallible serving path
//!   returns instead of panicking.
//!
//! [`Cluster`] ties them together: one engine per core group (the
//! chip's four CGs serve as independent replicas, mirroring how
//! `swtrain` uses them as data-parallel trainers), driven by the
//! batcher over a shared virtual clock.

pub mod batcher;
pub mod engine;
pub mod error;
pub mod graph;
pub mod resilient;

pub use batcher::{
    poisson_trace, poisson_trace_tiered, simulate, BatchConfig, Request, ServeOutcome,
};
pub use engine::{bucket, verify_response, Engine};
pub use error::ServeError;
pub use graph::{def_with_batch, optimize, topo_schedule, FrozenGraph, OptimizeStats};
pub use resilient::{
    simulate_ft, BrownoutPolicy, FtServeOutcome, Health, HealthTransition, ResilienceConfig,
};

use sw26010::{arch, ExecMode};
use swfault::serve::{ServeFaultPlan, ServeFaultSession};

/// A chip-level serving cluster: one [`Engine`] replica per core group.
pub struct Cluster {
    engines: Vec<Engine>,
}

impl Cluster {
    /// One replica per core group (the chip's 4 CGs).
    pub fn new(graph: &FrozenGraph, mode: ExecMode) -> Cluster {
        Cluster {
            engines: (0..arch::CORE_GROUPS)
                .map(|_| Engine::new(graph.clone(), mode))
                .collect(),
        }
    }

    pub fn replicas(&self) -> usize {
        self.engines.len()
    }

    pub fn engines_mut(&mut self) -> &mut [Engine] {
        &mut self.engines
    }

    /// Latency model shared by all replicas (they are identical).
    pub fn latency_seconds(&mut self, batch: usize) -> Result<f64, ServeError> {
        self.engines[0].latency_seconds(batch)
    }

    /// Memoized per-bucket latency table covering batches `1..=max`,
    /// indexed by bucket exponent — lets the simulation loops read the
    /// latency model infallibly after one fallible warm-up.
    fn latency_lut(&mut self, max: usize) -> Result<Vec<f64>, ServeError> {
        let top = engine::bucket(max.max(1));
        let mut lut = Vec::new();
        let mut b = 1usize;
        loop {
            lut.push(self.engines[0].latency_seconds(b)?);
            if b >= top {
                break;
            }
            b *= 2;
        }
        Ok(lut)
    }

    /// Drive the batcher over `trace` with this cluster's replicas and
    /// latency model.
    pub fn serve(
        &mut self,
        trace: &[Request],
        cfg: &BatchConfig,
    ) -> Result<ServeOutcome, ServeError> {
        let replicas = self.engines.len();
        let lut = self.latency_lut(cfg.max_batch)?;
        batcher::simulate(trace, replicas, cfg, &mut |b| {
            lut[(engine::bucket(b).trailing_zeros() as usize).min(lut.len() - 1)]
        })
    }

    /// Drive the fault-tolerant batcher over `trace` under `plan`. The
    /// per-request SLO, retry budget and brown-out policy come from
    /// `cfg`/`res`; every fault comes from the seeded plan, so the whole
    /// outcome replays bit-identically.
    pub fn serve_ft(
        &mut self,
        trace: &[Request],
        cfg: &BatchConfig,
        res: &ResilienceConfig,
        plan: &ServeFaultPlan,
    ) -> Result<FtServeOutcome, ServeError> {
        let replicas = self.engines.len();
        let lut = self.latency_lut(cfg.max_batch)?;
        let mut session = ServeFaultSession::new(plan.clone());
        resilient::simulate_ft(trace, replicas, cfg, res, &mut session, &mut |b| {
            lut[(engine::bucket(b).trailing_zeros() as usize).min(lut.len() - 1)]
        })
    }
}
