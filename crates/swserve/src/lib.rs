//! # swserve — batched multi-CG inference serving for swCaffe
//!
//! Three pieces, composable and individually testable:
//!
//! - [`graph`]: freeze a trained `Net` into a [`FrozenGraph`] — weights
//!   captured, training-only nodes removed, inverse transforms folded,
//!   conv+BN+ReLU chains fused (bit-identically), and a topological
//!   eval schedule computed.
//! - [`engine`]: execute a frozen graph on one core group through
//!   `swbackend::dispatch` — the same engine runs on the simulated
//!   SW26010 mesh, host-native threads, or timing-only.
//! - [`batcher`]: a deterministic virtual-time dynamic batcher that
//!   coalesces an open-loop arrival stream into batches under a latency
//!   SLO and dispatches them across replicas.
//!
//! [`Cluster`] ties them together: one engine per core group (the
//! chip's four CGs serve as independent replicas, mirroring how
//! `swtrain` uses them as data-parallel trainers), driven by the
//! batcher over a shared virtual clock.

pub mod batcher;
pub mod engine;
pub mod graph;

pub use batcher::{poisson_trace, simulate, BatchConfig, Request, ServeOutcome};
pub use engine::{bucket, Engine};
pub use graph::{def_with_batch, optimize, topo_schedule, FrozenGraph, OptimizeStats};

use sw26010::{arch, ExecMode};

/// A chip-level serving cluster: one [`Engine`] replica per core group.
pub struct Cluster {
    engines: Vec<Engine>,
}

impl Cluster {
    /// One replica per core group (the chip's 4 CGs).
    pub fn new(graph: &FrozenGraph, mode: ExecMode) -> Cluster {
        Cluster {
            engines: (0..arch::CORE_GROUPS)
                .map(|_| Engine::new(graph.clone(), mode))
                .collect(),
        }
    }

    pub fn replicas(&self) -> usize {
        self.engines.len()
    }

    pub fn engines_mut(&mut self) -> &mut [Engine] {
        &mut self.engines
    }

    /// Latency model shared by all replicas (they are identical).
    pub fn latency_seconds(&mut self, batch: usize) -> f64 {
        self.engines[0].latency_seconds(batch)
    }

    /// Drive the batcher over `trace` with this cluster's replicas and
    /// latency model.
    pub fn serve(&mut self, trace: &[Request], cfg: &BatchConfig) -> Result<ServeOutcome, String> {
        let replicas = self.engines.len();
        let first = &mut self.engines[0];
        batcher::simulate(trace, replicas, cfg, &mut |b| first.latency_seconds(b))
    }
}
