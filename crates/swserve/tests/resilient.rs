//! Fault-tolerant serving properties.
//!
//! The contract under test: with a seeded `swfault` serving plan
//! injecting crashes, degradation, stragglers and response corruption,
//!
//! * every request is accounted for exactly once (served xor shed),
//! * every *served* request meets the SLO — faults shed, never stretch,
//! * the whole outcome (life cycles, batch boundaries, health
//!   transitions, counters) replays bit-identically across reruns,
//!   plan replays and functional backends,
//! * replicas walk the documented state machine: a crashed replica is
//!   detected by deadline timeout, re-warms, and rejoins; a corrupting
//!   or straggling replica degrades and recovers after probation,
//! * capacity loss escalates the brown-out tiers, shedding the lowest
//!   request tiers first.

use sw26010::ExecMode;
use swcaffe_core::models;
use swfault::serve::ServeFaultPlan;
use swserve::batcher::{poisson_trace, poisson_trace_tiered, BatchConfig};
use swserve::graph::optimize;
use swserve::resilient::simulate_ft;
use swserve::{Cluster, FtServeOutcome, Health, ResilienceConfig, ServeError};

fn model_latency(b: usize) -> f64 {
    // Monotone synthetic latency: launch cost plus per-image work.
    0.002 + 0.0001 * b as f64
}

const CFG: BatchConfig = BatchConfig {
    max_batch: 8,
    slo: 0.0112, // 4x the full-batch execution (2.8 ms)
    timeout: 0.0014,
};

/// ~11.4k qps: 4 replicas x 8 per batch / 2.8 ms.
const CAPACITY_QPS: f64 = 4.0 * 8.0 / 0.0028;

fn run_plan(
    trace: &[swserve::Request],
    replicas: usize,
    res: &ResilienceConfig,
    plan: &ServeFaultPlan,
) -> FtServeOutcome {
    let mut session = swfault::serve::ServeFaultSession::new(plan.clone());
    simulate_ft(trace, replicas, &CFG, res, &mut session, &mut model_latency).unwrap()
}

/// Every id appears exactly once across served + shed, and every served
/// request is inside the SLO.
fn assert_invariants(out: &FtServeOutcome, n: usize) {
    let mut ids: Vec<u64> = out.outcome.served.iter().map(|s| s.id).collect();
    ids.extend(&out.outcome.shed);
    ids.sort_unstable();
    let expect: Vec<u64> = (0..n as u64).collect();
    assert_eq!(ids, expect, "each request must be served xor shed, once");
    for s in &out.outcome.served {
        assert!(
            s.latency() <= CFG.slo + 1e-9,
            "req {} served late: {} > SLO {}",
            s.id,
            s.latency(),
            CFG.slo
        );
    }
    // Within-batch FIFO: the queue is kept in (arrival, id) order and
    // never overtaken, so each batch carries consecutive-oldest ids.
    for b in &out.outcome.batches {
        let mut sorted = b.request_ids.clone();
        sorted.sort_unstable();
        assert_eq!(b.request_ids, sorted, "batch ids must be FIFO-ordered");
    }
}

#[test]
fn crash_mid_trace_stays_inside_slo_with_zero_shed() {
    let n = 600;
    let trace = poisson_trace(7, 0.5 * CAPACITY_QPS, n);
    let plan = ServeFaultPlan::new(11)
        .crash(1, 0.03)
        .detect_timeout_s(0.0005)
        .backoff_base_s(20.0e-6);
    let res = ResilienceConfig {
        rewarm_s: 0.02,
        ..ResilienceConfig::default()
    };
    let out = run_plan(&trace, 4, &res, &plan);
    assert_invariants(&out, n);

    // Losing 1 of 4 replicas at 50% load must not shed anything: the
    // lost batch retries on a live replica inside its deadline budget.
    assert!(
        out.outcome.shed.is_empty(),
        "crash at 50% load shed {:?}",
        out.outcome.shed
    );
    assert_eq!(out.faults.crashes, 1);
    assert_eq!(out.health.dead_transitions, 1);
    assert!(out.health.failovers >= 1, "lost batch must fail over");
    assert!(out.health.retries >= 1);
    assert!(out.health.detect_latency_s > 0.0);
    assert_eq!(out.health.rewarms, 1, "replica must re-warm and rejoin");
    assert_eq!(out.final_health(1), Health::Healthy);

    // The dead window is real: no batch runs on replica 1 between the
    // Dead transition and the rejoin.
    let dead_at = out
        .transitions
        .iter()
        .find(|t| t.replica == 1 && t.to == Health::Dead)
        .expect("dead transition recorded")
        .at;
    let back_at = out
        .transitions
        .iter()
        .find(|t| t.replica == 1 && t.to == Health::Healthy)
        .expect("rejoin recorded")
        .at;
    assert!(back_at >= dead_at + res.rewarm_s - 1e-12);
    for b in out.outcome.batches.iter().filter(|b| b.replica == 1) {
        assert!(
            b.dispatch < dead_at || b.dispatch >= back_at,
            "batch dispatched on dead replica at {}",
            b.dispatch
        );
    }
    // And the replica actually rejoined service.
    assert!(
        out.outcome
            .batches
            .iter()
            .any(|b| b.replica == 1 && b.dispatch >= back_at),
        "rejoined replica never served again"
    );
}

#[test]
fn fault_outcomes_replay_bit_identically() {
    let n = 500;
    let trace = poisson_trace(3, 0.6 * CAPACITY_QPS, n);
    let plan = ServeFaultPlan::new(99)
        .crash(2, 0.02)
        .degrade(0, 2.0, 0.01..0.04)
        .straggle(3, 0.3, 4.0, 0.0..0.08)
        .corrupt_output(1, 0.4, 0.01..0.05)
        .detect_timeout_s(0.0004)
        .backoff_base_s(20.0e-6);
    let res = ResilienceConfig::default();
    let a = run_plan(&trace, 4, &res, &plan);
    let b = run_plan(&trace, 4, &res, &plan);
    assert_eq!(a.outcome.served, b.outcome.served);
    assert_eq!(a.outcome.batches, b.outcome.batches);
    assert_eq!(a.outcome.shed, b.outcome.shed);
    assert_eq!(a.outcome.makespan, b.outcome.makespan);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.health, b.health);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.shed_by_tier, b.shed_by_tier);
    assert_invariants(&a, n);
    // A different plan seed perturbs the schedule.
    let c = run_plan(
        &trace,
        4,
        &res,
        &ServeFaultPlan::new(100).straggle(3, 0.3, 4.0, 0.0..0.08),
    );
    assert_ne!(a.health, c.health);
}

#[test]
fn corrupted_responses_are_retried_and_the_replica_recovers() {
    let n = 300;
    // Light load so retries always fit in the deadline budget.
    let trace = poisson_trace(5, 0.15 * CAPACITY_QPS, n);
    let plan = ServeFaultPlan::new(21)
        .corrupt_output(0, 0.5, 0.0..0.015)
        .detect_timeout_s(0.0005)
        .backoff_base_s(20.0e-6);
    let res = ResilienceConfig {
        max_attempts: 4,
        probation: 2,
        ..ResilienceConfig::default()
    };
    let out = run_plan(&trace, 2, &res, &plan);
    assert_invariants(&out, n);
    assert!(out.faults.corrupted_responses >= 1, "window must corrupt");
    assert!(out.health.retries >= 1, "corruption must trigger retries");
    assert!(
        out.health.backoff_s > 0.0,
        "retries charge jittered backoff"
    );
    assert!(
        out.health.degraded_transitions >= 1,
        "a corrupting replica must be marked Degraded"
    );
    assert!(
        out.health.recovered_transitions >= 1,
        "clean probation after the window must recover the replica"
    );
    assert_eq!(out.final_health(0), Health::Healthy);
    assert_eq!(out.health.dead_transitions, 0, "nothing crashed");
}

#[test]
fn straggling_primary_is_hedged_and_the_hedge_wins() {
    let n = 400;
    let trace = poisson_trace(17, 0.3 * CAPACITY_QPS, n);
    // Replica 0 straggles hard for most of the trace: the first late
    // batch degrades it, after which dispatches to it are raced against
    // an idle healthy replica.
    let plan = ServeFaultPlan::new(31)
        .straggle(0, 0.9, 6.0, 0.0..0.1)
        .detect_timeout_s(0.0005)
        .backoff_base_s(20.0e-6);
    let res = ResilienceConfig::default();
    let out = run_plan(&trace, 4, &res, &plan);
    assert_invariants(&out, n);
    assert!(out.faults.straggled_batches >= 1);
    assert!(out.health.degraded_transitions >= 1);
    assert!(out.health.hedges >= 1, "degraded primary must be hedged");
    assert!(
        out.health.hedge_wins >= 1,
        "a clean hedge copy must beat a 6x straggler"
    );
    assert!(out.health.hedge_wins <= out.health.hedges);
}

#[test]
fn capacity_loss_escalates_brownout_and_sheds_lowest_tier_first() {
    let n = 480;
    // Alternate tiers 0/1; drop 3 of 4 replicas early with a re-warm
    // longer than the trace, pinning capacity at 25%.
    let trace = poisson_trace_tiered(9, 0.35 * CAPACITY_QPS, n, &[0, 1]);
    let plan = ServeFaultPlan::new(41)
        .crash(0, 0.004)
        .crash(1, 0.004)
        .crash(2, 0.004)
        .detect_timeout_s(0.0004)
        .backoff_base_s(20.0e-6);
    let res = ResilienceConfig {
        rewarm_s: 10.0,
        ..ResilienceConfig::default()
    };
    let out = run_plan(&trace, 4, &res, &plan);
    assert_invariants(&out, n);
    assert_eq!(out.faults.crashes, 3);
    assert!(
        out.health.brownout_shed >= 1,
        "25% capacity must shed tier-0 traffic at admission"
    );
    let shed_t0 = out
        .shed_by_tier
        .iter()
        .find(|e| e.0 == 0)
        .map(|e| e.1)
        .unwrap_or(0);
    let shed_t1 = out
        .shed_by_tier
        .iter()
        .find(|e| e.0 == 1)
        .map(|e| e.1)
        .unwrap_or(0);
    assert!(
        shed_t0 > shed_t1,
        "brown-out must shed tier 0 before tier 1 ({shed_t0} vs {shed_t1})"
    );
    // Tier-1 traffic keeps flowing on the surviving replica.
    let served_t1 = out
        .outcome
        .served
        .iter()
        .filter(|s| trace[s.id as usize].tier == 1)
        .count();
    assert!(served_t1 > 0, "tier-1 requests must keep being served");
}

/// Satellite: the batcher under a mid-trace replica-count change — a CG
/// dies and later rejoins — preserves FIFO admission, SLO safety and
/// seed determinism.
#[test]
fn replica_loss_and_rejoin_keeps_fifo_slo_and_determinism() {
    let n = 700;
    let trace = poisson_trace(23, 0.4 * CAPACITY_QPS, n);
    let plan = ServeFaultPlan::new(51)
        .crash(2, 0.02)
        .detect_timeout_s(0.0005)
        .backoff_base_s(20.0e-6);
    let res = ResilienceConfig {
        rewarm_s: 0.015,
        ..ResilienceConfig::default()
    };
    let a = run_plan(&trace, 4, &res, &plan);
    let b = run_plan(&trace, 4, &res, &plan);
    assert_invariants(&a, n);
    assert_eq!(a.outcome.served, b.outcome.served);
    assert_eq!(a.transitions, b.transitions);
    // FIFO across batches too: each batch's first id exceeds the
    // previous batch's first id *except* where a retried cohort (older
    // arrivals) legitimately re-enters after a failure.
    let mut batches = a.outcome.batches.clone();
    batches.sort_by(|x, y| x.dispatch.total_cmp(&y.dispatch));
    let regressions = batches
        .windows(2)
        .filter(|w| w[1].request_ids[0] < w[0].request_ids[0])
        .count();
    assert!(
        regressions as u64 <= a.health.retries,
        "id-order regressions ({regressions}) must all be retry cohorts"
    );
    // The crash actually interrupted service and the replica rejoined.
    assert_eq!(a.health.dead_transitions, 1);
    assert_eq!(a.health.rewarms, 1);
    assert_eq!(a.final_health(2), Health::Healthy);
    assert!(a.outcome.shed.is_empty(), "40% load absorbs a 1-CG loss");
}

/// Satellite: typed errors out of the resilience layer and the engine —
/// injected faults and malformed inputs are data, not panics.
#[test]
fn serve_errors_are_typed() {
    let trace = poisson_trace(1, 100.0, 10);
    let res = ResilienceConfig::default();
    let mk = |plan: ServeFaultPlan| swfault::serve::ServeFaultSession::new(plan);

    let mut s = mk(ServeFaultPlan::new(1));
    let err = simulate_ft(&trace, 0, &CFG, &res, &mut s, &mut model_latency).unwrap_err();
    assert_eq!(err, ServeError::NoReplicas);

    let cfg0 = BatchConfig {
        max_batch: 0,
        ..CFG
    };
    let err = simulate_ft(&trace, 2, &cfg0, &res, &mut s, &mut model_latency).unwrap_err();
    assert_eq!(err, ServeError::ZeroMaxBatch);

    let tight = BatchConfig {
        max_batch: 8,
        slo: 0.0001,
        timeout: 0.0001,
    };
    let err = simulate_ft(&trace, 2, &tight, &res, &mut s, &mut model_latency).unwrap_err();
    assert!(matches!(err, ServeError::InfeasibleSlo { .. }));

    let mut dead = mk(ServeFaultPlan::new(1).crash(0, 0.0).crash(1, 0.0));
    let err = simulate_ft(&trace, 2, &CFG, &res, &mut dead, &mut model_latency).unwrap_err();
    assert_eq!(err, ServeError::AllReplicasDead);
}

#[test]
fn engine_inference_errors_are_typed_and_checksums_verify() {
    use swcaffe_core::{Net, Phase};
    use swserve::engine::Engine;
    use swserve::graph::FrozenGraph;
    use swserve::verify_response;

    let def = models::tiny_cnn(4, 10);
    let mut net = Net::from_def_mode_seeded(&def, ExecMode::Functional, 42).unwrap();
    net.set_phase(Phase::Test);
    let graph = FrozenGraph::freeze(&def, &net).unwrap();
    let per = graph.per_image;

    // A non-functional backend cannot produce values.
    let mut timing = Engine::new(graph.clone(), ExecMode::TimingOnly);
    let err = timing.infer(2, &vec![0.0; 2 * per]).unwrap_err();
    assert!(matches!(err, ServeError::NonFunctionalBackend { .. }));

    // Shape mismatches are rejected with the observed sizes.
    let mut eng = Engine::new(graph, ExecMode::Functional);
    let err = eng.infer(2, &vec![0.0; 2 * per + 1]).unwrap_err();
    assert_eq!(
        err,
        ServeError::InputShape {
            got: 2 * per + 1,
            batch: 2,
            per_image: per,
        }
    );

    // The checked path stamps a Fletcher-64 tag that verifies — and a
    // single corrupted float breaks it.
    let input: Vec<f32> = (0..2 * per).map(|i| (i % 7) as f32 * 0.25).collect();
    let (out, tag) = eng.infer_checked(2, &input).unwrap();
    assert!(verify_response(&out, tag));
    let mut tampered = out.clone();
    tampered[0] += 1.0;
    assert!(!verify_response(&tampered, tag));
}

/// Cluster-level fault tolerance is backend-independent: the virtual
/// clock comes from the TimingOnly twin and every fault from the seeded
/// plan, so the full fault schedule — crashes, retries, health
/// transitions — replays identically on the simulated mesh, host
/// threads, and timing-only.
#[test]
fn fault_tolerant_serving_is_backend_independent() {
    let def = models::tiny_cnn(4, 10);
    let graph = optimize(&def).unwrap();
    let trace = poisson_trace(21, 40.0, 100);
    let plan = ServeFaultPlan::new(77)
        .crash(1, 0.1)
        .corrupt_output(0, 0.3, 0.0..0.2)
        .detect_timeout_s(0.002)
        .backoff_base_s(50.0e-6);

    let mut outcomes = Vec::new();
    for mode in [
        ExecMode::Functional,
        ExecMode::HostNative { threads: 2 },
        ExecMode::TimingOnly,
    ] {
        let mut cluster = Cluster::new(&graph, mode);
        let worst = cluster.latency_seconds(8).unwrap();
        let cfg = BatchConfig {
            max_batch: 8,
            slo: 6.0 * worst,
            timeout: worst,
        };
        let res = ResilienceConfig {
            rewarm_s: 4.0 * worst,
            ..ResilienceConfig::default()
        };
        outcomes.push(cluster.serve_ft(&trace, &cfg, &res, &plan).unwrap());
    }
    for o in &outcomes[1..] {
        assert_eq!(outcomes[0].outcome.served, o.outcome.served);
        assert_eq!(outcomes[0].outcome.batches, o.outcome.batches);
        assert_eq!(outcomes[0].outcome.shed, o.outcome.shed);
        assert_eq!(outcomes[0].transitions, o.transitions);
        assert_eq!(outcomes[0].health, o.health);
        assert_eq!(outcomes[0].faults, o.faults);
    }
    assert_eq!(
        outcomes[0].outcome.served.len() + outcomes[0].outcome.shed.len(),
        100
    );
    assert_eq!(outcomes[0].faults.crashes, 1, "the crash must be observed");
}
