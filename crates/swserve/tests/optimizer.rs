//! Graph-optimizer correctness: the optimized frozen graph must produce
//! the same logits (bitwise) as the frozen unoptimized net, its eval
//! schedule must be a valid topological order, and malformed graphs
//! (cycles, orphaned inputs) must be rejected.

use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{models, LayerDef, LayerKind, Net, NetDef, Phase, TransDir};
use swserve::graph::{optimize, topo_schedule, FrozenGraph};
use swserve::Engine;

fn values(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed);
            ((x >> 33) % 2000) as f32 / 500.0 - 2.0
        })
        .collect()
}

/// Every layer's bottoms must be produced by an earlier scheduled layer.
fn assert_topological(def: &NetDef, schedule: &[usize]) {
    assert_eq!(schedule.len(), def.layers.len());
    let mut produced: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for &i in schedule {
        let l = &def.layers[i];
        for b in &l.bottoms {
            assert!(
                produced.contains(b.as_str()),
                "layer `{}` consumes `{b}` before it is produced",
                l.name
            );
        }
        for t in &l.tops {
            produced.insert(t);
        }
    }
}

#[test]
fn optimized_logits_match_frozen_unoptimized_net_bitwise() {
    let batch = 4;
    let classes = 10;
    let def = models::tiny_dropout_cnn(batch, classes);
    let per_image = 3 * 8 * 8;
    let input = values(batch * per_image, 17);
    let labels: Vec<f32> = (0..batch).map(|i| (i % classes) as f32).collect();

    for mode in [ExecMode::Functional, ExecMode::HostNative { threads: 2 }] {
        // Frozen unoptimized reference: the training definition at test
        // phase (dropout = identity, BN on running stats).
        let mut net = Net::from_def_mode_seeded(&def, mode, 42).unwrap();
        net.set_phase(Phase::Test);
        net.set_input("data", &input);
        net.set_input("label", &labels);
        let mut cg = CoreGroup::new(mode);
        net.forward(&mut cg);
        let want = net.blob("fc").data().to_vec();

        let graph = FrozenGraph::freeze(&def, &net).unwrap();
        let mut engine = Engine::new(graph, mode);
        let got = engine.infer(batch, &input).unwrap();
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{mode:?} logit {i}: optimized {g} vs unoptimized {w}"
            );
        }

        // Padded-bucket path: a batch of 3 rides in the 4-bucket and
        // must reproduce the first three rows exactly.
        let got3 = engine.infer(3, &input[..3 * per_image]).unwrap();
        assert_eq!(got3.len(), 3 * classes);
        for (i, (g, w)) in got3.iter().zip(&want[..3 * classes]).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{mode:?} padded logit {i}");
        }
    }
}

#[test]
fn optimizer_strips_training_nodes_and_fuses_the_chain() {
    let def = models::tiny_dropout_cnn(4, 10);
    // data, conv1, bn1, relu1, fc1, relu2, drop1, fc, loss, accuracy,
    // accuracy_top5 = 11 layers.
    assert_eq!(def.layers.len(), 11);
    let graph = optimize(&def).unwrap();
    // loss + 2 accuracy heads + dropout removed as training-only.
    assert_eq!(graph.stats.removed_training, 4);
    // The unused label input is dropped as dead.
    assert_eq!(graph.stats.removed_dead, 1);
    // conv1 -> bn1 -> relu1 becomes one fused layer.
    assert_eq!(graph.stats.fused, 1);
    assert_eq!(graph.fusions.len(), 1);
    assert_eq!(graph.fusions[0].conv, "conv1");
    assert_eq!(graph.fusions[0].bn, "bn1");
    assert_eq!(graph.fusions[0].relu, "relu1");
    // data, fused, fc1, relu2, fc = 5 scheduled nodes.
    assert_eq!(graph.stats.scheduled_nodes, 5);
    assert_eq!(graph.def.layers.len(), 5);
    assert_eq!(graph.output, "fc");
    assert_eq!(graph.input, "data");
    assert!(graph
        .def
        .layers
        .iter()
        .any(|l| matches!(l.kind, LayerKind::FusedConvBnRelu { .. })));
    // No label blob survives anywhere.
    assert!(graph
        .def
        .layers
        .iter()
        .all(|l| l.tops.iter().all(|t| t != "label")));
    assert_topological(&graph.def, &graph.schedule);
}

#[test]
fn inverse_transform_pairs_fold_away() {
    let mut def = NetDef::new("trans_pair");
    def = def
        .layer(
            "data",
            LayerKind::Input {
                shape: vec![2, 3, 4, 4],
                with_labels: false,
            },
            &[],
            &["data"],
        )
        .layer(
            "to_rcnb",
            LayerKind::TensorTransform {
                dir: TransDir::NchwToRcnb,
            },
            &["data"],
            &["t1"],
        )
        .layer(
            "to_nchw",
            LayerKind::TensorTransform {
                dir: TransDir::RcnbToNchw,
            },
            &["t1"],
            &["t2"],
        )
        .layer("relu", LayerKind::ReLU, &["t2"], &["out"]);
    def.validate().unwrap();
    let graph = optimize(&def).unwrap();
    assert_eq!(graph.stats.folded, 1);
    assert_eq!(graph.def.layers.len(), 2);
    assert_eq!(graph.def.layers[1].name, "relu");
    // The relu now reads straight from the input blob.
    assert_eq!(graph.def.layers[1].bottoms, vec!["data".to_string()]);
    assert_topological(&graph.def, &graph.schedule);
}

#[test]
fn single_input_concat_collapses() {
    let def = NetDef::new("concat1")
        .layer(
            "data",
            LayerKind::Input {
                shape: vec![2, 8, 1, 1],
                with_labels: false,
            },
            &[],
            &["data"],
        )
        .layer("cat", LayerKind::Concat, &["data"], &["catted"])
        .layer("relu", LayerKind::ReLU, &["catted"], &["out"]);
    def.validate().unwrap();
    let graph = optimize(&def).unwrap();
    assert_eq!(graph.stats.folded, 1);
    assert_eq!(graph.def.layers.len(), 2);
    assert_eq!(graph.def.layers[1].bottoms, vec!["data".to_string()]);
}

#[test]
fn schedule_rejects_cycles() {
    let layers = vec![
        LayerDef {
            name: "a".into(),
            kind: LayerKind::ReLU,
            bottoms: vec!["y".into()],
            tops: vec!["x".into()],
        },
        LayerDef {
            name: "b".into(),
            kind: LayerKind::ReLU,
            bottoms: vec!["x".into()],
            tops: vec!["y".into()],
        },
    ];
    let err = topo_schedule(&layers).unwrap_err();
    assert!(err.contains("cycle"), "unexpected error: {err}");
}

#[test]
fn schedule_rejects_orphaned_inputs() {
    let layers = vec![LayerDef {
        name: "lonely".into(),
        kind: LayerKind::ReLU,
        bottoms: vec!["ghost".into()],
        tops: vec!["out".into()],
    }];
    let err = topo_schedule(&layers).unwrap_err();
    assert!(err.contains("no layer produces"), "unexpected error: {err}");
}

#[test]
fn schedule_handles_unordered_dags() {
    // Kahn must recover a valid order even when the layer list is not
    // already topologically sorted.
    let layers = vec![
        LayerDef {
            name: "late".into(),
            kind: LayerKind::ReLU,
            bottoms: vec!["mid".into()],
            tops: vec!["out".into()],
        },
        LayerDef {
            name: "src".into(),
            kind: LayerKind::Input {
                shape: vec![1, 4],
                with_labels: false,
            },
            bottoms: vec![],
            tops: vec!["data".into()],
        },
        LayerDef {
            name: "mid".into(),
            kind: LayerKind::ReLU,
            bottoms: vec!["data".into()],
            tops: vec!["mid".into()],
        },
    ];
    let order = topo_schedule(&layers).unwrap();
    assert_eq!(order, vec![1, 2, 0]);
}

/// Acceptance criterion: the optimized VGG graph schedules fewer nodes
/// and simulates a lower per-batch latency than the unoptimized frozen
/// graph.
#[test]
fn optimized_vgg_is_smaller_and_faster() {
    let batch = 8;
    let def = models::vgg16(batch);
    let graph = optimize(&def).unwrap();
    assert!(
        graph.stats.scheduled_nodes < def.layers.len(),
        "optimized VGG must schedule fewer nodes ({} vs {})",
        graph.stats.scheduled_nodes,
        def.layers.len()
    );
    assert_topological(&graph.def, &graph.schedule);

    let mut net = Net::from_def_mode(&def, ExecMode::TimingOnly).unwrap();
    net.set_phase(Phase::Test);
    let mut cg = CoreGroup::new(ExecMode::TimingOnly);
    net.forward(&mut cg);
    let unoptimized = cg.elapsed().seconds();

    let mut engine = Engine::new(graph, ExecMode::TimingOnly);
    let optimized = engine.latency_seconds(batch).unwrap();
    assert!(
        optimized < unoptimized,
        "optimized VGG latency {optimized} !< unoptimized {unoptimized}"
    );
}
