//! Dynamic-batcher properties: determinism (same seed + trace ⇒
//! identical batch boundaries and per-request latencies) and SLO safety
//! (no admitted request's queueing delay may exceed the configured
//! budget — overload sheds instead of silently violating the SLO).

use sw26010::ExecMode;
use swcaffe_core::models;
use swserve::batcher::{poisson_trace, simulate, BatchConfig};
use swserve::graph::optimize;
use swserve::Cluster;

fn model_latency(b: usize) -> f64 {
    // Monotone synthetic latency: launch cost plus per-image work.
    0.002 + 0.0001 * b as f64
}

const CFG: BatchConfig = BatchConfig {
    max_batch: 8,
    slo: 0.025,
    timeout: 0.004,
};

#[test]
fn same_seed_and_trace_give_identical_outcomes() {
    let trace = poisson_trace(7, 400.0, 600);
    let a = simulate(&trace, 4, &CFG, &mut model_latency).unwrap();
    let b = simulate(&trace, 4, &CFG, &mut model_latency).unwrap();
    assert_eq!(a.served, b.served, "per-request life cycles must match");
    assert_eq!(a.batches, b.batches, "batch boundaries must match");
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.makespan, b.makespan);
    // And the trace itself is a pure function of the seed.
    assert_eq!(trace, poisson_trace(7, 400.0, 600));
    assert_ne!(trace, poisson_trace(8, 400.0, 600));
}

#[test]
fn admitted_requests_never_exceed_the_slo() {
    for qps in [50.0, 500.0, 5000.0, 20000.0] {
        let trace = poisson_trace(13, qps, 800);
        let out = simulate(&trace, 2, &CFG, &mut model_latency).unwrap();
        // Every request is accounted for exactly once.
        assert_eq!(out.served.len() + out.shed.len(), trace.len(), "qps {qps}");
        for s in &out.served {
            let queueing = s.dispatch - s.arrival;
            assert!(
                queueing <= out.queue_budget + 1e-9,
                "qps {qps} req {}: queueing delay {queueing} > budget {}",
                s.id,
                out.queue_budget
            );
            assert!(
                s.latency() <= CFG.slo + 1e-9,
                "qps {qps} req {}: latency {} > SLO {}",
                s.id,
                s.latency(),
                CFG.slo
            );
        }
    }
    // Far past capacity (2 replicas x 8/batch / ~2.8ms ≈ 5.7k qps),
    // the batcher must shed rather than stretch latencies.
    let trace = poisson_trace(13, 20000.0, 800);
    let out = simulate(&trace, 2, &CFG, &mut model_latency).unwrap();
    assert!(!out.shed.is_empty(), "overload must shed");
    // At a tenth of capacity nothing is shed.
    let trace = poisson_trace(13, 500.0, 800);
    let out = simulate(&trace, 2, &CFG, &mut model_latency).unwrap();
    assert!(out.shed.is_empty(), "no shedding under light load");
}

#[test]
fn batches_respect_limits_and_fifo_order() {
    let trace = poisson_trace(29, 3000.0, 500);
    let out = simulate(&trace, 4, &CFG, &mut model_latency).unwrap();
    assert!(!out.batches.is_empty());
    for b in &out.batches {
        assert!(b.request_ids.len() <= CFG.max_batch);
        assert!(!b.request_ids.is_empty());
        assert!(b.completion > b.dispatch);
    }
    // Admission is FIFO: served ids in dispatch order are increasing.
    let ids: Vec<u64> = out.served.iter().map(|s| s.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "FIFO admission order violated");
    // Utilization is a sane per-replica busy fraction.
    let util = out.utilization();
    assert_eq!(util.len(), 4);
    assert!(util.iter().all(|u| (0.0..=1.0 + 1e-9).contains(u)));
    assert!(out.throughput() > 0.0);
    // Percentiles come from the admitted latency distribution.
    let p50 = out.latency_percentile(50.0);
    let p99 = out.latency_percentile(99.0);
    assert!(p50 > 0.0 && p50 <= p99 && p99 <= CFG.slo + 1e-9);
}

#[test]
fn coalescing_fills_batches_under_load() {
    // At high qps with generous timeout, dispatches should actually
    // batch rather than degrade to single-request dispatches.
    let trace = poisson_trace(3, 4000.0, 400);
    let out = simulate(&trace, 1, &CFG, &mut model_latency).unwrap();
    let avg = out
        .batches
        .iter()
        .map(|b| b.request_ids.len())
        .sum::<usize>() as f64
        / out.batches.len() as f64;
    assert!(avg > 2.0, "expected real batching, got avg size {avg}");
}

#[test]
fn infeasible_slo_is_rejected() {
    let trace = poisson_trace(1, 100.0, 10);
    let cfg = BatchConfig {
        max_batch: 8,
        slo: 0.001,
        timeout: 0.001,
    };
    let err = simulate(&trace, 2, &cfg, &mut model_latency).unwrap_err();
    assert!(
        matches!(err, swserve::ServeError::InfeasibleSlo { .. }),
        "unexpected error: {err}"
    );
    assert!(err.to_string().contains("infeasible"));
}

/// Cluster-level determinism across functional backends: the virtual
/// clock comes from the TimingOnly twin, so serving outcomes are
/// identical whether the value path is the simulated mesh or host
/// threads.
#[test]
fn serving_outcome_is_backend_independent() {
    let def = models::tiny_cnn(4, 10);
    let graph = optimize(&def).unwrap();
    let trace = poisson_trace(21, 50.0, 120);

    let mut outcomes = Vec::new();
    for mode in [
        ExecMode::Functional,
        ExecMode::HostNative { threads: 2 },
        ExecMode::TimingOnly,
    ] {
        let mut cluster = Cluster::new(&graph, mode);
        let worst = cluster.latency_seconds(8).unwrap();
        let cfg = BatchConfig {
            max_batch: 8,
            slo: 4.0 * worst,
            timeout: worst,
        };
        outcomes.push(cluster.serve(&trace, &cfg).unwrap());
    }
    for o in &outcomes[1..] {
        assert_eq!(outcomes[0].served, o.served);
        assert_eq!(outcomes[0].batches, o.batches);
        assert_eq!(outcomes[0].shed, o.shed);
    }
    assert_eq!(outcomes[0].served.len() + outcomes[0].shed.len(), 120);
}

#[test]
fn latency_percentile_edge_cases_are_pinned() {
    use swserve::batcher::{ServeOutcome, ServedRequest};

    // Empty sample: defined zero, for any p including NaN.
    let empty = ServeOutcome::default();
    assert_eq!(empty.latency_percentile(50.0), 0.0);
    assert_eq!(empty.latency_percentile(f64::NAN), 0.0);

    let serve = |lat: &[f64]| ServeOutcome {
        served: lat
            .iter()
            .enumerate()
            .map(|(i, l)| ServedRequest {
                id: i as u64,
                arrival: 0.0,
                dispatch: 0.0,
                completion: *l,
                replica: 0,
            })
            .collect(),
        ..Default::default()
    };

    // Single sample: every percentile is that sample.
    let single = serve(&[0.25]);
    for p in [0.0, 37.5, 100.0, -10.0, 1e9, f64::NAN] {
        assert_eq!(single.latency_percentile(p), 0.25, "p = {p}");
    }

    // p = 0 and p = 100 hit the exact extremes of the sorted sample.
    let five = serve(&[0.5, 0.1, 0.4, 0.2, 0.3]);
    assert_eq!(five.latency_percentile(0.0), 0.1);
    assert_eq!(five.latency_percentile(100.0), 0.5);
    assert_eq!(five.latency_percentile(50.0), 0.3);

    // Out-of-range and NaN p clamp to the ends instead of relying on
    // float-to-usize cast behaviour.
    assert_eq!(five.latency_percentile(-5.0), 0.1);
    assert_eq!(five.latency_percentile(250.0), 0.5);
    assert_eq!(five.latency_percentile(f64::NAN), 0.1);
}
