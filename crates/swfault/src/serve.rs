//! Serving-side fault injection: deterministic replica failures for the
//! `swserve` inference path.
//!
//! The training half of this crate reasons in *iterations*; a serving
//! cluster reasons in *virtual seconds* and *batch dispatches*. A
//! [`ServeFaultPlan`] declares what goes wrong with the chip's CG
//! replicas — a crash at virtual time `t`, a latency-degradation window,
//! a probabilistic per-batch straggle, a transient output-corruption
//! window — and a [`ServeFaultSession`] answers the resilience layer's
//! questions as pure functions of the plan seed and the coordinates of
//! the question (replica, virtual time, batch sequence number):
//!
//! * when does this replica crash, if ever?
//! * by how much is this replica's execution stretched at time `t`?
//! * does this particular batch execution straggle?
//! * is this particular response payload corrupted in flight?
//!
//! Because every answer is seed-pure, two sessions opened on the same
//! plan replay bit-identical fault schedules — the property the
//! `serve_faults` regression scenario and the swserve resilience tests
//! assert across reruns, backends and plan replays.

use crate::{decorrelated_backoff_s, mix, unit};

/// One declared serving fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFaultEvent {
    /// Replica `replica` dies at virtual time `at_s` and stays dead
    /// until the resilience layer re-warms it. A crash fires once: a
    /// re-warmed replica is not re-killed by the same event.
    ReplicaCrash { replica: usize, at_s: f64 },
    /// Every batch dispatched to `replica` in `[from_s, until_s)` runs
    /// `factor >= 1` times slower (thermal throttling, noisy neighbour).
    Degrade {
        replica: usize,
        factor: f64,
        from_s: f64,
        until_s: f64,
    },
    /// Each batch dispatched to `replica` in the window independently
    /// straggles with probability `prob`, running `slowdown >= 1` times
    /// slower (OS jitter tail). Seed-pure per batch sequence number.
    Straggle {
        replica: usize,
        prob: f64,
        slowdown: f64,
        from_s: f64,
        until_s: f64,
    },
    /// Each response produced by `replica` in the window is corrupted
    /// in flight with probability `rate`, independently per batch —
    /// transient, so a retried execution usually comes back clean.
    CorruptOutput {
        replica: usize,
        rate: f64,
        from_s: f64,
        until_s: f64,
    },
}

/// A seeded serving-fault schedule. Build with the fluent methods, then
/// open a [`ServeFaultSession`] to consume it.
#[derive(Debug, Clone)]
pub struct ServeFaultPlan {
    seed: u64,
    events: Vec<ServeFaultEvent>,
    /// Seconds past a batch's *expected* completion before the
    /// dispatcher declares the replica dead (deadline timeout).
    detect_timeout_s: f64,
    /// Base of the decorrelated-jitter backoff charged before a failed
    /// batch's requests become dispatchable again.
    backoff_base_s: f64,
}

impl ServeFaultPlan {
    pub fn new(seed: u64) -> Self {
        ServeFaultPlan {
            seed,
            events: Vec::new(),
            detect_timeout_s: 1.0e-3,
            backoff_base_s: 50.0e-6,
        }
    }

    /// Crash `replica` at virtual time `at_s`.
    pub fn crash(mut self, replica: usize, at_s: f64) -> Self {
        assert!(at_s >= 0.0, "crash time must be non-negative");
        self.events
            .push(ServeFaultEvent::ReplicaCrash { replica, at_s });
        self
    }

    /// Stretch `replica`'s executions by `factor` for `window` seconds.
    pub fn degrade(mut self, replica: usize, factor: f64, window: std::ops::Range<f64>) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.events.push(ServeFaultEvent::Degrade {
            replica,
            factor,
            from_s: window.start,
            until_s: window.end,
        });
        self
    }

    /// Straggle each of `replica`'s batches in `window` independently
    /// with probability `prob`, by `slowdown`.
    pub fn straggle(
        mut self,
        replica: usize,
        prob: f64,
        slowdown: f64,
        window: std::ops::Range<f64>,
    ) -> Self {
        assert!((0.0..1.0).contains(&prob), "prob must be in [0, 1)");
        assert!(slowdown >= 1.0, "straggler slowdown must be >= 1");
        self.events.push(ServeFaultEvent::Straggle {
            replica,
            prob,
            slowdown,
            from_s: window.start,
            until_s: window.end,
        });
        self
    }

    /// Corrupt each response `replica` produces in `window` with
    /// probability `rate`.
    pub fn corrupt_output(
        mut self,
        replica: usize,
        rate: f64,
        window: std::ops::Range<f64>,
    ) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        self.events.push(ServeFaultEvent::CorruptOutput {
            replica,
            rate,
            from_s: window.start,
            until_s: window.end,
        });
        self
    }

    pub fn detect_timeout_s(mut self, s: f64) -> Self {
        assert!(s >= 0.0, "detection timeout must be non-negative");
        self.detect_timeout_s = s;
        self
    }

    pub fn backoff_base_s(mut self, s: f64) -> Self {
        assert!(s >= 0.0, "backoff base must be non-negative");
        self.backoff_base_s = s;
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn events(&self) -> &[ServeFaultEvent] {
        &self.events
    }
}

/// Injection counters a serving session accumulates; flattened into the
/// profiling report by the `serve_faults` scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeFaultReport {
    /// Replica crashes observed (first dispatch or probe after `at_s`).
    pub crashes: u64,
    /// Batch executions stretched by an active degradation window.
    pub degraded_batches: u64,
    /// Batch executions that straggled.
    pub straggled_batches: u64,
    /// Responses the corruption model damaged in flight.
    pub corrupted_responses: u64,
}

/// A live view over a [`ServeFaultPlan`]. All queries are pure in the
/// plan seed and their coordinates; only the [`report`](Self::report)
/// counters mutate.
#[derive(Debug, Clone)]
pub struct ServeFaultSession {
    plan: ServeFaultPlan,
    pub report: ServeFaultReport,
}

impl ServeFaultSession {
    pub fn new(plan: ServeFaultPlan) -> Self {
        ServeFaultSession {
            plan,
            report: ServeFaultReport::default(),
        }
    }

    pub fn plan(&self) -> &ServeFaultPlan {
        &self.plan
    }

    /// Earliest declared crash time of `replica`, if any.
    pub fn crash_time(&self, replica: usize) -> Option<f64> {
        self.plan
            .events
            .iter()
            .filter_map(|ev| match *ev {
                ServeFaultEvent::ReplicaCrash { replica: r, at_s } if r == replica => Some(at_s),
                _ => None,
            })
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Seconds past a batch's expected completion before the replica is
    /// declared dead.
    pub fn detect_timeout_s(&self) -> f64 {
        self.plan.detect_timeout_s
    }

    /// Multiplicative execution stretch of `replica` for a batch
    /// dispatched at virtual time `t` (`1.0` = healthy). Concurrent
    /// degradation windows compound. Pure; does not touch the report —
    /// use [`charge_execution`](Self::charge_execution) on the path that
    /// actually executes.
    pub fn degrade_factor(&self, replica: usize, t: f64) -> f64 {
        let mut f = 1.0;
        for ev in &self.plan.events {
            if let ServeFaultEvent::Degrade {
                replica: r,
                factor,
                from_s,
                until_s,
            } = *ev
            {
                if r == replica && t >= from_s && t < until_s {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Straggle stretch of batch `batch_seq` dispatched on `replica` at
    /// time `t` (`1.0` = no straggle). Each active straggle window draws
    /// independently, keyed on the plan seed, the window's index, the
    /// replica and the batch sequence number.
    pub fn straggle_factor(&self, replica: usize, batch_seq: u64, t: f64) -> f64 {
        let mut f = 1.0;
        for (i, ev) in self.plan.events.iter().enumerate() {
            if let ServeFaultEvent::Straggle {
                replica: r,
                prob,
                slowdown,
                from_s,
                until_s,
            } = *ev
            {
                if r == replica && t >= from_s && t < until_s {
                    let key = mix((i as u64) << 32 | replica as u64)
                        .wrapping_add(mix(batch_seq ^ 0x5851_f42d_4c95_7f2d));
                    if unit(self.plan.seed.wrapping_add(key)) < prob {
                        f *= slowdown;
                    }
                }
            }
        }
        f
    }

    /// Is the response of batch `batch_seq`, produced by `replica` for a
    /// dispatch at time `t`, corrupted in flight? Independent per batch
    /// sequence number, so a retried execution (new sequence number)
    /// usually comes back clean.
    pub fn corrupts_output(&self, replica: usize, batch_seq: u64, t: f64) -> bool {
        for (i, ev) in self.plan.events.iter().enumerate() {
            if let ServeFaultEvent::CorruptOutput {
                replica: r,
                rate,
                from_s,
                until_s,
            } = *ev
            {
                if r == replica && t >= from_s && t < until_s {
                    let key = mix((i as u64) << 32 | replica as u64)
                        .wrapping_add(mix(batch_seq ^ 0x2545_f491_4f6c_dd1d));
                    if unit(self.plan.seed.wrapping_add(key) ^ 0xc0ff_ee00_dead_beef) < rate {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Resolve one batch execution: the total stretch factor (degrade ×
    /// straggle) with the injection counters charged. `1.0` = clean.
    pub fn charge_execution(&mut self, replica: usize, batch_seq: u64, t: f64) -> f64 {
        let degrade = self.degrade_factor(replica, t);
        if degrade > 1.0 {
            self.report.degraded_batches += 1;
        }
        let straggle = self.straggle_factor(replica, batch_seq, t);
        if straggle > 1.0 {
            self.report.straggled_batches += 1;
        }
        degrade * straggle
    }

    /// Resolve one response delivery: true (and charged) if corrupted.
    pub fn charge_response(&mut self, replica: usize, batch_seq: u64, t: f64) -> bool {
        let corrupted = self.corrupts_output(replica, batch_seq, t);
        if corrupted {
            self.report.corrupted_responses += 1;
        }
        corrupted
    }

    /// Record an observed replica crash (the dispatcher noticed the
    /// deadline timeout fire).
    pub fn charge_crash(&mut self) {
        self.report.crashes += 1;
    }

    /// Decorrelated-jitter backoff before redispatch attempt `attempt`
    /// (1-based) of a failed batch — same schedule family as the
    /// training collectives, keyed on the batch sequence number.
    pub fn backoff_s(&self, batch_seq: u64, attempt: u32) -> f64 {
        decorrelated_backoff_s(
            self.plan.seed,
            batch_seq.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            self.plan.backoff_base_s,
            attempt,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_from_same_plan_replay_identically() {
        let plan = ServeFaultPlan::new(42)
            .crash(1, 0.5)
            .degrade(2, 3.0, 0.2..0.9)
            .straggle(0, 0.3, 4.0, 0.0..1.0)
            .corrupt_output(3, 0.25, 0.0..2.0);
        let a = ServeFaultSession::new(plan.clone());
        let b = ServeFaultSession::new(plan);
        for replica in 0..4 {
            assert_eq!(a.crash_time(replica), b.crash_time(replica));
            for seq in 0..64u64 {
                let t = seq as f64 * 0.03;
                assert_eq!(a.degrade_factor(replica, t), b.degrade_factor(replica, t));
                assert_eq!(
                    a.straggle_factor(replica, seq, t),
                    b.straggle_factor(replica, seq, t)
                );
                assert_eq!(
                    a.corrupts_output(replica, seq, t),
                    b.corrupts_output(replica, seq, t)
                );
                for attempt in 1..4 {
                    assert_eq!(a.backoff_s(seq, attempt), b.backoff_s(seq, attempt));
                }
            }
        }
    }

    #[test]
    fn windows_gate_every_fault_kind() {
        let s = ServeFaultSession::new(
            ServeFaultPlan::new(7)
                .degrade(0, 2.0, 1.0..2.0)
                .straggle(0, 0.999, 5.0, 1.0..2.0)
                .corrupt_output(0, 0.999, 1.0..2.0),
        );
        // Outside the window: clean.
        assert_eq!(s.degrade_factor(0, 0.5), 1.0);
        assert_eq!(s.straggle_factor(0, 0, 0.5), 1.0);
        assert!(!s.corrupts_output(0, 0, 0.5));
        assert_eq!(s.degrade_factor(0, 2.0), 1.0, "half-open window");
        // Inside: degrade always, straggle/corrupt at ~0.999.
        assert_eq!(s.degrade_factor(0, 1.5), 2.0);
        let straggled = (0..64)
            .filter(|&q| s.straggle_factor(0, q, 1.5) > 1.0)
            .count();
        let corrupted = (0..64).filter(|&q| s.corrupts_output(0, q, 1.5)).count();
        assert!(straggled > 56, "straggled only {straggled}/64");
        assert!(corrupted > 56, "corrupted only {corrupted}/64");
        // The wrong replica is untouched.
        assert_eq!(s.degrade_factor(1, 1.5), 1.0);
    }

    #[test]
    fn straggle_rate_is_roughly_honoured_and_independent_per_batch() {
        let s = ServeFaultSession::new(ServeFaultPlan::new(123).straggle(2, 0.2, 3.0, 0.0..10.0));
        let trials = 10_000u64;
        let hits = (0..trials)
            .filter(|&q| s.straggle_factor(2, q, 1.0) > 1.0)
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn charges_accumulate_in_the_report() {
        let mut s = ServeFaultSession::new(
            ServeFaultPlan::new(9)
                .degrade(0, 2.0, 0.0..1.0)
                .corrupt_output(1, 0.999, 0.0..1.0),
        );
        assert_eq!(s.charge_execution(0, 0, 0.5), 2.0);
        assert_eq!(s.report.degraded_batches, 1);
        assert!(s.charge_response(1, 0, 0.5));
        assert_eq!(s.report.corrupted_responses, 1);
        assert!(!s.charge_response(1, 0, 5.0), "outside the window");
        assert_eq!(s.report.corrupted_responses, 1);
        s.charge_crash();
        assert_eq!(s.report.crashes, 1);
    }

    #[test]
    fn crash_time_is_the_earliest_declared() {
        let s = ServeFaultSession::new(ServeFaultPlan::new(1).crash(2, 0.7).crash(2, 0.3));
        assert_eq!(s.crash_time(2), Some(0.3));
        assert_eq!(s.crash_time(0), None);
    }
}
