//! Deterministic, seeded fault injection for the cluster simulation.
//!
//! A [`FaultPlan`] declares *what can go wrong* in a run — node crashes at
//! a given iteration, degraded inter-supernode links, straggling nodes,
//! and a transient per-message corruption rate. A [`FaultSession`] walks
//! the plan iteration by iteration and answers the questions the network
//! layer asks on its functional and timing paths:
//!
//! * is this node dead? (crash at iteration k)
//! * by how much is this supernode's over-subscribed uplink degraded?
//! * how much slower is this node than its peers right now?
//! * is this particular message, on this particular attempt, corrupted?
//!
//! Every answer is a pure function of the plan seed and the coordinates
//! of the question (iteration, collective sequence number, step, source,
//! destination, attempt), so two sessions created from the same plan give
//! byte-identical fault schedules — the property the recovery tests rely
//! on when they assert that a crashed-and-restored run reproduces the
//! uninterrupted run bit for bit.
//!
//! The session also accumulates a [`FaultReport`]: counters for injected
//! faults, checksum retries, detection latency and recovery wall-clock
//! that the profiling layer exports.

use std::fmt;

pub mod serve;

/// One declared fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Physical node `node` dies at the start of iteration `at_iter` and
    /// stays dead until a recovery action removes or replaces it.
    NodeCrash { node: usize, at_iter: u64 },
    /// The over-subscribed uplink of `supernode` runs `factor >= 1`
    /// times slower for iterations in `[from_iter, until_iter)`.
    LinkDegrade {
        supernode: usize,
        factor: f64,
        from_iter: u64,
        until_iter: u64,
    },
    /// Node `node` runs `slowdown >= 1` times slower for iterations in
    /// `[from_iter, until_iter)` (OS jitter, thermal throttling).
    Straggler {
        node: usize,
        slowdown: f64,
        from_iter: u64,
        until_iter: u64,
    },
}

/// A seeded fault schedule. Build with the fluent methods, then open a
/// [`FaultSession`] to consume it.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    /// Probability that any single message is corrupted in flight.
    corruption_rate: f64,
    /// Seconds charged to detect an unresponsive rank (MPI-style
    /// keep-alive timeout), added to the α-β-γ cost when a collective
    /// aborts on a dead peer.
    detect_timeout_s: f64,
    /// Maximum retransmissions per message before the collective gives
    /// up with [`CollectiveFault::RetriesExhausted`].
    max_retries: u32,
    /// Base of the retransmission backoff: attempt `k` (1-based) waits a
    /// decorrelated-jitter interval derived from the plan seed, bounded
    /// below by `backoff_base_s` (see [`decorrelated_backoff_s`]).
    backoff_base_s: f64,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
            corruption_rate: 0.0,
            detect_timeout_s: 0.25,
            max_retries: 3,
            backoff_base_s: 50.0e-6,
        }
    }

    /// Crash `node` at the start of iteration `at_iter`.
    pub fn crash(mut self, node: usize, at_iter: u64) -> Self {
        self.events.push(FaultEvent::NodeCrash { node, at_iter });
        self
    }

    /// Degrade `supernode`'s uplink by `factor` for iterations in `iters`.
    pub fn degrade_link(
        mut self,
        supernode: usize,
        factor: f64,
        iters: std::ops::Range<u64>,
    ) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.events.push(FaultEvent::LinkDegrade {
            supernode,
            factor,
            from_iter: iters.start,
            until_iter: iters.end,
        });
        self
    }

    /// Slow `node` down by `slowdown` for iterations in `iters`.
    pub fn straggle(mut self, node: usize, slowdown: f64, iters: std::ops::Range<u64>) -> Self {
        assert!(slowdown >= 1.0, "straggler slowdown must be >= 1");
        self.events.push(FaultEvent::Straggler {
            node,
            slowdown,
            from_iter: iters.start,
            until_iter: iters.end,
        });
        self
    }

    /// Corrupt each message independently with probability `rate`.
    pub fn corruption(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        self.corruption_rate = rate;
        self
    }

    pub fn detect_timeout_s(mut self, s: f64) -> Self {
        self.detect_timeout_s = s;
        self
    }

    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    pub fn backoff_base_s(mut self, s: f64) -> Self {
        self.backoff_base_s = s;
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// Counters a session accumulates; exported through swprof.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultReport {
    /// Node crashes that have taken effect so far.
    pub crashes: u64,
    /// Messages the corruption model damaged in flight.
    pub corrupted_msgs: u64,
    /// Retransmissions triggered by checksum mismatches.
    pub retries: u64,
    /// Messages whose retry budget ran out (each aborts a collective).
    pub retries_exhausted: u64,
    /// Dead-rank detections (timeout fired).
    pub detections: u64,
    /// Seconds of simulated time spent waiting for detection timeouts.
    pub detect_latency_s: f64,
    /// Seconds of simulated time spent on retransmissions + backoff.
    pub retry_cost_s: f64,
    /// Seconds of simulated time spent in recovery actions
    /// (re-forming the job, reloading checkpoints, replaying).
    pub recovery_s: f64,
}

/// Why a fault-aware collective aborted. Simulated time already spent
/// (including the detection timeout) rides along so callers can charge
/// it to their clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollectiveFault {
    /// A peer did not answer within the keep-alive timeout.
    DeadRank { rank: usize, elapsed_s: f64 },
    /// A message failed its checksum `max_retries + 1` times in a row.
    RetriesExhausted {
        src: usize,
        dst: usize,
        step: usize,
        elapsed_s: f64,
    },
}

impl CollectiveFault {
    /// Simulated seconds spent before the abort.
    pub fn elapsed_s(&self) -> f64 {
        match self {
            CollectiveFault::DeadRank { elapsed_s, .. } => *elapsed_s,
            CollectiveFault::RetriesExhausted { elapsed_s, .. } => *elapsed_s,
        }
    }
}

impl fmt::Display for CollectiveFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveFault::DeadRank { rank, elapsed_s } => {
                write!(
                    f,
                    "rank {rank} unresponsive (detected after {elapsed_s:.3}s)"
                )
            }
            CollectiveFault::RetriesExhausted {
                src,
                dst,
                step,
                elapsed_s,
            } => write!(
                f,
                "message {src}->{dst} at step {step} failed every retry ({elapsed_s:.3}s spent)"
            ),
        }
    }
}

impl std::error::Error for CollectiveFault {}

/// SplitMix64 finalizer: a high-quality 64-bit mixer used to derive all
/// per-message fault decisions from the plan seed.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from a mixed key.
pub(crate) fn unit(key: u64) -> f64 {
    (mix(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// How many multiples of the base interval the decorrelated-jitter
/// backoff may grow to before it saturates.
pub const BACKOFF_CAP_FACTOR: f64 = 1024.0;

/// Decorrelated-jitter backoff (the AWS "decorrelated jitter" schedule):
/// attempt `k` waits `min(cap, base + u_k * (3*prev - base))` where
/// `u_k` is a uniform draw keyed on `(seed, key, k)`. Unlike the fixed
/// exponential it replaces, simultaneous retries of different messages
/// de-synchronise instead of hammering the wire in lockstep — yet the
/// whole schedule stays a pure function of the plan seed and the
/// message coordinates, so plans replay bit-identically.
///
/// The interval is computed iteratively from `sleep_0 = base`, so it is
/// deterministic for every `(seed, key, attempt)` triple and bounded in
/// `[base, base * BACKOFF_CAP_FACTOR]`.
pub fn decorrelated_backoff_s(seed: u64, key: u64, base_s: f64, attempt: u32) -> f64 {
    let cap = base_s * BACKOFF_CAP_FACTOR;
    let mut sleep = base_s;
    for k in 1..=attempt {
        let draw = unit(
            seed.wrapping_add(mix(key ^ 0x9e6c_63d0_876a_68de))
                .wrapping_add(mix(u64::from(k).wrapping_mul(0xd6e8_feb8_6659_fd93))),
        );
        sleep = (base_s + draw * (3.0 * sleep - base_s)).min(cap);
    }
    sleep
}

/// A live walk over a [`FaultPlan`]. One session per training run; the
/// trainer advances it with [`begin_iteration`](Self::begin_iteration)
/// and the network layer consults it per collective, per step, per
/// message.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    iter: u64,
    /// Collective sequence number within the run — distinguishes the
    /// corruption coordinates of the many collectives in one iteration.
    seq: u64,
    /// Physical nodes currently dead, sorted.
    dead: Vec<usize>,
    /// Indices of crash events already applied: a crash fires once, so a
    /// recovery that clears the dead set (shrink or restore) is not
    /// re-killed by the same event on the next iteration.
    fired_crashes: Vec<usize>,
    pub report: FaultReport,
}

impl FaultSession {
    pub fn new(plan: FaultPlan) -> Self {
        FaultSession {
            plan,
            iter: 0,
            seq: 0,
            dead: Vec::new(),
            fired_crashes: Vec::new(),
            report: FaultReport::default(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn iter(&self) -> u64 {
        self.iter
    }

    /// Enter iteration `iter`: crashes scheduled at or before it take
    /// effect (a crash during a long repair window must not be missed).
    pub fn begin_iteration(&mut self, iter: u64) {
        self.iter = iter;
        for (i, ev) in self.plan.events.iter().enumerate() {
            if let FaultEvent::NodeCrash { node, at_iter } = *ev {
                if at_iter <= iter && !self.fired_crashes.contains(&i) {
                    self.fired_crashes.push(i);
                    if !self.dead.contains(&node) {
                        self.dead.push(node);
                        self.report.crashes += 1;
                    }
                }
            }
        }
        self.dead.sort_unstable();
    }

    /// Start a new collective; returns its sequence number.
    pub fn begin_collective(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    pub fn is_dead(&self, node: usize) -> bool {
        self.dead.binary_search(&node).is_ok()
    }

    pub fn dead_nodes(&self) -> &[usize] {
        &self.dead
    }

    /// Forget the dead nodes — called after a recovery action rebuilds
    /// the job without them (their ranks no longer exist).
    pub fn clear_dead(&mut self) {
        self.dead.clear();
    }

    /// Record a dead-rank detection: charges the keep-alive timeout and
    /// returns it in seconds.
    pub fn detect(&mut self) -> f64 {
        self.report.detections += 1;
        self.report.detect_latency_s += self.plan.detect_timeout_s;
        self.plan.detect_timeout_s
    }

    pub fn corruption_rate(&self) -> f64 {
        self.plan.corruption_rate
    }

    pub fn max_retries(&self) -> u32 {
        self.plan.max_retries
    }

    /// Backoff before retransmission attempt `attempt` (1-based) of the
    /// message `(src -> dst)` at `step` of collective `seq`: decorrelated
    /// jitter derived from the plan seed and the message coordinates, so
    /// concurrent retries spread out while every plan replays the exact
    /// same schedule.
    pub fn backoff_s(&self, seq: u64, step: usize, src: usize, dst: usize, attempt: u32) -> f64 {
        let key = mix(seq.wrapping_mul(0x517c_c1b7_2722_0a95))
            .wrapping_add(mix(step as u64 ^ 0xda94_2042_e4dd_58b5))
            .wrapping_add(mix((src as u64) << 32 | dst as u64));
        decorrelated_backoff_s(self.plan.seed, key, self.plan.backoff_base_s, attempt)
    }

    /// Is the message `(src -> dst)` of `step` within collective `seq`
    /// corrupted on its `attempt`-th transmission (0 = first send)?
    /// Deterministic in all coordinates; independent across attempts, so
    /// retransmissions usually succeed (the fault is transient).
    pub fn corrupts(&self, seq: u64, step: usize, src: usize, dst: usize, attempt: u32) -> bool {
        if self.plan.corruption_rate <= 0.0 {
            return false;
        }
        let key = self
            .plan
            .seed
            .wrapping_add(mix(self.iter))
            .wrapping_add(mix(seq.wrapping_mul(0x517c_c1b7_2722_0a95)))
            .wrapping_add(mix(step as u64 ^ 0xda94_2042_e4dd_58b5))
            .wrapping_add(mix((src as u64) << 32 | dst as u64))
            .wrapping_add(mix(u64::from(attempt) ^ 0x2545_f491_4f6c_dd1d));
        unit(key) < self.plan.corruption_rate
    }

    /// Multiplicative slowdown of `supernode`'s uplink this iteration
    /// (`1.0` = healthy). Concurrent degradations compound.
    pub fn link_factor(&self, supernode: usize) -> f64 {
        let mut f = 1.0;
        for ev in &self.plan.events {
            if let FaultEvent::LinkDegrade {
                supernode: s,
                factor,
                from_iter,
                until_iter,
            } = *ev
            {
                if s == supernode && (from_iter..until_iter).contains(&self.iter) {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Multiplicative slowdown of `node` this iteration (`1.0` = healthy).
    pub fn straggler_factor(&self, node: usize) -> f64 {
        let mut f = 1.0;
        for ev in &self.plan.events {
            if let FaultEvent::Straggler {
                node: n,
                slowdown,
                from_iter,
                until_iter,
            } = *ev
            {
                if n == node && (from_iter..until_iter).contains(&self.iter) {
                    f *= slowdown;
                }
            }
        }
        f
    }

    /// True if any declared fault can perturb *timing* this iteration —
    /// lets hot paths skip per-transfer factor lookups in the common
    /// healthy case.
    pub fn perturbs_timing(&self) -> bool {
        self.plan.events.iter().any(|ev| {
            matches!(
                ev,
                FaultEvent::LinkDegrade {
                    from_iter,
                    until_iter,
                    ..
                } | FaultEvent::Straggler {
                    from_iter,
                    until_iter,
                    ..
                } if (*from_iter..*until_iter).contains(&self.iter)
            )
        })
    }
}

/// Checksum used to detect in-flight corruption: Fletcher-64 over the
/// raw bit patterns of an f32 payload. Cheap, and any single bit flip
/// changes it.
pub fn checksum(payload: &[f32]) -> u64 {
    let mut a: u64 = 0;
    let mut b: u64 = 0;
    for v in payload {
        a = a.wrapping_add(u64::from(v.to_bits()));
        b = b.wrapping_add(a);
    }
    (b << 32) | (a & 0xffff_ffff)
}

/// Flip one deterministic bit of one deterministic element — the damage
/// the corruption model does to a message in flight.
pub fn corrupt_payload(payload: &mut [f32], seed: u64) {
    if payload.is_empty() {
        return;
    }
    let idx = (mix(seed) as usize) % payload.len();
    let bit = (mix(seed ^ 0xabcd) % 32) as u32;
    payload[idx] = f32::from_bits(payload[idx].to_bits() ^ (1 << bit));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_from_same_plan_agree() {
        let plan = FaultPlan::new(42).corruption(0.1).crash(3, 5);
        let mut a = FaultSession::new(plan.clone());
        let mut b = FaultSession::new(plan);
        for it in 0..10 {
            a.begin_iteration(it);
            b.begin_iteration(it);
            let sa = a.begin_collective();
            let sb = b.begin_collective();
            assert_eq!(sa, sb);
            for step in 0..4 {
                for src in 0..8 {
                    assert_eq!(
                        a.corrupts(sa, step, src, src ^ 1, 0),
                        b.corrupts(sb, step, src, src ^ 1, 0)
                    );
                }
            }
            assert_eq!(a.dead_nodes(), b.dead_nodes());
        }
    }

    #[test]
    fn crash_takes_effect_at_its_iteration() {
        let mut s = FaultSession::new(FaultPlan::new(7).crash(2, 3));
        s.begin_iteration(2);
        assert!(!s.is_dead(2));
        s.begin_iteration(3);
        assert!(s.is_dead(2));
        assert_eq!(s.report.crashes, 1);
        // Idempotent across iterations.
        s.begin_iteration(4);
        assert_eq!(s.report.crashes, 1);
        s.clear_dead();
        assert!(s.dead_nodes().is_empty());
    }

    #[test]
    fn corruption_rate_is_roughly_honoured() {
        let mut s = FaultSession::new(FaultPlan::new(123).corruption(0.2));
        s.begin_iteration(0);
        let seq = s.begin_collective();
        let mut hits = 0;
        let trials = 10_000;
        for i in 0..trials {
            if s.corrupts(seq, i % 7, i % 64, (i + 1) % 64, 0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn retries_are_independent_of_first_attempt() {
        // A corrupted first attempt does not doom the retry: the
        // decision depends on the attempt number.
        let mut s = FaultSession::new(FaultPlan::new(99).corruption(0.5));
        s.begin_iteration(0);
        let seq = s.begin_collective();
        let mut both = 0;
        let mut first = 0;
        for i in 0..4_000 {
            if s.corrupts(seq, 0, i, i + 1, 0) {
                first += 1;
                if s.corrupts(seq, 0, i, i + 1, 1) {
                    both += 1;
                }
            }
        }
        assert!(first > 1_500);
        let cond = both as f64 / first as f64;
        assert!((cond - 0.5).abs() < 0.06, "conditional rate {cond}");
    }

    #[test]
    fn degradation_windows_apply() {
        let plan = FaultPlan::new(1)
            .degrade_link(2, 3.0, 5..10)
            .straggle(7, 2.0, 0..3);
        let mut s = FaultSession::new(plan);
        s.begin_iteration(0);
        assert_eq!(s.link_factor(2), 1.0);
        assert_eq!(s.straggler_factor(7), 2.0);
        assert!(s.perturbs_timing());
        s.begin_iteration(5);
        assert_eq!(s.link_factor(2), 3.0);
        assert_eq!(s.straggler_factor(7), 1.0);
        s.begin_iteration(10);
        assert_eq!(s.link_factor(2), 1.0);
        assert!(!s.perturbs_timing());
    }

    #[test]
    fn backoff_is_jittered_deterministic_and_bounded() {
        let plan = FaultPlan::new(77).backoff_base_s(50.0e-6);
        let a = FaultSession::new(plan.clone());
        let b = FaultSession::new(plan);
        let base = 50.0e-6;
        let mut distinct = std::collections::BTreeSet::new();
        for attempt in 1..=6u32 {
            for (seq, step, src, dst) in
                [(0u64, 0usize, 0usize, 1usize), (3, 2, 5, 6), (9, 1, 7, 0)]
            {
                let s = a.backoff_s(seq, step, src, dst, attempt);
                // Plan replay: a second session gives the same schedule.
                assert_eq!(s, b.backoff_s(seq, step, src, dst, attempt));
                assert!(
                    (base..=base * BACKOFF_CAP_FACTOR).contains(&s),
                    "backoff {s} out of [base, cap]"
                );
                distinct.insert(s.to_bits());
            }
        }
        // Jitter actually decorrelates: different messages and attempts
        // do not share one lockstep exponential ladder.
        assert!(
            distinct.len() > 10,
            "only {} distinct intervals",
            distinct.len()
        );
    }

    #[test]
    fn decorrelated_backoff_grows_from_base() {
        // Attempt 0 is the base itself; later attempts never fall below
        // it and are reproducible.
        for seed in [1u64, 42, 0xdead_beef] {
            assert_eq!(decorrelated_backoff_s(seed, 5, 1e-4, 0), 1e-4);
            for attempt in 1..8 {
                let s = decorrelated_backoff_s(seed, 5, 1e-4, attempt);
                assert!((1e-4..=1e-4 * BACKOFF_CAP_FACTOR).contains(&s));
                assert_eq!(s, decorrelated_backoff_s(seed, 5, 1e-4, attempt));
            }
        }
    }

    #[test]
    fn checksum_catches_single_bit_flips() {
        let payload: Vec<f32> = (0..257).map(|i| (i as f32).sin()).collect();
        let clean = checksum(&payload);
        for seed in 0..64 {
            let mut dirty = payload.clone();
            corrupt_payload(&mut dirty, seed);
            assert_ne!(checksum(&dirty), clean, "seed {seed}");
        }
    }
}
