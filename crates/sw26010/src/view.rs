//! Shared views of main memory used by DMA operations.
//!
//! On the real chip, all 64 CPEs DMA into the same DDR3 address space and
//! disjointness of writes is the programmer's responsibility. We mirror that
//! contract: a [`MemView`] (read) or [`MemViewMut`] (write) is a `Copy`
//! handle to a host slice that every CPE thread of a mesh launch can hold
//! simultaneously. Reads are always safe to issue concurrently; concurrent
//! writes must target disjoint element ranges, which kernel plans guarantee
//! by construction (each CPE owns distinct output rows/tiles).
//!
//! All `unsafe` in the simulator is confined to this module and `dma.rs`,
//! and the public kernel API only exposes memory through DMA calls.

use std::marker::PhantomData;

/// Read-only view of a `[f32]` region of simulated main memory.
#[derive(Clone, Copy)]
pub struct MemView<'a> {
    ptr: *const f32,
    len: usize,
    _marker: PhantomData<&'a [f32]>,
}

// SAFETY: shared reads of f32 data are data-race free; the lifetime ties the
// view to the borrow of the underlying slice.
unsafe impl Send for MemView<'_> {}
unsafe impl Sync for MemView<'_> {}

impl<'a> MemView<'a> {
    pub fn new(slice: &'a [f32]) -> Self {
        MemView {
            ptr: slice.as_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy `dst.len()` elements starting at `offset` into `dst`.
    ///
    /// Panics if the range is out of bounds (DMA beyond the region is a bug
    /// in the kernel plan, not a recoverable condition).
    #[inline]
    pub fn read(&self, offset: usize, dst: &mut [f32]) {
        assert!(
            offset + dst.len() <= self.len,
            "DMA get out of bounds: {}+{} > {}",
            offset,
            dst.len(),
            self.len
        );
        // SAFETY: bounds checked above; source is valid for `len` reads.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Read a single element (used by gather-style reference paths).
    #[inline]
    pub fn at(&self, idx: usize) -> f32 {
        assert!(idx < self.len, "index {idx} out of bounds {}", self.len);
        // SAFETY: bounds checked above.
        unsafe { *self.ptr.add(idx) }
    }

    /// Sub-view starting at `offset` with `len` elements.
    #[inline]
    pub fn slice(&self, offset: usize, len: usize) -> MemView<'a> {
        assert!(offset + len <= self.len, "subview out of bounds");
        // SAFETY: in-bounds sub-range of a valid region.
        MemView {
            ptr: unsafe { self.ptr.add(offset) },
            len,
            _marker: PhantomData,
        }
    }
}

/// Mutable view of a `[f32]` region of simulated main memory.
///
/// `Copy` so that all CPE threads of a launch can address the output buffer,
/// matching the hardware contract. Callers must ensure concurrently written
/// element ranges are disjoint.
#[derive(Clone, Copy)]
pub struct MemViewMut<'a> {
    ptr: *mut f32,
    len: usize,
    _marker: PhantomData<&'a mut [f32]>,
}

// SAFETY: see module docs — disjoint-write discipline is part of the DMA
// contract enforced by kernel plans; reads/writes of distinct elements from
// different threads are race-free.
unsafe impl Send for MemViewMut<'_> {}
unsafe impl Sync for MemViewMut<'_> {}

impl<'a> MemViewMut<'a> {
    pub fn new(slice: &'a mut [f32]) -> Self {
        MemViewMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy `src` into the region starting at `offset`.
    #[inline]
    pub fn write(&self, offset: usize, src: &[f32]) {
        assert!(
            offset + src.len() <= self.len,
            "DMA put out of bounds: {}+{} > {}",
            offset,
            src.len(),
            self.len
        );
        // SAFETY: bounds checked; disjointness across threads is the caller's
        // contract (module docs).
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(offset), src.len());
        }
    }

    /// Accumulate `src` into the region starting at `offset` (`dst += src`).
    ///
    /// Used by col2im-style scatter-add plans where a CPE owns the whole
    /// destination range it accumulates into.
    #[inline]
    pub fn accumulate(&self, offset: usize, src: &[f32]) {
        assert!(
            offset + src.len() <= self.len,
            "DMA accumulate out of bounds"
        );
        // SAFETY: bounds checked; exclusive ownership of the range is the
        // caller's contract.
        unsafe {
            let base = self.ptr.add(offset);
            for (i, v) in src.iter().enumerate() {
                *base.add(i) += *v;
            }
        }
    }

    /// Read back `dst.len()` elements (DMA get from a mutable region).
    #[inline]
    pub fn read(&self, offset: usize, dst: &mut [f32]) {
        assert!(offset + dst.len() <= self.len, "DMA get out of bounds");
        // SAFETY: bounds checked.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Downgrade to a read-only view.
    #[inline]
    pub fn as_view(&self) -> MemView<'a> {
        MemView {
            ptr: self.ptr,
            len: self.len,
            _marker: PhantomData,
        }
    }

    /// Mutable sub-view.
    #[inline]
    pub fn slice(&self, offset: usize, len: usize) -> MemViewMut<'a> {
        assert!(offset + len <= self.len, "subview out of bounds");
        // SAFETY: in-bounds sub-range.
        MemViewMut {
            ptr: unsafe { self.ptr.add(offset) },
            len,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut mem = vec![0.0f32; 16];
        let view = MemViewMut::new(&mut mem);
        view.write(4, &[1.0, 2.0, 3.0]);
        let mut out = [0.0f32; 3];
        view.read(4, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(view.as_view().at(5), 2.0);
    }

    #[test]
    fn accumulate_adds() {
        let mut mem = vec![1.0f32; 8];
        let view = MemViewMut::new(&mut mem);
        view.accumulate(2, &[0.5, 0.5]);
        assert_eq!(mem[2], 1.5);
        assert_eq!(mem[3], 1.5);
        assert_eq!(mem[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let mem = vec![0.0f32; 4];
        let view = MemView::new(&mem);
        let mut dst = [0.0f32; 8];
        view.read(0, &mut dst);
    }

    #[test]
    fn subviews() {
        let mut mem: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = MemViewMut::new(&mut mem);
        let sub = v.slice(5, 3);
        assert_eq!(sub.len(), 3);
        let mut got = [0.0; 2];
        sub.read(1, &mut got);
        assert_eq!(got, [6.0, 7.0]);
    }
}
