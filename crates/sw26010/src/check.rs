//! Kernel-sanitizer support: typed event traces for CPE kernels.
//!
//! When a launch runs in [`CheckMode::Record`], every DMA, register
//! communication, barrier, and LDM allocator call on every CPE appends a
//! [`CpeEvent`] to a per-CPE log. The log never touches the simulated
//! clocks — a traced run produces bit-identical results and simulated
//! timings to an untraced one — so the `swcheck` crate can replay the
//! events afterwards and prove happens-before properties (no read of an
//! in-flight DMA destination, every handle waited exactly once, matched
//! send/recv counts, …) without perturbing what it observes.
//!
//! Recording also arms *liveness* checking: blocking operations (RLC
//! receives, full-FIFO sends, the mesh barrier) switch to bounded waits
//! and declare a stall when the whole mesh stops making progress, so a
//! deadlocked kernel produces a diagnostic instead of hanging the test
//! suite forever.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::dma::DmaDir;
use crate::rlc::Axis;

/// Whether a core group records sanitizer events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// No recording; zero overhead beyond an `Option` branch per call.
    #[default]
    Off,
    /// Record every CPE event and arm stall detection.
    Record,
}

impl CheckMode {
    pub fn is_on(self) -> bool {
        matches!(self, CheckMode::Record)
    }
}

/// A half-open host-address range `[lo, hi)` identifying an LDM buffer or
/// a slice passed to a DMA/RLC call. Zero-length ranges never overlap
/// anything (a 0-byte transfer cannot race).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRange {
    pub lo: usize,
    pub hi: usize,
}

impl MemRange {
    pub fn of_slice<T>(s: &[T]) -> MemRange {
        let lo = s.as_ptr() as usize;
        MemRange {
            lo,
            hi: lo + std::mem::size_of_val(s),
        }
    }

    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// True when the two ranges share at least one byte. Empty ranges
    /// (0-byte buffers) never overlap anything.
    pub fn overlaps(&self, other: &MemRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo < other.hi && other.lo < self.hi
    }
}

/// One recorded operation on one CPE, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum CpeEvent {
    /// An asynchronous DMA request was issued. `range` is the LDM-side
    /// slice: the destination of a get, the source of a put.
    DmaIssue {
        seq: u64,
        dir: DmaDir,
        bytes: usize,
        range: MemRange,
    },
    /// `dma_wait` retired the request `seq`.
    DmaWait { seq: u64 },
    /// `dma_wait` was called with a handle that was never issued or was
    /// already waited (a double-wait). Recorded instead of panicking so
    /// the sanitizer can report it with context.
    DmaWaitStale { seq: u64 },
    /// A register-communication send to mesh index `peer` (one event per
    /// receiver for broadcasts). `range` is the source slice.
    RlcSend {
        axis: Axis,
        peer: usize,
        bytes: usize,
        range: MemRange,
    },
    /// A register-communication receive from mesh index `peer`. `range`
    /// is the destination slice.
    RlcRecv {
        axis: Axis,
        peer: usize,
        bytes: usize,
        range: MemRange,
    },
    /// The CPE entered the mesh barrier for the `n`th time (1-based).
    Barrier { n: u64 },
    /// An LDM buffer was allocated. `used_after` is the allocator's
    /// resident total after this allocation.
    LdmAlloc {
        id: u64,
        bytes: usize,
        range: MemRange,
        used_after: usize,
    },
    /// An LDM buffer was dropped, releasing its budget.
    LdmFree { id: u64, range: MemRange },
}

/// What a stalled CPE was blocked on when the mesh stopped progressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// Waiting to receive from mesh index `from` on `axis`.
    RlcRecv { axis: Axis, from: usize },
    /// Waiting for space in the FIFO towards mesh index `to` on `axis`.
    RlcSend { axis: Axis, to: usize },
    /// Waiting in the mesh barrier.
    Barrier,
}

impl std::fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockedOn::RlcRecv { axis, from } => {
                write!(f, "RLC {axis:?}-bus receive from CPE {from}")
            }
            BlockedOn::RlcSend { axis, to } => {
                write!(f, "RLC {axis:?}-bus send to CPE {to} (FIFO full)")
            }
            BlockedOn::Barrier => write!(f, "mesh barrier"),
        }
    }
}

/// Panic payload used to unwind a stalled CPE thread; the blocked-on
/// detail is stored on the `Cpe` before panicking so the trace keeps it.
#[derive(Debug, Clone, Copy)]
pub struct StallMarker;

/// Everything the sanitizer learned about one CPE during a launch.
#[derive(Debug, Clone, Default)]
pub struct CpeTrace {
    pub idx: usize,
    pub row: usize,
    pub col: usize,
    pub events: Vec<CpeEvent>,
    /// DMA requests issued but never waited by kernel end.
    pub leaked_dma: Vec<u64>,
    /// Set when the CPE was unwound by the stall detector.
    pub stall: Option<BlockedOn>,
    /// LDM working-set high water mark in bytes.
    pub ldm_high_water: usize,
}

/// The complete trace of one mesh kernel launch.
#[derive(Debug, Clone, Default)]
pub struct KernelTrace {
    pub name: String,
    pub n_cpes: usize,
    pub per_cpe: Vec<CpeTrace>,
}

impl KernelTrace {
    /// True when any CPE was unwound by the stall detector.
    pub fn stalled(&self) -> bool {
        self.per_cpe.iter().any(|c| c.stall.is_some())
    }

    /// Mesh-wide LDM high water mark.
    pub fn ldm_high_water(&self) -> usize {
        self.per_cpe
            .iter()
            .map(|c| c.ldm_high_water)
            .max()
            .unwrap_or(0)
    }
}

/// Per-CPE event log, shared with the LDM allocator of the same CPE so
/// allocator events interleave with DMA/RLC events in program order.
pub type EventLog = Rc<RefCell<Vec<CpeEvent>>>;

/// How long one bounded wait lasts before the waiter re-checks mesh-wide
/// progress.
pub(crate) const STALL_SLICE: Duration = Duration::from_millis(20);
/// Consecutive slices without any mesh-wide progress before a stall is
/// declared (total patience: `STALL_SLICE * STALL_STRIKES`).
pub(crate) const STALL_STRIKES: u32 = 8;

/// Launch-wide liveness state shared by all CPEs of a checked launch.
#[derive(Debug, Default)]
pub struct LaunchCheck {
    /// Bumped by every completed CPE operation; a blocked CPE only
    /// declares a stall after the counter stops moving mesh-wide.
    progress: AtomicU64,
    stalled: AtomicBool,
}

impl LaunchCheck {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn bump(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    pub fn declare_stall(&self) {
        self.stalled.store(true, Ordering::Release);
    }

    pub fn is_stalled(&self) -> bool {
        self.stalled.load(Ordering::Acquire)
    }
}

/// Bounded-wait bookkeeping for one blocked operation: tracks whether the
/// mesh made progress between timeout slices and converts sustained
/// silence into a stall verdict.
pub(crate) struct StallWatch<'c> {
    check: &'c LaunchCheck,
    last_progress: u64,
    strikes: u32,
}

impl<'c> StallWatch<'c> {
    pub(crate) fn new(check: &'c LaunchCheck) -> Self {
        StallWatch {
            check,
            last_progress: check.progress(),
            strikes: 0,
        }
    }

    /// Called after each timed-out wait slice. Returns `true` when the
    /// operation should give up and declare a stall.
    pub(crate) fn timed_out(&mut self) -> bool {
        if self.check.is_stalled() {
            // Somebody else already declared; unwind as collateral.
            return true;
        }
        let now = self.check.progress();
        if now != self.last_progress {
            self.last_progress = now;
            self.strikes = 0;
            return false;
        }
        self.strikes += 1;
        if self.strikes >= STALL_STRIKES {
            self.check.declare_stall();
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_overlap_correctly() {
        let a = MemRange { lo: 100, hi: 200 };
        let b = MemRange { lo: 150, hi: 250 };
        let c = MemRange { lo: 200, hi: 300 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "half-open ranges: touching is disjoint");
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn zero_length_ranges_never_overlap() {
        let z = MemRange { lo: 150, hi: 150 };
        let a = MemRange { lo: 100, hi: 200 };
        assert!(!z.overlaps(&a));
        assert!(!a.overlaps(&z));
        assert!(z.is_empty());
    }

    #[test]
    fn of_slice_covers_the_bytes() {
        let v = vec![0.0f32; 16];
        let r = MemRange::of_slice(&v);
        assert_eq!(r.len(), 64);
        let empty: &[f32] = &[];
        assert!(MemRange::of_slice(empty).is_empty());
    }

    #[test]
    fn stall_watch_requires_sustained_silence() {
        let check = LaunchCheck::new();
        let mut w = StallWatch::new(&check);
        for _ in 0..STALL_STRIKES - 1 {
            assert!(!w.timed_out());
        }
        // Progress elsewhere on the mesh resets the strike count.
        check.bump();
        assert!(!w.timed_out());
        for _ in 0..STALL_STRIKES - 1 {
            assert!(!w.timed_out());
        }
        assert!(w.timed_out());
        assert!(check.is_stalled());
    }
}
