//! # sw26010 — functional + timing simulator of the SW26010 many-core processor
//!
//! The SW26010 powers the Sunway TaihuLight supercomputer. Each chip has
//! four *core groups* (CG); each CG pairs a management processing element
//! (MPE) with an 8x8 mesh of compute processing elements (CPE). CPEs have
//! no cache — only a 64 KB software-managed scratch-pad (LDM) — and reach
//! main memory exclusively through DMA. CPEs in the same row or column can
//! exchange 256-bit packets over register buses.
//!
//! This crate simulates that machine at the level algorithm design
//! happens: kernels are closures over a [`cpe::Cpe`] context that exposes
//! exactly the hardware resources (LDM allocation, continuous/strided DMA,
//! row/column register communication, vector pipelines, mesh barrier).
//! Kernels execute *functionally* on real host threads — data really moves,
//! register-communication FIFOs really block — while every operation is
//! charged to a calibrated timing model:
//!
//! * DMA bandwidth as a function of transfer size, stride block size and
//!   CPE concurrency, calibrated to Fig. 2 of the swCaffe paper;
//! * register communication at one 256-bit packet per cycle per bus;
//! * vector compute at 8 double-precision flops per CPE cycle (the chip
//!   has no native single precision — Table I's float and double peaks are
//!   identical, and the simulator inherits that);
//! * MPE-mediated copies at 9.9 GB/s (why Principle 2 exists).
//!
//! ```
//! use sw26010::{run_mesh, ExecMode, MemView, MemViewMut};
//!
//! // Scale a vector by 2 on all 64 CPEs: DMA in, compute, DMA out.
//! let input = vec![1.0f32; 64 * 256];
//! let mut output = vec![0.0f32; 64 * 256];
//! let src = MemView::new(&input);
//! let dst = MemViewMut::new(&mut output);
//! let report = run_mesh(ExecMode::Functional, 64, |cpe| {
//!     let n = 256;
//!     let mut buf = cpe.ldm.alloc_f32(n);
//!     cpe.dma_get(src, cpe.idx() * n, &mut buf);
//!     cpe.compute(n as u64, || {
//!         for v in buf.iter_mut() {
//!             *v *= 2.0;
//!         }
//!     });
//!     cpe.dma_put(dst, cpe.idx() * n, &buf);
//! });
//! assert!(output.iter().all(|&v| v == 2.0));
//! assert!(report.elapsed.seconds() > 0.0);
//! ```

pub mod arch;
pub mod cg;
pub mod check;
pub mod chip;
pub mod cpe;
pub mod dma;
pub mod ldm;
pub mod mesh;
pub mod phase;
pub mod plan;
pub mod rlc;
pub mod stats;
pub mod time;
pub mod view;

pub use cg::CoreGroup;
pub use check::{BlockedOn, CheckMode, CpeEvent, CpeTrace, KernelTrace, MemRange};
pub use chip::Chip;
pub use cpe::{Cpe, DmaHandle};
pub use ldm::{Ldm, LdmBuf, LdmOverflow};
pub use mesh::{run_mesh, run_mesh_traced};
pub use phase::{PhaseRecorder, ScopeRecord};
pub use plan::{KernelPlan, PlanBuffer, PlanViolation, RlcPattern};
pub use stats::{LaunchReport, Stats};
pub use time::{ExecMode, SimTime};
pub use view::{MemView, MemViewMut};
