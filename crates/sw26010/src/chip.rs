//! Whole-chip model: four core groups behind a network-on-chip.
//!
//! swCaffe treats the four CGs as four quasi-independent workers that share
//! nothing but main-memory bandwidth for the gradient sum (Algorithm 1);
//! the chip model therefore only needs CG containers plus the NoC transfer
//! cost used when CG0 gathers the other CGs' gradients.

use crate::arch::{CG_MEM_BANDWIDTH, CORE_GROUPS};
use crate::cg::CoreGroup;
use crate::stats::Stats;
use crate::time::{ExecMode, SimTime};

/// Cross-CG transfer bandwidth over the network-on-chip. Inter-CG traffic
/// goes through main memory, so it is bounded by a CG's memory bandwidth.
pub const NOC_BANDWIDTH: f64 = CG_MEM_BANDWIDTH;

/// One SW26010 chip: 4 core groups.
#[derive(Debug, Default)]
pub struct Chip {
    pub cgs: Vec<CoreGroup>,
}

impl Chip {
    pub fn new(mode: ExecMode) -> Self {
        Chip {
            cgs: (0..CORE_GROUPS).map(|_| CoreGroup::new(mode)).collect(),
        }
    }

    /// A chip whose four core groups all record sanitizer traces.
    pub fn new_checked(mode: ExecMode) -> Self {
        Chip {
            cgs: (0..CORE_GROUPS)
                .map(|_| CoreGroup::new_checked(mode))
                .collect(),
        }
    }

    /// Switch sanitizer recording for every core group.
    pub fn set_check(&mut self, check: crate::check::CheckMode) {
        for cg in &mut self.cgs {
            cg.set_check(check);
        }
    }

    /// Drain recorded kernel traces from all core groups, in CG order.
    pub fn take_traces(&mut self) -> Vec<crate::check::KernelTrace> {
        self.cgs
            .iter_mut()
            .flat_map(|cg| cg.take_traces())
            .collect()
    }

    /// Time to move `bytes` from one CG's memory space to another's.
    pub fn noc_transfer_time(bytes: usize) -> SimTime {
        SimTime::from_seconds(bytes as f64 / NOC_BANDWIDTH)
    }

    /// Counters summed over the four core groups.
    pub fn total_stats(&self) -> Stats {
        let mut s = Stats::default();
        for cg in &self.cgs {
            s.merge(cg.stats());
        }
        s
    }

    /// The chip's critical-path time: the slowest core group (the CGs run
    /// concurrently in Algorithm 1).
    pub fn max_elapsed(&self) -> SimTime {
        self.cgs
            .iter()
            .map(|c| c.elapsed())
            .fold(SimTime::ZERO, SimTime::max)
    }

    pub fn reset(&mut self) {
        for cg in &mut self.cgs {
            cg.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_has_four_core_groups() {
        let chip = Chip::new(ExecMode::TimingOnly);
        assert_eq!(chip.cgs.len(), 4);
    }

    #[test]
    fn max_elapsed_is_critical_path() {
        let mut chip = Chip::new(ExecMode::TimingOnly);
        chip.cgs[2].charge(SimTime::from_seconds(5.0));
        chip.cgs[0].charge(SimTime::from_seconds(1.0));
        assert_eq!(chip.max_elapsed().seconds(), 5.0);
        chip.reset();
        assert_eq!(chip.max_elapsed(), SimTime::ZERO);
    }

    #[test]
    fn noc_transfer_uses_memory_bandwidth() {
        let t = Chip::noc_transfer_time(34_000_000); // 1 ms at 34 GB/s
        assert!((t.seconds() - 1.0e-3).abs() < 1e-9);
    }
}
