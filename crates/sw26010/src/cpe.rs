//! The per-CPE execution context handed to mesh kernels.
//!
//! A kernel is a closure `Fn(&mut Cpe)` executed by 64 (or fewer) real
//! threads. The context exposes exactly the resources a CPE has on
//! silicon: its 64 KB LDM, a DMA engine to main memory, row/column
//! register communication, the vector pipelines, and the mesh barrier.
//! Everything else (direct loads from main memory in particular) is
//! deliberately absent — gld/gst-style accesses are what Principle 2 says
//! to avoid, and kernels written against this API physically cannot issue
//! them.
//!
//! Under a checked launch (see [`crate::check`]) every operation
//! additionally appends a typed event to a per-CPE log and participates
//! in mesh-wide stall detection. The instrumentation never reads or
//! writes the simulated clocks, so checked and unchecked runs produce
//! bit-identical data and timings.

use std::sync::{Condvar, Mutex};

use crate::arch::{CPE_DP_FLOPS_PER_CYCLE, KERNEL_COMPUTE_EFFICIENCY, MESH_DIM};
use crate::check::{
    BlockedOn, CpeEvent, CpeTrace, EventLog, LaunchCheck, MemRange, StallMarker, StallWatch,
    STALL_SLICE,
};
use crate::dma;
use crate::ldm::Ldm;
use crate::rlc::{transfer_cycles, Axis, CpePorts, RlcFabric, RlcMsg, SendAttempt, RLC_HOP_CYCLES};
use crate::stats::Stats;
use crate::time::{ExecMode, SimTime};
use crate::view::{MemView, MemViewMut};

/// Completion token for an asynchronous DMA transfer.
///
/// The copy itself happens eagerly (the simulator is functional); the token
/// carries the simulated completion instant so kernels can overlap compute
/// with the transfer and pay only `max(compute, dma)`, which is how the
/// double-buffered swDNN kernels hide memory latency.
///
/// Each handle is valid for exactly one [`Cpe::dma_wait`]: waiting a
/// handle twice (or a handle from a different request) panics, because on
/// hardware a reply-counter slot is consumed when it is checked and a
/// duplicated wait means the kernel's completion logic is wrong.
#[derive(Debug, Clone, Copy)]
#[must_use = "un-waited DMA transfers do not advance the clock"]
pub struct DmaHandle {
    complete_at: SimTime,
    seq: u64,
}

/// Barrier with simulated-clock reconciliation: after `sync()` every CPE's
/// local clock equals the mesh-wide maximum, which is what a hardware
/// barrier does to wall time.
///
/// Implemented as a generation-counted condition variable rather than
/// `std::sync::Barrier` so checked launches can wait with a timeout and
/// convert barrier divergence (some CPEs never arrive) into a stall
/// diagnostic instead of a hang.
pub struct MeshBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
    /// Running max of the arrivals' clocks for the current generation.
    max: f64,
    /// Reconciled clock of the previous generation.
    result: f64,
}

impl MeshBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        MeshBarrier {
            n,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                max: 0.0,
                result: 0.0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enter the barrier with `local` time; returns the mesh-wide maximum.
    pub fn wait(&self, _slot: usize, local: SimTime) -> SimTime {
        self.wait_inner(local, None)
            .expect("unchecked barrier wait cannot time out")
    }

    /// Bounded-wait variant for checked launches; returns `None` when the
    /// mesh stopped progressing with this CPE still inside the barrier.
    pub(crate) fn wait_checked(&self, local: SimTime, check: &LaunchCheck) -> Option<SimTime> {
        self.wait_inner(local, Some(check))
    }

    fn wait_inner(&self, local: SimTime, check: Option<&LaunchCheck>) -> Option<SimTime> {
        let mut st = self.state.lock().expect("mesh barrier poisoned");
        st.max = st.max.max(local.seconds());
        st.arrived += 1;
        if st.arrived == self.n {
            st.result = st.max;
            st.max = 0.0;
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return Some(SimTime::from_seconds(st.result));
        }
        let gen = st.generation;
        let mut watch = check.map(StallWatch::new);
        while st.generation == gen {
            match &mut watch {
                None => st = self.cv.wait(st).expect("mesh barrier poisoned"),
                Some(w) => {
                    let (guard, timeout) = self
                        .cv
                        .wait_timeout(st, STALL_SLICE)
                        .expect("mesh barrier poisoned");
                    st = guard;
                    if st.generation != gen {
                        break;
                    }
                    if timeout.timed_out() && w.timed_out() {
                        return None;
                    }
                }
            }
        }
        Some(SimTime::from_seconds(st.result))
    }
}

/// Execution context of one CPE inside a mesh kernel launch.
pub struct Cpe<'l> {
    row: usize,
    col: usize,
    idx: usize,
    n_active: usize,
    mode: ExecMode,
    /// The CPE's scratch-pad allocator.
    pub ldm: Ldm,
    clock: SimTime,
    dma_engine_free_at: SimTime,
    stats: Stats,
    fabric: &'l RlcFabric,
    ports: CpePorts,
    barrier: &'l MeshBarrier,
    /// Sanitizer event log; `None` outside checked launches.
    log: Option<EventLog>,
    /// Launch-wide liveness state; `None` outside checked launches.
    check: Option<&'l LaunchCheck>,
    /// Sequence numbers of issued-but-unwaited DMA requests.
    outstanding: Vec<u64>,
    next_dma_seq: u64,
    sync_count: u64,
    stalled_on: Option<BlockedOn>,
}

impl<'l> Cpe<'l> {
    pub(crate) fn new(
        idx: usize,
        n_active: usize,
        mode: ExecMode,
        fabric: &'l RlcFabric,
        barrier: &'l MeshBarrier,
        log: Option<EventLog>,
        check: Option<&'l LaunchCheck>,
    ) -> Self {
        let ports = fabric.take_ports(idx);
        let mut ldm = Ldm::new();
        if let Some(log) = &log {
            ldm.attach_log(log.clone());
        }
        Cpe {
            row: idx / MESH_DIM,
            col: idx % MESH_DIM,
            idx,
            n_active,
            mode,
            ldm,
            clock: SimTime::ZERO,
            dma_engine_free_at: SimTime::ZERO,
            stats: Stats::default(),
            fabric,
            ports,
            barrier,
            log,
            check,
            outstanding: Vec::new(),
            next_dma_seq: 0,
            sync_count: 0,
            stalled_on: None,
        }
    }

    // ---- identity ----------------------------------------------------

    /// Row of this CPE in the 8x8 mesh.
    pub fn row(&self) -> usize {
        self.row
    }

    /// Column of this CPE in the 8x8 mesh.
    pub fn col(&self) -> usize {
        self.col
    }

    /// Linear index (`row * 8 + col`).
    pub fn idx(&self) -> usize {
        self.idx
    }

    /// Number of CPEs participating in this launch (affects the DMA
    /// bandwidth share).
    pub fn n_active(&self) -> usize {
        self.n_active
    }

    /// True when the kernel should actually move/compute data.
    pub fn functional(&self) -> bool {
        self.mode.is_functional()
    }

    /// Local simulated clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    pub(crate) fn finish(self) -> (SimTime, Stats, Option<CpeTrace>) {
        let mut stats = self.stats;
        stats.busy = self.clock;
        let trace = self.log.as_ref().map(|log| CpeTrace {
            idx: self.idx,
            row: self.row,
            col: self.col,
            events: log.borrow_mut().split_off(0),
            leaked_dma: self.outstanding.clone(),
            stall: self.stalled_on,
            ldm_high_water: self.ldm.high_water(),
        });
        (self.clock, stats, trace)
    }

    // ---- sanitizer plumbing (never touches the simulated clocks) ------

    #[inline]
    fn record(&self, ev: impl FnOnce() -> CpeEvent) {
        if let Some(log) = &self.log {
            log.borrow_mut().push(ev());
        }
    }

    #[inline]
    fn progress_bump(&self) {
        if let Some(check) = self.check {
            check.bump();
        }
    }

    /// Unwind this CPE because the mesh stopped progressing while it was
    /// blocked on `blocked`. The trace keeps everything recorded so far
    /// plus the blocked-on detail; `run_mesh_traced` catches the marker.
    fn stall_unwind(&mut self, blocked: BlockedOn) -> ! {
        if let Some(check) = self.check {
            check.declare_stall();
        }
        self.stalled_on = Some(blocked);
        std::panic::panic_any(StallMarker);
    }

    // ---- DMA ----------------------------------------------------------

    fn dma_start(&mut self) -> SimTime {
        // One DMA engine per CPE: transfers queue behind each other but
        // overlap with compute.
        self.clock.max(self.dma_engine_free_at)
    }

    /// Synchronous continuous DMA get: `dst.len()` f32 from `src[offset..]`.
    pub fn dma_get(&mut self, src: MemView<'_>, offset: usize, dst: &mut [f32]) {
        let h = self.dma_get_async(src, offset, dst);
        self.dma_wait(h);
    }

    /// Asynchronous continuous DMA get.
    pub fn dma_get_async(&mut self, src: MemView<'_>, offset: usize, dst: &mut [f32]) -> DmaHandle {
        let bytes = std::mem::size_of_val(dst);
        if self.functional() {
            src.read(offset, dst);
        }
        self.charge_dma(
            bytes,
            0,
            dma::continuous_time(bytes, self.n_active),
            dma::DmaDir::Get,
            MemRange::of_slice(dst),
        )
    }

    /// Synchronous continuous DMA put: `src` into `dst[offset..]`.
    pub fn dma_put(&mut self, dst: MemViewMut<'_>, offset: usize, src: &[f32]) {
        let h = self.dma_put_async(dst, offset, src);
        self.dma_wait(h);
    }

    /// Asynchronous continuous DMA put.
    pub fn dma_put_async(&mut self, dst: MemViewMut<'_>, offset: usize, src: &[f32]) -> DmaHandle {
        let bytes = std::mem::size_of_val(src);
        if self.functional() {
            dst.write(offset, src);
        }
        self.charge_dma(
            0,
            bytes,
            dma::continuous_time(bytes, self.n_active),
            dma::DmaDir::Put,
            MemRange::of_slice(src),
        )
    }

    /// DMA put that *accumulates* into main memory (`dst += src`).
    ///
    /// Hardware has no add-to-memory DMA; this models the common
    /// read-modify-write plan (get + vector add + put) as a single call
    /// charged as two transfers plus the adds.
    pub fn dma_accumulate(&mut self, dst: MemViewMut<'_>, offset: usize, src: &[f32]) {
        let bytes = std::mem::size_of_val(src);
        if self.functional() {
            dst.accumulate(offset, src);
        }
        let t = dma::continuous_time(bytes, self.n_active);
        let h1 = self.charge_dma(
            bytes,
            bytes,
            SimTime::from_seconds(2.0 * t.seconds()),
            dma::DmaDir::Put,
            MemRange::of_slice(src),
        );
        self.charge_flops(src.len() as u64);
        self.dma_wait(h1);
    }

    /// Asynchronous strided DMA get (double-buffering support): the copy
    /// happens eagerly, the simulated completion is returned as a handle.
    #[allow(clippy::too_many_arguments)]
    pub fn dma_get_strided_async(
        &mut self,
        src: MemView<'_>,
        offset: usize,
        block_elems: usize,
        stride_elems: usize,
        nblocks: usize,
        dst: &mut [f32],
    ) -> DmaHandle {
        assert!(
            dst.len() >= block_elems * nblocks,
            "strided get dst too small"
        );
        assert!(stride_elems >= block_elems, "strided get blocks overlap");
        if self.functional() {
            for b in 0..nblocks {
                let s = offset + b * stride_elems;
                let d = b * block_elems;
                src.read(s, &mut dst[d..d + block_elems]);
            }
        }
        let bytes = block_elems * nblocks * 4;
        let t = dma::strided_time(block_elems * 4, nblocks, self.n_active);
        self.charge_dma(bytes, 0, t, dma::DmaDir::Get, MemRange::of_slice(dst))
    }

    /// Strided DMA get: `nblocks` blocks of `block_elems` f32, consecutive
    /// source blocks separated by `stride_elems`, packed densely into `dst`.
    pub fn dma_get_strided(
        &mut self,
        src: MemView<'_>,
        offset: usize,
        block_elems: usize,
        stride_elems: usize,
        nblocks: usize,
        dst: &mut [f32],
    ) {
        let h = self.dma_get_strided_async(src, offset, block_elems, stride_elems, nblocks, dst);
        self.dma_wait(h);
    }

    /// Strided DMA put: scatter dense `src` into blocks of `block_elems`
    /// separated by `stride_elems` in `dst`.
    pub fn dma_put_strided(
        &mut self,
        dst: MemViewMut<'_>,
        offset: usize,
        block_elems: usize,
        stride_elems: usize,
        nblocks: usize,
        src: &[f32],
    ) {
        assert!(
            src.len() >= block_elems * nblocks,
            "strided put src too small"
        );
        assert!(stride_elems >= block_elems, "strided put blocks overlap");
        if self.functional() {
            for b in 0..nblocks {
                let d = offset + b * stride_elems;
                let s = b * block_elems;
                dst.write(d, &src[s..s + block_elems]);
            }
        }
        let bytes = block_elems * nblocks * 4;
        let t = dma::strided_time(block_elems * 4, nblocks, self.n_active);
        let h = self.charge_dma(0, bytes, t, dma::DmaDir::Put, MemRange::of_slice(src));
        self.dma_wait(h);
    }

    fn charge_dma(
        &mut self,
        get: usize,
        put: usize,
        dur: SimTime,
        dir: dma::DmaDir,
        range: MemRange,
    ) -> DmaHandle {
        self.stats.dma_get_bytes += get as u64;
        self.stats.dma_put_bytes += put as u64;
        self.stats.dma_requests += 1;
        let start = self.dma_start();
        let complete_at = start + dur;
        self.dma_engine_free_at = complete_at;
        let seq = self.next_dma_seq;
        self.next_dma_seq += 1;
        self.outstanding.push(seq);
        self.record(|| CpeEvent::DmaIssue {
            seq,
            dir,
            bytes: get + put,
            range,
        });
        self.progress_bump();
        DmaHandle { complete_at, seq }
    }

    /// Block until an asynchronous transfer completes.
    ///
    /// Each handle may be waited exactly once; a second wait on the same
    /// handle panics (or, under a checked launch, is recorded as a
    /// `DmaWaitStale` event for the sanitizer to report).
    pub fn dma_wait(&mut self, h: DmaHandle) {
        match self.outstanding.iter().position(|&s| s == h.seq) {
            Some(p) => {
                self.outstanding.swap_remove(p);
                self.record(|| CpeEvent::DmaWait { seq: h.seq });
                self.clock = self.clock.max(h.complete_at);
                self.progress_bump();
            }
            None if self.log.is_some() => {
                self.record(|| CpeEvent::DmaWaitStale { seq: h.seq });
            }
            None => panic!(
                "dma_wait on a stale or already-waited DmaHandle (request #{} on CPE ({}, {})): \
                 every async DMA must be waited exactly once",
                h.seq, self.row, self.col
            ),
        }
    }

    // ---- register-level communication ----------------------------------

    fn rlc_charge_send(&mut self, bytes: usize) {
        self.stats.rlc_bytes += bytes as u64;
        self.stats.rlc_messages += 1;
        self.clock += SimTime::from_cycles(transfer_cycles(bytes));
    }

    fn payload(&self, data: &[f64]) -> Option<Box<[f64]>> {
        self.functional().then(|| data.to_vec().into_boxed_slice())
    }

    /// Deliver one message on the row bus, with bounded waiting under a
    /// checked launch so a full FIFO can be diagnosed as a stall.
    fn deliver_row(&mut self, dst_col: usize, msg: RlcMsg) {
        match self.check {
            None => self.fabric.send_row(self.row, self.col, dst_col, msg),
            Some(check) => {
                let mut msg = msg;
                let mut watch = StallWatch::new(check);
                loop {
                    match self.fabric.try_send_row(self.row, self.col, dst_col, msg) {
                        SendAttempt::Sent => return,
                        SendAttempt::Full(m) => {
                            msg = m;
                            std::thread::sleep(STALL_SLICE);
                            if watch.timed_out() {
                                self.stall_unwind(BlockedOn::RlcSend {
                                    axis: Axis::Row,
                                    to: self.row * MESH_DIM + dst_col,
                                });
                            }
                        }
                        SendAttempt::Disconnected => self.stall_unwind(BlockedOn::RlcSend {
                            axis: Axis::Row,
                            to: self.row * MESH_DIM + dst_col,
                        }),
                    }
                }
            }
        }
    }

    /// Deliver one message on the column bus (see [`Cpe::deliver_row`]).
    fn deliver_col(&mut self, dst_row: usize, msg: RlcMsg) {
        match self.check {
            None => self.fabric.send_col(self.col, self.row, dst_row, msg),
            Some(check) => {
                let mut msg = msg;
                let mut watch = StallWatch::new(check);
                loop {
                    match self.fabric.try_send_col(self.col, self.row, dst_row, msg) {
                        SendAttempt::Sent => return,
                        SendAttempt::Full(m) => {
                            msg = m;
                            std::thread::sleep(STALL_SLICE);
                            if watch.timed_out() {
                                self.stall_unwind(BlockedOn::RlcSend {
                                    axis: Axis::Col,
                                    to: dst_row * MESH_DIM + self.col,
                                });
                            }
                        }
                        SendAttempt::Disconnected => self.stall_unwind(BlockedOn::RlcSend {
                            axis: Axis::Col,
                            to: dst_row * MESH_DIM + self.col,
                        }),
                    }
                }
            }
        }
    }

    /// P2P send on the row bus to `(self.row, dst_col)`.
    pub fn rlc_row_send(&mut self, dst_col: usize, data: &[f64]) {
        let bytes = std::mem::size_of_val(data);
        self.rlc_charge_send(bytes);
        let msg = RlcMsg {
            sent_at: self.clock,
            data: self.payload(data),
        };
        self.record(|| CpeEvent::RlcSend {
            axis: Axis::Row,
            peer: self.row * MESH_DIM + dst_col,
            bytes,
            range: MemRange::of_slice(data),
        });
        self.deliver_row(dst_col, msg);
        self.progress_bump();
    }

    /// P2P send on the column bus to `(dst_row, self.col)`.
    pub fn rlc_col_send(&mut self, dst_row: usize, data: &[f64]) {
        let bytes = std::mem::size_of_val(data);
        self.rlc_charge_send(bytes);
        let msg = RlcMsg {
            sent_at: self.clock,
            data: self.payload(data),
        };
        self.record(|| CpeEvent::RlcSend {
            axis: Axis::Col,
            peer: dst_row * MESH_DIM + self.col,
            bytes,
            range: MemRange::of_slice(data),
        });
        self.deliver_col(dst_row, msg);
        self.progress_bump();
    }

    /// Broadcast on the row bus to the other active CPEs in this row.
    ///
    /// The bus is occupied once regardless of receiver count, which is what
    /// makes broadcast GEMM so effective (Principle 4).
    pub fn rlc_row_bcast(&mut self, data: &[f64]) {
        let bytes = std::mem::size_of_val(data);
        self.rlc_charge_send(bytes);
        let row_width = self.active_row_width();
        for dst_col in 0..row_width {
            if dst_col != self.col {
                let msg = RlcMsg {
                    sent_at: self.clock,
                    data: self.payload(data),
                };
                self.record(|| CpeEvent::RlcSend {
                    axis: Axis::Row,
                    peer: self.row * MESH_DIM + dst_col,
                    bytes,
                    range: MemRange::of_slice(data),
                });
                self.deliver_row(dst_col, msg);
            }
        }
        self.progress_bump();
    }

    /// Broadcast on the column bus to the other active CPEs in this column.
    pub fn rlc_col_bcast(&mut self, data: &[f64]) {
        let bytes = std::mem::size_of_val(data);
        self.rlc_charge_send(bytes);
        let col_height = self.active_col_height();
        for dst_row in 0..col_height {
            if dst_row != self.row {
                let msg = RlcMsg {
                    sent_at: self.clock,
                    data: self.payload(data),
                };
                self.record(|| CpeEvent::RlcSend {
                    axis: Axis::Col,
                    peer: dst_row * MESH_DIM + self.col,
                    bytes,
                    range: MemRange::of_slice(data),
                });
                self.deliver_col(dst_row, msg);
            }
        }
        self.progress_bump();
    }

    /// Receive one message from the given port, with bounded waiting under
    /// a checked launch.
    fn recv_msg(&mut self, axis: Axis, port: usize, peer: usize) -> RlcMsg {
        match self.check {
            None => {
                let rx = match axis {
                    Axis::Row => &self.ports.row[port],
                    Axis::Col => &self.ports.col[port],
                };
                rx.recv().expect("RLC sender dropped mid-kernel")
            }
            Some(check) => {
                use std::sync::mpsc::RecvTimeoutError;
                let mut watch = StallWatch::new(check);
                loop {
                    let r = match axis {
                        Axis::Row => self.ports.row[port].recv_timeout(STALL_SLICE),
                        Axis::Col => self.ports.col[port].recv_timeout(STALL_SLICE),
                    };
                    match r {
                        Ok(msg) => return msg,
                        Err(RecvTimeoutError::Timeout) => {
                            if watch.timed_out() {
                                self.stall_unwind(BlockedOn::RlcRecv { axis, from: peer });
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            self.stall_unwind(BlockedOn::RlcRecv { axis, from: peer });
                        }
                    }
                }
            }
        }
    }

    /// Receive from `(self.row, src_col)` on the row bus into `buf`.
    pub fn rlc_row_recv(&mut self, src_col: usize, buf: &mut [f64]) {
        let peer = self.row * MESH_DIM + src_col;
        let msg = self.recv_msg(Axis::Row, src_col, peer);
        self.record(|| CpeEvent::RlcRecv {
            axis: Axis::Row,
            peer,
            bytes: std::mem::size_of_val(buf),
            range: MemRange::of_slice(buf),
        });
        self.finish_recv(msg, buf);
        self.progress_bump();
    }

    /// Receive from `(src_row, self.col)` on the column bus into `buf`.
    pub fn rlc_col_recv(&mut self, src_row: usize, buf: &mut [f64]) {
        let peer = src_row * MESH_DIM + self.col;
        let msg = self.recv_msg(Axis::Col, src_row, peer);
        self.record(|| CpeEvent::RlcRecv {
            axis: Axis::Col,
            peer,
            bytes: std::mem::size_of_val(buf),
            range: MemRange::of_slice(buf),
        });
        self.finish_recv(msg, buf);
        self.progress_bump();
    }

    fn finish_recv(&mut self, msg: RlcMsg, buf: &mut [f64]) {
        let bytes = std::mem::size_of_val(buf);
        if let Some(data) = msg.data {
            assert_eq!(data.len(), buf.len(), "RLC receive buffer size mismatch");
            buf.copy_from_slice(&data);
        } else {
            debug_assert!(!self.functional(), "missing payload in functional mode");
        }
        self.clock = self
            .clock
            .max(msg.sent_at + SimTime::from_cycles(RLC_HOP_CYCLES))
            + SimTime::from_cycles(transfer_cycles(bytes));
    }

    fn active_row_width(&self) -> usize {
        // With a partially-filled last row only the first `n mod 8` columns
        // are active there.
        let full_rows = self.n_active / MESH_DIM;
        if self.row < full_rows {
            MESH_DIM
        } else {
            self.n_active % MESH_DIM
        }
    }

    fn active_col_height(&self) -> usize {
        let full_rows = self.n_active / MESH_DIM;
        let rem = self.n_active % MESH_DIM;
        full_rows + usize::from(self.col < rem)
    }

    // ---- compute --------------------------------------------------------

    /// Charge `flops` floating-point operations to the vector pipeline at
    /// the tuned-kernel efficiency.
    pub fn charge_flops(&mut self, flops: u64) {
        self.stats.flops += flops;
        let cycles = flops as f64 / (CPE_DP_FLOPS_PER_CYCLE * KERNEL_COMPUTE_EFFICIENCY);
        self.clock += SimTime::from_cycles(cycles);
        self.progress_bump();
    }

    /// Charge `flops` and, in functional mode, run the math.
    pub fn compute<R: Default>(&mut self, flops: u64, f: impl FnOnce() -> R) -> R {
        self.charge_flops(flops);
        if self.functional() {
            f()
        } else {
            R::default()
        }
    }

    /// Charge scalar (non-vectorised) operations — 1 flop/cycle.
    pub fn charge_scalar_ops(&mut self, ops: u64) {
        self.stats.flops += ops;
        self.clock += SimTime::from_cycles(ops as f64);
        self.progress_bump();
    }

    /// Advance the local clock by an explicit duration (fixed-function
    /// costs such as SIMD shuffles modelled at a coarser grain).
    pub fn charge_time(&mut self, t: SimTime) {
        self.clock += t;
        self.progress_bump();
    }

    // ---- synchronisation -------------------------------------------------

    /// Mesh-wide barrier; local clocks are reconciled to the maximum.
    pub fn sync(&mut self) {
        self.sync_count += 1;
        let n = self.sync_count;
        self.record(|| CpeEvent::Barrier { n });
        self.clock = match self.check {
            None => self.barrier.wait(self.idx, self.clock),
            Some(check) => match self.barrier.wait_checked(self.clock, check) {
                Some(t) => t,
                None => self.stall_unwind(BlockedOn::Barrier),
            },
        };
        // The DMA engine cannot be busy past a barrier.
        self.dma_engine_free_at = self.dma_engine_free_at.max(self.clock);
        self.progress_bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_reconciles_to_max_clock() {
        let b = std::sync::Arc::new(MeshBarrier::new(4));
        let results: Vec<SimTime> = std::thread::scope(|s| {
            (0..4usize)
                .map(|i| {
                    let b = std::sync::Arc::clone(&b);
                    s.spawn(move || b.wait(i, SimTime::from_seconds(i as f64)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in results {
            assert_eq!(r.seconds(), 3.0);
        }
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let b = std::sync::Arc::new(MeshBarrier::new(2));
        let outs: Vec<(SimTime, SimTime)> = std::thread::scope(|s| {
            (0..2usize)
                .map(|i| {
                    let b = std::sync::Arc::clone(&b);
                    s.spawn(move || {
                        let first = b.wait(i, SimTime::from_seconds(1.0 + i as f64));
                        let second =
                            b.wait(i, first + SimTime::from_seconds(10.0 * (i + 1) as f64));
                        (first, second)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (first, second) in outs {
            assert_eq!(first.seconds(), 2.0);
            assert_eq!(second.seconds(), 22.0);
        }
    }

    #[test]
    fn single_participant_barrier_returns_immediately() {
        let b = MeshBarrier::new(1);
        assert_eq!(b.wait(0, SimTime::from_seconds(4.5)).seconds(), 4.5);
        assert_eq!(b.wait(0, SimTime::from_seconds(6.5)).seconds(), 6.5);
    }

    #[test]
    fn checked_barrier_times_out_when_peers_never_arrive() {
        let b = MeshBarrier::new(2);
        let check = LaunchCheck::new();
        // Nobody else will ever arrive: the bounded wait must give up.
        let r = b.wait_checked(SimTime::from_seconds(1.0), &check);
        assert!(r.is_none());
        assert!(check.is_stalled());
    }
}
