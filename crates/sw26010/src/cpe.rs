//! The per-CPE execution context handed to mesh kernels.
//!
//! A kernel is a closure `Fn(&mut Cpe)` executed by 64 (or fewer) real
//! threads. The context exposes exactly the resources a CPE has on
//! silicon: its 64 KB LDM, a DMA engine to main memory, row/column
//! register communication, the vector pipelines, and the mesh barrier.
//! Everything else (direct loads from main memory in particular) is
//! deliberately absent — gld/gst-style accesses are what Principle 2 says
//! to avoid, and kernels written against this API physically cannot issue
//! them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use crate::arch::{CPE_DP_FLOPS_PER_CYCLE, KERNEL_COMPUTE_EFFICIENCY, MESH_DIM};
use crate::dma;
use crate::ldm::Ldm;
use crate::rlc::{transfer_cycles, CpePorts, RlcFabric, RlcMsg, RLC_HOP_CYCLES};
use crate::stats::Stats;
use crate::time::{ExecMode, SimTime};
use crate::view::{MemView, MemViewMut};

/// Completion token for an asynchronous DMA transfer.
///
/// The copy itself happens eagerly (the simulator is functional); the token
/// carries the simulated completion instant so kernels can overlap compute
/// with the transfer and pay only `max(compute, dma)`, which is how the
/// double-buffered swDNN kernels hide memory latency.
#[derive(Debug, Clone, Copy)]
#[must_use = "un-waited DMA transfers do not advance the clock"]
pub struct DmaHandle {
    complete_at: SimTime,
}

/// Barrier with simulated-clock reconciliation: after `sync()` every CPE's
/// local clock equals the mesh-wide maximum, which is what a hardware
/// barrier does to wall time.
pub struct MeshBarrier {
    barrier: Barrier,
    clocks: Vec<AtomicU64>,
}

impl MeshBarrier {
    pub fn new(n: usize) -> Self {
        MeshBarrier {
            barrier: Barrier::new(n),
            clocks: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Enter the barrier with `local` time; returns the mesh-wide maximum.
    pub fn wait(&self, slot: usize, local: SimTime) -> SimTime {
        self.clocks[slot].store(local.seconds().to_bits(), Ordering::Release);
        self.barrier.wait();
        let max = self
            .clocks
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Acquire)))
            .fold(0.0f64, f64::max);
        // Second rendezvous: nobody may overwrite their slot for the next
        // sync until everyone has read this one.
        self.barrier.wait();
        SimTime::from_seconds(max)
    }
}

/// Execution context of one CPE inside a mesh kernel launch.
pub struct Cpe<'l> {
    row: usize,
    col: usize,
    idx: usize,
    n_active: usize,
    mode: ExecMode,
    /// The CPE's scratch-pad allocator.
    pub ldm: Ldm,
    clock: SimTime,
    dma_engine_free_at: SimTime,
    stats: Stats,
    fabric: &'l RlcFabric,
    ports: CpePorts,
    barrier: &'l MeshBarrier,
}

impl<'l> Cpe<'l> {
    pub(crate) fn new(
        idx: usize,
        n_active: usize,
        mode: ExecMode,
        fabric: &'l RlcFabric,
        barrier: &'l MeshBarrier,
    ) -> Self {
        let ports = fabric.take_ports(idx);
        Cpe {
            row: idx / MESH_DIM,
            col: idx % MESH_DIM,
            idx,
            n_active,
            mode,
            ldm: Ldm::new(),
            clock: SimTime::ZERO,
            dma_engine_free_at: SimTime::ZERO,
            stats: Stats::default(),
            fabric,
            ports,
            barrier,
        }
    }

    // ---- identity ----------------------------------------------------

    /// Row of this CPE in the 8x8 mesh.
    pub fn row(&self) -> usize {
        self.row
    }

    /// Column of this CPE in the 8x8 mesh.
    pub fn col(&self) -> usize {
        self.col
    }

    /// Linear index (`row * 8 + col`).
    pub fn idx(&self) -> usize {
        self.idx
    }

    /// Number of CPEs participating in this launch (affects the DMA
    /// bandwidth share).
    pub fn n_active(&self) -> usize {
        self.n_active
    }

    /// True when the kernel should actually move/compute data.
    pub fn functional(&self) -> bool {
        self.mode.is_functional()
    }

    /// Local simulated clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    pub(crate) fn finish(self) -> (SimTime, Stats) {
        let mut stats = self.stats;
        stats.busy = self.clock;
        (self.clock, stats)
    }

    // ---- DMA ----------------------------------------------------------

    fn dma_start(&mut self) -> SimTime {
        // One DMA engine per CPE: transfers queue behind each other but
        // overlap with compute.
        self.clock.max(self.dma_engine_free_at)
    }

    /// Synchronous continuous DMA get: `dst.len()` f32 from `src[offset..]`.
    pub fn dma_get(&mut self, src: MemView<'_>, offset: usize, dst: &mut [f32]) {
        let h = self.dma_get_async(src, offset, dst);
        self.dma_wait(h);
    }

    /// Asynchronous continuous DMA get.
    pub fn dma_get_async(&mut self, src: MemView<'_>, offset: usize, dst: &mut [f32]) -> DmaHandle {
        let bytes = std::mem::size_of_val(dst);
        if self.functional() {
            src.read(offset, dst);
        }
        self.charge_dma(
            bytes,
            0,
            dma::continuous_time(bytes, self.n_active),
            dma::DmaDir::Get,
        )
    }

    /// Synchronous continuous DMA put: `src` into `dst[offset..]`.
    pub fn dma_put(&mut self, dst: MemViewMut<'_>, offset: usize, src: &[f32]) {
        let h = self.dma_put_async(dst, offset, src);
        self.dma_wait(h);
    }

    /// Asynchronous continuous DMA put.
    pub fn dma_put_async(&mut self, dst: MemViewMut<'_>, offset: usize, src: &[f32]) -> DmaHandle {
        let bytes = std::mem::size_of_val(src);
        if self.functional() {
            dst.write(offset, src);
        }
        self.charge_dma(
            0,
            bytes,
            dma::continuous_time(bytes, self.n_active),
            dma::DmaDir::Put,
        )
    }

    /// DMA put that *accumulates* into main memory (`dst += src`).
    ///
    /// Hardware has no add-to-memory DMA; this models the common
    /// read-modify-write plan (get + vector add + put) as a single call
    /// charged as two transfers plus the adds.
    pub fn dma_accumulate(&mut self, dst: MemViewMut<'_>, offset: usize, src: &[f32]) {
        let bytes = std::mem::size_of_val(src);
        if self.functional() {
            dst.accumulate(offset, src);
        }
        let t = dma::continuous_time(bytes, self.n_active);
        let h1 = self.charge_dma(
            bytes,
            bytes,
            SimTime::from_seconds(2.0 * t.seconds()),
            dma::DmaDir::Put,
        );
        self.charge_flops(src.len() as u64);
        self.dma_wait(h1);
    }

    /// Asynchronous strided DMA get (double-buffering support): the copy
    /// happens eagerly, the simulated completion is returned as a handle.
    #[allow(clippy::too_many_arguments)]
    pub fn dma_get_strided_async(
        &mut self,
        src: MemView<'_>,
        offset: usize,
        block_elems: usize,
        stride_elems: usize,
        nblocks: usize,
        dst: &mut [f32],
    ) -> DmaHandle {
        assert!(
            dst.len() >= block_elems * nblocks,
            "strided get dst too small"
        );
        assert!(stride_elems >= block_elems, "strided get blocks overlap");
        if self.functional() {
            for b in 0..nblocks {
                let s = offset + b * stride_elems;
                let d = b * block_elems;
                src.read(s, &mut dst[d..d + block_elems]);
            }
        }
        let bytes = block_elems * nblocks * 4;
        let t = dma::strided_time(block_elems * 4, nblocks, self.n_active);
        self.charge_dma(bytes, 0, t, dma::DmaDir::Get)
    }

    /// Strided DMA get: `nblocks` blocks of `block_elems` f32, consecutive
    /// source blocks separated by `stride_elems`, packed densely into `dst`.
    pub fn dma_get_strided(
        &mut self,
        src: MemView<'_>,
        offset: usize,
        block_elems: usize,
        stride_elems: usize,
        nblocks: usize,
        dst: &mut [f32],
    ) {
        let h = self.dma_get_strided_async(src, offset, block_elems, stride_elems, nblocks, dst);
        self.dma_wait(h);
    }

    /// Strided DMA put: scatter dense `src` into blocks of `block_elems`
    /// separated by `stride_elems` in `dst`.
    pub fn dma_put_strided(
        &mut self,
        dst: MemViewMut<'_>,
        offset: usize,
        block_elems: usize,
        stride_elems: usize,
        nblocks: usize,
        src: &[f32],
    ) {
        assert!(
            src.len() >= block_elems * nblocks,
            "strided put src too small"
        );
        assert!(stride_elems >= block_elems, "strided put blocks overlap");
        if self.functional() {
            for b in 0..nblocks {
                let d = offset + b * stride_elems;
                let s = b * block_elems;
                dst.write(d, &src[s..s + block_elems]);
            }
        }
        let bytes = block_elems * nblocks * 4;
        let t = dma::strided_time(block_elems * 4, nblocks, self.n_active);
        let h = self.charge_dma(0, bytes, t, dma::DmaDir::Put);
        self.dma_wait(h);
    }

    fn charge_dma(&mut self, get: usize, put: usize, dur: SimTime, _dir: dma::DmaDir) -> DmaHandle {
        self.stats.dma_get_bytes += get as u64;
        self.stats.dma_put_bytes += put as u64;
        self.stats.dma_requests += 1;
        let start = self.dma_start();
        let complete_at = start + dur;
        self.dma_engine_free_at = complete_at;
        DmaHandle { complete_at }
    }

    /// Block until an asynchronous transfer completes.
    pub fn dma_wait(&mut self, h: DmaHandle) {
        self.clock = self.clock.max(h.complete_at);
    }

    // ---- register-level communication ----------------------------------

    fn rlc_charge_send(&mut self, bytes: usize) {
        self.stats.rlc_bytes += bytes as u64;
        self.stats.rlc_messages += 1;
        self.clock += SimTime::from_cycles(transfer_cycles(bytes));
    }

    fn payload(&self, data: &[f64]) -> Option<Box<[f64]>> {
        self.functional().then(|| data.to_vec().into_boxed_slice())
    }

    /// P2P send on the row bus to `(self.row, dst_col)`.
    pub fn rlc_row_send(&mut self, dst_col: usize, data: &[f64]) {
        let bytes = std::mem::size_of_val(data);
        self.rlc_charge_send(bytes);
        let msg = RlcMsg {
            sent_at: self.clock,
            data: self.payload(data),
        };
        self.fabric.send_row(self.row, self.col, dst_col, msg);
    }

    /// P2P send on the column bus to `(dst_row, self.col)`.
    pub fn rlc_col_send(&mut self, dst_row: usize, data: &[f64]) {
        let bytes = std::mem::size_of_val(data);
        self.rlc_charge_send(bytes);
        let msg = RlcMsg {
            sent_at: self.clock,
            data: self.payload(data),
        };
        self.fabric.send_col(self.col, self.row, dst_row, msg);
    }

    /// Broadcast on the row bus to the other active CPEs in this row.
    ///
    /// The bus is occupied once regardless of receiver count, which is what
    /// makes broadcast GEMM so effective (Principle 4).
    pub fn rlc_row_bcast(&mut self, data: &[f64]) {
        let bytes = std::mem::size_of_val(data);
        self.rlc_charge_send(bytes);
        let row_width = self.active_row_width();
        for dst_col in 0..row_width {
            if dst_col != self.col {
                let msg = RlcMsg {
                    sent_at: self.clock,
                    data: self.payload(data),
                };
                self.fabric.send_row(self.row, self.col, dst_col, msg);
            }
        }
    }

    /// Broadcast on the column bus to the other active CPEs in this column.
    pub fn rlc_col_bcast(&mut self, data: &[f64]) {
        let bytes = std::mem::size_of_val(data);
        self.rlc_charge_send(bytes);
        let col_height = self.active_col_height();
        for dst_row in 0..col_height {
            if dst_row != self.row {
                let msg = RlcMsg {
                    sent_at: self.clock,
                    data: self.payload(data),
                };
                self.fabric.send_col(self.col, self.row, dst_row, msg);
            }
        }
    }

    /// Receive from `(self.row, src_col)` on the row bus into `buf`.
    pub fn rlc_row_recv(&mut self, src_col: usize, buf: &mut [f64]) {
        let msg = self.ports.row[src_col]
            .recv()
            .expect("RLC sender dropped mid-kernel");
        self.finish_recv(msg, buf);
    }

    /// Receive from `(src_row, self.col)` on the column bus into `buf`.
    pub fn rlc_col_recv(&mut self, src_row: usize, buf: &mut [f64]) {
        let msg = self.ports.col[src_row]
            .recv()
            .expect("RLC sender dropped mid-kernel");
        self.finish_recv(msg, buf);
    }

    fn finish_recv(&mut self, msg: RlcMsg, buf: &mut [f64]) {
        let bytes = std::mem::size_of_val(buf);
        if let Some(data) = msg.data {
            assert_eq!(data.len(), buf.len(), "RLC receive buffer size mismatch");
            buf.copy_from_slice(&data);
        } else {
            debug_assert!(!self.functional(), "missing payload in functional mode");
        }
        self.clock = self
            .clock
            .max(msg.sent_at + SimTime::from_cycles(RLC_HOP_CYCLES))
            + SimTime::from_cycles(transfer_cycles(bytes));
    }

    fn active_row_width(&self) -> usize {
        // With a partially-filled last row only the first `n mod 8` columns
        // are active there.
        let full_rows = self.n_active / MESH_DIM;
        if self.row < full_rows {
            MESH_DIM
        } else {
            self.n_active % MESH_DIM
        }
    }

    fn active_col_height(&self) -> usize {
        let full_rows = self.n_active / MESH_DIM;
        let rem = self.n_active % MESH_DIM;
        full_rows + usize::from(self.col < rem)
    }

    // ---- compute --------------------------------------------------------

    /// Charge `flops` floating-point operations to the vector pipeline at
    /// the tuned-kernel efficiency.
    pub fn charge_flops(&mut self, flops: u64) {
        self.stats.flops += flops;
        let cycles = flops as f64 / (CPE_DP_FLOPS_PER_CYCLE * KERNEL_COMPUTE_EFFICIENCY);
        self.clock += SimTime::from_cycles(cycles);
    }

    /// Charge `flops` and, in functional mode, run the math.
    pub fn compute<R: Default>(&mut self, flops: u64, f: impl FnOnce() -> R) -> R {
        self.charge_flops(flops);
        if self.functional() {
            f()
        } else {
            R::default()
        }
    }

    /// Charge scalar (non-vectorised) operations — 1 flop/cycle.
    pub fn charge_scalar_ops(&mut self, ops: u64) {
        self.stats.flops += ops;
        self.clock += SimTime::from_cycles(ops as f64);
    }

    /// Advance the local clock by an explicit duration (fixed-function
    /// costs such as SIMD shuffles modelled at a coarser grain).
    pub fn charge_time(&mut self, t: SimTime) {
        self.clock += t;
    }

    // ---- synchronisation -------------------------------------------------

    /// Mesh-wide barrier; local clocks are reconciled to the maximum.
    pub fn sync(&mut self) {
        self.clock = self.barrier.wait(self.idx, self.clock);
        // The DMA engine cannot be busy past a barrier.
        self.dma_engine_free_at = self.dma_engine_free_at.max(self.clock);
    }
}
