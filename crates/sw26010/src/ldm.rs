//! Local directive memory (LDM / scratch-pad) management.
//!
//! Each CPE owns 64 KB of software-managed scratch-pad. There is no
//! hardware cache: every byte a kernel touches must be explicitly staged
//! through DMA into an LDM buffer. The allocator here enforces the 64 KB
//! capacity as a hard structural constraint — a kernel whose working set
//! does not fit *panics*, exactly as an over-sized `__thread_local` array
//! fails on the real chip. This is what forces the blocking structure the
//! paper describes (Principles 2 and 3).

use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::arch::LDM_BYTES;

/// Per-CPE LDM allocator (bump accounting with drop-based reclamation).
pub struct Ldm {
    capacity: usize,
    used: Rc<Cell<usize>>,
    high_water: Rc<Cell<usize>>,
}

impl Default for Ldm {
    fn default() -> Self {
        Self::new()
    }
}

impl Ldm {
    pub fn new() -> Self {
        Self::with_capacity(LDM_BYTES)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Ldm {
            capacity,
            used: Rc::new(Cell::new(0)),
            high_water: Rc::new(Cell::new(0)),
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// Maximum bytes ever allocated simultaneously (working-set size).
    pub fn high_water(&self) -> usize {
        self.high_water.get()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn remaining(&self) -> usize {
        self.capacity - self.used.get()
    }

    /// Allocate a zeroed buffer of `n` `f32` elements.
    pub fn alloc_f32(&self, n: usize) -> LdmBuf<f32> {
        self.alloc(n, 0.0f32)
    }

    /// Allocate a zeroed buffer of `n` `f64` elements (register-communication
    /// staging buffers are double precision on SW26010).
    pub fn alloc_f64(&self, n: usize) -> LdmBuf<f64> {
        self.alloc(n, 0.0f64)
    }

    fn alloc<T: Copy>(&self, n: usize, zero: T) -> LdmBuf<T> {
        let bytes = n * std::mem::size_of::<T>();
        let used = self.used.get();
        assert!(
            used + bytes <= self.capacity,
            "LDM overflow: kernel requested {bytes} B with {used} B already \
             resident ({} B capacity). Reduce the block size.",
            self.capacity
        );
        self.used.set(used + bytes);
        self.high_water.set(self.high_water.get().max(used + bytes));
        LdmBuf {
            data: vec![zero; n],
            bytes,
            used: Rc::clone(&self.used),
        }
    }

    /// True if a hypothetical working set of `bytes` fits alongside what is
    /// currently allocated. Used by blocking planners.
    pub fn fits(&self, bytes: usize) -> bool {
        self.used.get() + bytes <= self.capacity
    }
}

/// An LDM-resident buffer. Dereferences to a slice; releases its LDM
/// budget on drop.
pub struct LdmBuf<T> {
    data: Vec<T>,
    bytes: usize,
    used: Rc<Cell<usize>>,
}

impl<T> LdmBuf<T> {
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl<T> Deref for LdmBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for LdmBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for LdmBuf<T> {
    fn drop(&mut self) {
        self.used.set(self.used.get() - self.bytes);
    }
}

/// Plan helper: does a set of buffer sizes (in bytes) fit in one CPE's LDM?
pub fn working_set_fits(buffer_bytes: &[usize]) -> bool {
    buffer_bytes.iter().sum::<usize>() <= LDM_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_reclaim() {
        let ldm = Ldm::new();
        assert_eq!(ldm.capacity(), 64 * 1024);
        {
            let a = ldm.alloc_f32(1024); // 4 KB
            let b = ldm.alloc_f64(1024); // 8 KB
            assert_eq!(a.len(), 1024);
            assert_eq!(b.len(), 1024);
            assert_eq!(ldm.used(), 12 * 1024);
        }
        assert_eq!(ldm.used(), 0);
        assert_eq!(ldm.high_water(), 12 * 1024);
    }

    #[test]
    #[should_panic(expected = "LDM overflow")]
    fn overflow_panics() {
        let ldm = Ldm::new();
        let _a = ldm.alloc_f32(12 * 1024); // 48 KB
        let _b = ldm.alloc_f32(8 * 1024); // +32 KB -> 80 KB > 64 KB
    }

    #[test]
    fn buffers_are_writable() {
        let ldm = Ldm::new();
        let mut buf = ldm.alloc_f32(8);
        buf[3] = 7.0;
        assert_eq!(buf[3], 7.0);
        assert_eq!(buf[0], 0.0);
    }

    #[test]
    fn fits_accounts_for_residents() {
        let ldm = Ldm::new();
        let _a = ldm.alloc_f32(8 * 1024); // 32 KB
        assert!(ldm.fits(32 * 1024));
        assert!(!ldm.fits(32 * 1024 + 1));
    }
}
