//! Local directive memory (LDM / scratch-pad) management.
//!
//! Each CPE owns 64 KB of software-managed scratch-pad. There is no
//! hardware cache: every byte a kernel touches must be explicitly staged
//! through DMA into an LDM buffer. The allocator here enforces the 64 KB
//! capacity as a hard structural constraint — a kernel whose working set
//! does not fit *panics*, exactly as an over-sized `__thread_local` array
//! fails on the real chip. This is what forces the blocking structure the
//! paper describes (Principles 2 and 3).
//!
//! Under [`CheckMode::Record`](crate::check::CheckMode) the allocator also
//! appends alloc/free events (with host address ranges) to the owning
//! CPE's event log, so the sanitizer can correlate DMA traffic with the
//! buffers it targets and detect frees of in-flight destinations.

use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::arch::LDM_BYTES;
use crate::check::{CpeEvent, EventLog, MemRange};

/// A rejected LDM allocation: the request plus the allocator state that
/// made it impossible. `Display` renders the canonical overflow message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdmOverflow {
    /// Bytes the failed allocation asked for.
    pub requested: usize,
    /// Bytes already resident when the request arrived.
    pub used: usize,
    /// Total LDM capacity.
    pub capacity: usize,
}

impl std::fmt::Display for LdmOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LDM overflow: kernel requested {} B with {} B already resident \
             ({} B capacity). Reduce the block size.",
            self.requested, self.used, self.capacity
        )
    }
}

impl std::error::Error for LdmOverflow {}

/// Per-CPE LDM allocator (bump accounting with drop-based reclamation).
pub struct Ldm {
    capacity: usize,
    used: Rc<Cell<usize>>,
    high_water: Rc<Cell<usize>>,
    log: Option<EventLog>,
    next_id: Cell<u64>,
}

impl Default for Ldm {
    fn default() -> Self {
        Self::new()
    }
}

impl Ldm {
    pub fn new() -> Self {
        Self::with_capacity(LDM_BYTES)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Ldm {
            capacity,
            used: Rc::new(Cell::new(0)),
            high_water: Rc::new(Cell::new(0)),
            log: None,
            next_id: Cell::new(0),
        }
    }

    /// Share a sanitizer event log with this allocator (checked launches
    /// only). Alloc/free events then interleave with the owning CPE's
    /// DMA/RLC events in program order.
    pub(crate) fn attach_log(&mut self, log: EventLog) {
        self.log = Some(log);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// Maximum bytes ever allocated simultaneously (working-set size).
    pub fn high_water(&self) -> usize {
        self.high_water.get()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn remaining(&self) -> usize {
        self.capacity - self.used.get()
    }

    /// Allocate a zeroed buffer of `n` `f32` elements.
    ///
    /// Panics with the [`LdmOverflow`] message when the working set no
    /// longer fits; use [`Ldm::try_alloc_f32`] to handle that case.
    pub fn alloc_f32(&self, n: usize) -> LdmBuf<f32> {
        self.try_alloc_f32(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocate a zeroed buffer of `n` `f64` elements (register-communication
    /// staging buffers are double precision on SW26010).
    pub fn alloc_f64(&self, n: usize) -> LdmBuf<f64> {
        self.try_alloc_f64(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Ldm::alloc_f32`].
    pub fn try_alloc_f32(&self, n: usize) -> Result<LdmBuf<f32>, LdmOverflow> {
        self.try_alloc(n, 0.0f32)
    }

    /// Fallible variant of [`Ldm::alloc_f64`].
    pub fn try_alloc_f64(&self, n: usize) -> Result<LdmBuf<f64>, LdmOverflow> {
        self.try_alloc(n, 0.0f64)
    }

    fn try_alloc<T: Copy>(&self, n: usize, zero: T) -> Result<LdmBuf<T>, LdmOverflow> {
        let bytes = n * std::mem::size_of::<T>();
        let used = self.used.get();
        if used + bytes > self.capacity {
            return Err(LdmOverflow {
                requested: bytes,
                used,
                capacity: self.capacity,
            });
        }
        self.used.set(used + bytes);
        self.high_water.set(self.high_water.get().max(used + bytes));
        let data = vec![zero; n];
        let mut id = 0;
        if let Some(log) = &self.log {
            id = self.next_id.get();
            self.next_id.set(id + 1);
            log.borrow_mut().push(CpeEvent::LdmAlloc {
                id,
                bytes,
                range: MemRange::of_slice(&data),
                used_after: used + bytes,
            });
        }
        Ok(LdmBuf {
            data,
            bytes,
            used: Rc::clone(&self.used),
            log: self.log.clone(),
            id,
        })
    }

    /// True if a hypothetical working set of `bytes` fits alongside what is
    /// currently allocated. Used by blocking planners.
    pub fn fits(&self, bytes: usize) -> bool {
        self.used.get() + bytes <= self.capacity
    }
}

/// An LDM-resident buffer. Dereferences to a slice; releases its LDM
/// budget on drop.
#[derive(Debug)]
pub struct LdmBuf<T> {
    data: Vec<T>,
    bytes: usize,
    used: Rc<Cell<usize>>,
    log: Option<EventLog>,
    id: u64,
}

impl<T> LdmBuf<T> {
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl<T> Deref for LdmBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for LdmBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for LdmBuf<T> {
    fn drop(&mut self) {
        self.used.set(self.used.get() - self.bytes);
        if let Some(log) = &self.log {
            log.borrow_mut().push(CpeEvent::LdmFree {
                id: self.id,
                range: MemRange::of_slice(&self.data),
            });
        }
    }
}

/// Plan helper: does a set of buffer sizes (in bytes) fit in one CPE's LDM?
pub fn working_set_fits(buffer_bytes: &[usize]) -> bool {
    buffer_bytes.iter().sum::<usize>() <= LDM_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn alloc_and_reclaim() {
        let ldm = Ldm::new();
        assert_eq!(ldm.capacity(), 64 * 1024);
        {
            let a = ldm.alloc_f32(1024); // 4 KB
            let b = ldm.alloc_f64(1024); // 8 KB
            assert_eq!(a.len(), 1024);
            assert_eq!(b.len(), 1024);
            assert_eq!(ldm.used(), 12 * 1024);
        }
        assert_eq!(ldm.used(), 0);
        assert_eq!(ldm.high_water(), 12 * 1024);
    }

    #[test]
    #[should_panic(expected = "LDM overflow")]
    fn overflow_panics() {
        let ldm = Ldm::new();
        let _a = ldm.alloc_f32(12 * 1024); // 48 KB
        let _b = ldm.alloc_f32(8 * 1024); // +32 KB -> 80 KB > 64 KB
    }

    #[test]
    fn overflow_message_names_all_three_quantities() {
        let ldm = Ldm::new();
        let _a = ldm.alloc_f32(12 * 1024); // 48 KB resident
        let err = ldm.try_alloc_f32(8 * 1024).unwrap_err();
        assert_eq!(
            err,
            LdmOverflow {
                requested: 32 * 1024,
                used: 48 * 1024,
                capacity: 64 * 1024,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("requested 32768 B"), "{msg}");
        assert!(msg.contains("49152 B already resident"), "{msg}");
        assert!(msg.contains("65536 B capacity"), "{msg}");
        // A failed allocation must not consume budget.
        assert_eq!(ldm.used(), 48 * 1024);
        assert!(ldm.try_alloc_f64(2 * 1024).is_ok());
    }

    #[test]
    fn buffers_are_writable() {
        let ldm = Ldm::new();
        let mut buf = ldm.alloc_f32(8);
        buf[3] = 7.0;
        assert_eq!(buf[3], 7.0);
        assert_eq!(buf[0], 0.0);
    }

    #[test]
    fn fits_accounts_for_residents() {
        let ldm = Ldm::new();
        let _a = ldm.alloc_f32(8 * 1024); // 32 KB
        assert!(ldm.fits(32 * 1024));
        assert!(!ldm.fits(32 * 1024 + 1));
    }

    #[test]
    fn attached_log_sees_alloc_and_free_in_order() {
        let mut ldm = Ldm::new();
        let log: EventLog = Rc::new(RefCell::new(Vec::new()));
        ldm.attach_log(Rc::clone(&log));
        {
            let _a = ldm.alloc_f32(16);
            let _b = ldm.alloc_f64(8);
        }
        let events = log.borrow();
        match (&events[0], &events[1], &events[2], &events[3]) {
            (
                CpeEvent::LdmAlloc {
                    id: 0,
                    bytes: 64,
                    used_after: 64,
                    ..
                },
                CpeEvent::LdmAlloc {
                    id: 1,
                    bytes: 64,
                    used_after: 128,
                    ..
                },
                CpeEvent::LdmFree { id: fb, .. },
                CpeEvent::LdmFree { id: fa, .. },
            ) => {
                // Drop order is reverse declaration order.
                assert_eq!(*fb, 1);
                assert_eq!(*fa, 0);
            }
            other => panic!("unexpected event sequence: {other:?}"),
        }
    }

    #[test]
    fn working_set_edge_cases() {
        assert!(working_set_fits(&[]));
        assert!(working_set_fits(&[0]));
        assert!(working_set_fits(&[0, 0, 0]));
        assert!(working_set_fits(&[LDM_BYTES]));
        assert!(!working_set_fits(&[LDM_BYTES, 1]));
        assert!(working_set_fits(&[LDM_BYTES / 2, LDM_BYTES / 2]));
        assert!(!working_set_fits(&[LDM_BYTES / 2, LDM_BYTES / 2 + 1]));
        // Zero-byte buffers consume nothing even when numerous.
        assert!(working_set_fits(&[0; 1000]));
    }
}
