//! Hardware activity counters.
//!
//! Every CPE accumulates a private [`Stats`] during a kernel launch; the
//! mesh sums them at join time, and core groups / chips aggregate launch
//! totals. No atomics are needed because accumulation is thread-local.

use crate::time::SimTime;

/// Counters for one simulation scope (CPE, launch, core group, or chip).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    /// Bytes moved memory -> LDM via DMA get.
    pub dma_get_bytes: u64,
    /// Bytes moved LDM -> memory via DMA put.
    pub dma_put_bytes: u64,
    /// Number of DMA requests issued (each pays the start-up latency).
    pub dma_requests: u64,
    /// Bytes sent over the register-communication fabric.
    pub rlc_bytes: u64,
    /// Register-communication messages (P2P sends count once; a broadcast
    /// counts once per its 7 receivers, matching bus occupancy).
    pub rlc_messages: u64,
    /// Floating-point operations charged to the CPE pipelines.
    pub flops: u64,
    /// Floating-point operations charged to MPE code paths.
    pub mpe_flops: u64,
    /// Mesh kernel launches.
    pub launches: u64,
    /// Total simulated busy time attributed to this scope.
    pub busy: SimTime,
}

impl Stats {
    pub fn merge(&mut self, other: &Stats) {
        self.dma_get_bytes += other.dma_get_bytes;
        self.dma_put_bytes += other.dma_put_bytes;
        self.dma_requests += other.dma_requests;
        self.rlc_bytes += other.rlc_bytes;
        self.rlc_messages += other.rlc_messages;
        self.flops += other.flops;
        self.mpe_flops += other.mpe_flops;
        self.launches += other.launches;
        self.busy += other.busy;
    }

    /// Counters accumulated since `earlier` was snapshotted, i.e. the
    /// inverse of [`Stats::merge`]: `earlier.merge(&d)` restores `self`
    /// when `earlier` is a prefix of this scope. Saturates rather than
    /// wrapping if a stale snapshot is passed after a reset.
    pub fn delta(&self, earlier: &Stats) -> Stats {
        Stats {
            dma_get_bytes: self.dma_get_bytes.saturating_sub(earlier.dma_get_bytes),
            dma_put_bytes: self.dma_put_bytes.saturating_sub(earlier.dma_put_bytes),
            dma_requests: self.dma_requests.saturating_sub(earlier.dma_requests),
            rlc_bytes: self.rlc_bytes.saturating_sub(earlier.rlc_bytes),
            rlc_messages: self.rlc_messages.saturating_sub(earlier.rlc_messages),
            flops: self.flops.saturating_sub(earlier.flops),
            mpe_flops: self.mpe_flops.saturating_sub(earlier.mpe_flops),
            launches: self.launches.saturating_sub(earlier.launches),
            busy: self.busy - earlier.busy, // SimTime subtraction saturates
        }
    }

    /// Total DMA traffic in bytes.
    pub fn dma_bytes(&self) -> u64 {
        self.dma_get_bytes + self.dma_put_bytes
    }

    /// Achieved arithmetic intensity (flops per DMA byte). Returns `None`
    /// when no DMA traffic occurred.
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        let bytes = self.dma_bytes();
        (bytes > 0).then(|| self.flops as f64 / bytes as f64)
    }

    /// Achieved CPE flop rate over the busy window, flops/s.
    pub fn achieved_flops(&self) -> f64 {
        if self.busy.seconds() > 0.0 {
            self.flops as f64 / self.busy.seconds()
        } else {
            0.0
        }
    }
}

/// Result of one mesh kernel launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchReport {
    /// Wall-clock (simulated) duration of the launch: spawn overhead plus
    /// the maximum per-CPE finish time.
    pub elapsed: SimTime,
    /// Counters summed over all participating CPEs.
    pub stats: Stats,
}

impl LaunchReport {
    pub fn merge(&mut self, other: &LaunchReport) {
        self.elapsed += other.elapsed;
        self.stats.merge(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = Stats {
            dma_get_bytes: 10,
            flops: 100,
            ..Default::default()
        };
        let b = Stats {
            dma_get_bytes: 5,
            dma_put_bytes: 7,
            flops: 50,
            busy: SimTime::from_seconds(1.0),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dma_get_bytes, 15);
        assert_eq!(a.dma_put_bytes, 7);
        assert_eq!(a.flops, 150);
        assert_eq!(a.dma_bytes(), 22);
        assert_eq!(a.busy.seconds(), 1.0);
    }

    #[test]
    fn merge_then_delta_is_identity() {
        let a = Stats {
            dma_get_bytes: 11,
            dma_put_bytes: 3,
            dma_requests: 2,
            rlc_bytes: 64,
            rlc_messages: 2,
            flops: 500,
            mpe_flops: 9,
            launches: 1,
            busy: SimTime::from_seconds(0.25),
        };
        let b = Stats {
            dma_get_bytes: 7,
            dma_put_bytes: 1,
            dma_requests: 1,
            rlc_bytes: 32,
            rlc_messages: 1,
            flops: 100,
            mpe_flops: 4,
            launches: 1,
            busy: SimTime::from_seconds(0.5),
        };
        let mut total = a;
        total.merge(&b);
        assert_eq!(total.delta(&a), b);
        assert_eq!(total.delta(&b), a);
        // Merge with the zero element is the identity.
        let mut c = a;
        c.merge(&Stats::default());
        assert_eq!(c, a);
        // Delta against a *later* snapshot saturates to zero.
        assert_eq!(a.delta(&total), Stats::default());
    }

    #[test]
    fn merge_is_commutative() {
        let a = Stats {
            dma_get_bytes: 5,
            flops: 7,
            launches: 1,
            ..Default::default()
        };
        let b = Stats {
            dma_put_bytes: 9,
            rlc_messages: 3,
            ..Default::default()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn arithmetic_intensity() {
        let s = Stats {
            dma_get_bytes: 50,
            dma_put_bytes: 50,
            flops: 2650,
            ..Default::default()
        };
        assert!((s.arithmetic_intensity().unwrap() - 26.5).abs() < 1e-12);
        assert!(Stats::default().arithmetic_intensity().is_none());
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "launches:        {}", self.launches)?;
        writeln!(
            f,
            "DMA:             {:.2} MB get / {:.2} MB put over {} requests",
            self.dma_get_bytes as f64 / 1e6,
            self.dma_put_bytes as f64 / 1e6,
            self.dma_requests
        )?;
        writeln!(
            f,
            "register comm:   {:.2} MB over {} messages",
            self.rlc_bytes as f64 / 1e6,
            self.rlc_messages
        )?;
        writeln!(
            f,
            "flops:           {:.3} G (CPE) + {:.3} M (MPE)",
            self.flops as f64 / 1e9,
            self.mpe_flops as f64 / 1e6
        )?;
        write!(f, "busy:            {:.3} ms", self.busy.seconds() * 1e3)?;
        if let Some(ai) = self.arithmetic_intensity() {
            write!(f, "   arithmetic intensity: {ai:.1} flops/B")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let s = Stats {
            dma_get_bytes: 2_000_000,
            dma_put_bytes: 1_000_000,
            dma_requests: 42,
            rlc_bytes: 500_000,
            rlc_messages: 128,
            flops: 3_000_000_000,
            mpe_flops: 1_000_000,
            launches: 7,
            busy: SimTime::from_seconds(0.005),
        };
        let text = s.to_string();
        assert!(text.contains("launches:        7"));
        assert!(text.contains("2.00 MB get"));
        assert!(text.contains("3.000 G"));
        assert!(text.contains("arithmetic intensity: 1000.0"));
    }
}
