//! DMA timing model, calibrated to the measured curves in Fig. 2 of the
//! paper.
//!
//! The model has three calibration constants (see [`crate::arch`]):
//!
//! * `DMA_STARTUP_SECONDS` — fixed per-request latency ("hundreds of cycles
//!   of LDM transfer latency", Principle 3). This is why transfers below
//!   ~2 KB per CPE waste most of the bandwidth.
//! * `DMA_CPE_LINK_BANDWIDTH` — what a single CPE can stream (the 1-CPE
//!   saturation level on the left of Fig. 2, ~6 GB/s).
//! * `DMA_PEAK_BANDWIDTH` — the 28 GB/s aggregate ceiling of the memory
//!   controller, shared by however many CPEs issue concurrently.
//!
//! For strided access each block additionally pays
//! `DMA_STRIDED_BLOCK_OVERHEAD_SECONDS` (descriptor processing / DRAM row
//! activation), which reproduces the paper's "blocks should be at least
//! 256 bytes" cliff on the right of Fig. 2.
//!
//! These functions are pure: `time = f(shape of the transfer, concurrency)`.
//! The `Cpe` context (see `cpe.rs`) pairs them with the functional copy.

use crate::arch::{
    DMA_CPE_LINK_BANDWIDTH, DMA_PEAK_BANDWIDTH, DMA_STARTUP_SECONDS,
    DMA_STRIDED_BLOCK_OVERHEAD_SECONDS, MPE_MEMCPY_BANDWIDTH,
};
use crate::time::SimTime;

/// Direction of a DMA transfer. Get (memory -> LDM) and put (LDM -> memory)
/// saturate at the same ~28 GB/s in Fig. 2, so the model treats them
/// identically; the enum exists for counters and future asymmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDir {
    Get,
    Put,
}

/// Bandwidth share available to one CPE when `ncpes` stream concurrently.
#[inline]
fn per_cpe_share(ncpes: usize) -> f64 {
    debug_assert!(ncpes >= 1);
    DMA_CPE_LINK_BANDWIDTH.min(DMA_PEAK_BANDWIDTH / ncpes as f64)
}

/// Time for one CPE to move `bytes` contiguous bytes while `ncpes` CPEs
/// stream concurrently.
pub fn continuous_time(bytes: usize, ncpes: usize) -> SimTime {
    if bytes == 0 {
        return SimTime::ZERO;
    }
    let share = per_cpe_share(ncpes);
    SimTime::from_seconds(DMA_STARTUP_SECONDS + bytes as f64 / share)
}

/// Time for one CPE to move `nblocks` strided blocks of `block_bytes` each
/// while `ncpes` CPEs stream concurrently.
pub fn strided_time(block_bytes: usize, nblocks: usize, ncpes: usize) -> SimTime {
    if block_bytes == 0 || nblocks == 0 {
        return SimTime::ZERO;
    }
    let share = per_cpe_share(ncpes);
    let per_block = DMA_STRIDED_BLOCK_OVERHEAD_SECONDS + block_bytes as f64 / share;
    SimTime::from_seconds(DMA_STARTUP_SECONDS + nblocks as f64 * per_block)
}

/// Aggregate bandwidth (bytes/s) achieved when `ncpes` CPEs each move
/// `bytes_per_cpe` contiguous bytes — the quantity plotted on the left of
/// Fig. 2.
pub fn continuous_aggregate_bandwidth(bytes_per_cpe: usize, ncpes: usize) -> f64 {
    let t = continuous_time(bytes_per_cpe, ncpes).seconds();
    if t == 0.0 {
        0.0
    } else {
        (ncpes * bytes_per_cpe) as f64 / t
    }
}

/// Aggregate bandwidth (bytes/s) for strided access where each CPE moves a
/// fixed total of `total_bytes_per_cpe` split into blocks of `block_bytes`
/// — the quantity plotted on the right of Fig. 2 (total fixed at 32 KB).
pub fn strided_aggregate_bandwidth(
    block_bytes: usize,
    total_bytes_per_cpe: usize,
    ncpes: usize,
) -> f64 {
    let nblocks = total_bytes_per_cpe.div_ceil(block_bytes.max(1));
    let t = strided_time(block_bytes, nblocks, ncpes).seconds();
    if t == 0.0 {
        0.0
    } else {
        (ncpes * total_bytes_per_cpe) as f64 / t
    }
}

/// Time for the MPE to copy `bytes` memory-to-memory (Principle 2: only
/// 9.9 GB/s — the reason LDM must be the intermediary for bulk movement).
pub fn mpe_memcpy_time(bytes: usize) -> SimTime {
    SimTime::from_seconds(bytes as f64 / MPE_MEMCPY_BANDWIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1.0e9;

    #[test]
    fn saturates_near_28gbs_with_64_cpes_large_blocks() {
        let bw = continuous_aggregate_bandwidth(16 * 1024, 64);
        assert!(bw > 25.0 * GB && bw <= 28.0 * GB, "bw = {}", bw / GB);
    }

    #[test]
    fn small_transfers_waste_bandwidth() {
        // Principle 3: <2 KB per CPE cannot hide the start-up latency.
        let small = continuous_aggregate_bandwidth(128, 64);
        let large = continuous_aggregate_bandwidth(4096, 64);
        assert!(
            small < 0.45 * large,
            "small={} large={}",
            small / GB,
            large / GB
        );
    }

    #[test]
    fn single_cpe_limited_by_link() {
        let bw = continuous_aggregate_bandwidth(48 * 1024, 1);
        assert!(
            bw < 6.0 * GB,
            "single CPE must be link-limited, got {}",
            bw / GB
        );
        assert!(bw > 4.0 * GB);
    }

    #[test]
    fn bandwidth_monotone_in_size() {
        let mut last = 0.0;
        for sz in [128usize, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768] {
            let bw = continuous_aggregate_bandwidth(sz, 64);
            assert!(bw >= last, "bandwidth decreased at {sz}");
            last = bw;
        }
    }

    #[test]
    fn strided_256b_blocks_are_the_cliff() {
        // Paper: strided blocks should be >= 256 B for satisfactory
        // bandwidth. 4 B blocks should be catastrophically slower.
        let total = 32 * 1024;
        let tiny = strided_aggregate_bandwidth(4, total, 64);
        let ok = strided_aggregate_bandwidth(256, total, 64);
        let big = strided_aggregate_bandwidth(4096, total, 64);
        assert!(tiny < 0.15 * big, "tiny={} big={}", tiny / GB, big / GB);
        assert!(ok > 0.4 * big, "ok={} big={}", ok / GB, big / GB);
    }

    #[test]
    fn mpe_memcpy_is_much_slower_than_dma() {
        let bytes = 1 << 20;
        let mpe = mpe_memcpy_time(bytes).seconds();
        // 64-way DMA of the same total split across CPEs.
        let dma = continuous_time(bytes / 64, 64).seconds();
        assert!(mpe > 2.0 * dma);
    }

    #[test]
    fn zero_sized_transfers_are_free() {
        assert_eq!(continuous_time(0, 64), SimTime::ZERO);
        assert_eq!(strided_time(0, 10, 64), SimTime::ZERO);
        assert_eq!(strided_time(10, 0, 64), SimTime::ZERO);
    }
}
