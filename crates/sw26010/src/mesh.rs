//! Mesh kernel launch: the simulator's equivalent of `athread_spawn` /
//! `athread_join`.
//!
//! A launch runs the kernel closure on `n_cpes` real host threads, each
//! with its own [`Cpe`] context (LDM, DMA engine, RLC ports, local clock).
//! Register-communication receives block exactly as the hardware FIFOs do,
//! so a mis-scheduled kernel deadlocks in simulation the same way it would
//! on silicon. The launch's simulated duration is the spawn overhead plus
//! the latest per-CPE finish time.
//!
//! [`run_mesh_traced`] is the sanitizer entry point: same semantics and
//! bit-identical timing, but every CPE records a typed event log and
//! blocking operations wait with a timeout, so a deadlocked kernel is
//! unwound with per-CPE blocked-on diagnostics instead of hanging.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;

use crate::arch::{ATHREAD_LAUNCH_OVERHEAD_SECONDS, CPES_PER_CG};
use crate::check::{CpeTrace, KernelTrace, LaunchCheck, StallMarker};
use crate::cpe::{Cpe, MeshBarrier};
use crate::rlc::RlcFabric;
use crate::stats::{LaunchReport, Stats};
use crate::time::{ExecMode, SimTime};

/// Run `kernel` on the first `n_cpes` CPEs (row-major) of one core group's
/// 8x8 mesh.
///
/// `kernel` must be deterministic given the CPE identity; all 64 instances
/// run concurrently on host threads.
pub fn run_mesh<F>(mode: ExecMode, n_cpes: usize, kernel: F) -> LaunchReport
where
    F: Fn(&mut Cpe) + Sync,
{
    let (report, _) = run_mesh_inner(mode, n_cpes, None, &kernel);
    report
}

/// Run `kernel` under the sanitizer: identical data and simulated timing,
/// plus a complete per-CPE event trace for `swcheck` to analyze. Blocking
/// operations use bounded waits, so a deadlocked or diverged kernel
/// returns (with `stall` diagnostics in the trace) instead of hanging.
pub fn run_mesh_traced<F>(
    mode: ExecMode,
    n_cpes: usize,
    name: &str,
    kernel: F,
) -> (LaunchReport, KernelTrace)
where
    F: Fn(&mut Cpe) + Sync,
{
    let (report, per_cpe) = run_mesh_inner(mode, n_cpes, Some(name), &kernel);
    let trace = KernelTrace {
        name: name.to_string(),
        n_cpes,
        per_cpe: per_cpe.expect("traced launch must produce traces"),
    };
    (report, trace)
}

fn run_mesh_inner<F>(
    mode: ExecMode,
    n_cpes: usize,
    traced: Option<&str>,
    kernel: &F,
) -> (LaunchReport, Option<Vec<CpeTrace>>)
where
    F: Fn(&mut Cpe) + Sync,
{
    assert!(
        (1..=CPES_PER_CG).contains(&n_cpes),
        "launch must use 1..=64 CPEs, got {n_cpes}"
    );
    let fabric = RlcFabric::new();
    let barrier = MeshBarrier::new(n_cpes);
    let check = traced.map(|_| LaunchCheck::new());
    let fabric_ref = &fabric;
    let barrier_ref = &barrier;
    let check_ref = check.as_ref();

    type CpeResult = Result<(SimTime, Stats, Option<CpeTrace>), Box<dyn std::any::Any + Send>>;

    let per_cpe: Vec<CpeResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_cpes)
            .map(|idx| {
                s.spawn(move || -> CpeResult {
                    let log = check_ref.map(|_| Rc::new(RefCell::new(Vec::new())));
                    let mut cpe =
                        Cpe::new(idx, n_cpes, mode, fabric_ref, barrier_ref, log, check_ref);
                    if check_ref.is_none() {
                        // Unchecked fast path: no unwind catching, panics
                        // surface through the join below exactly as before.
                        kernel(&mut cpe);
                        return Ok(cpe.finish());
                    }
                    match catch_unwind(AssertUnwindSafe(|| kernel(&mut cpe))) {
                        Ok(()) => Ok(cpe.finish()),
                        // A stall unwind (this CPE gave up on a blocked op)
                        // or collateral damage of another CPE's stall
                        // (disconnected channel, barrier timeout): keep the
                        // partial trace — it carries the diagnostic.
                        Err(p) if p.is::<StallMarker>() => Ok(cpe.finish()),
                        Err(p) if check_ref.is_some_and(|c| c.is_stalled()) => {
                            drop(p);
                            Ok(cpe.finish())
                        }
                        Err(p) => Err(p),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise with the original payload so `should_panic`
                // expectations see the kernel's own message.
                Err(p) => resume_unwind(p),
            })
            .collect()
    });

    let mut stats = Stats::default();
    let mut max_clock = SimTime::ZERO;
    let mut traces = traced.map(|_| Vec::with_capacity(n_cpes));
    for r in per_cpe {
        let (clock, s, trace) = match r {
            Ok(v) => v,
            // A genuine kernel panic under tracing: re-raise it on the
            // launching thread with the original payload.
            Err(p) => resume_unwind(p),
        };
        stats.merge(&s);
        max_clock = max_clock.max(clock);
        if let (Some(ts), Some(t)) = (traces.as_mut(), trace) {
            ts.push(t);
        }
    }
    stats.launches = 1;
    let report = LaunchReport {
        elapsed: SimTime::from_seconds(ATHREAD_LAUNCH_OVERHEAD_SECONDS) + max_clock,
        stats,
    };
    (report, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{BlockedOn, CpeEvent};
    use crate::view::{MemView, MemViewMut};

    #[test]
    fn all_64_cpes_run_with_identity() {
        let mut seen = vec![0.0f32; 64];
        let out = MemViewMut::new(&mut seen);
        run_mesh(ExecMode::Functional, 64, |cpe| {
            let v = [cpe.idx() as f32 + 1.0];
            cpe.dma_put(out, cpe.idx(), &v);
            assert_eq!(cpe.idx(), cpe.row() * 8 + cpe.col());
        });
        for (i, v) in seen.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0);
        }
    }

    #[test]
    fn launch_time_includes_spawn_overhead() {
        let r = run_mesh(ExecMode::Functional, 8, |_| {});
        assert!(r.elapsed.seconds() >= ATHREAD_LAUNCH_OVERHEAD_SECONDS);
        assert_eq!(r.stats.launches, 1);
    }

    #[test]
    fn launch_time_is_max_over_cpes() {
        // One CPE does far more work; the launch takes its time.
        let r = run_mesh(ExecMode::TimingOnly, 64, |cpe| {
            if cpe.idx() == 13 {
                cpe.charge_flops(1_000_000);
            } else {
                cpe.charge_flops(10);
            }
        });
        let heavy =
            1_000_000.0 / (8.0 * crate::arch::KERNEL_COMPUTE_EFFICIENCY) / crate::arch::CLOCK_HZ;
        assert!(r.elapsed.seconds() >= heavy);
        assert_eq!(r.stats.flops, 1_000_000 + 63 * 10);
    }

    #[test]
    fn barrier_reconciles_clocks() {
        let r = run_mesh(ExecMode::TimingOnly, 16, |cpe| {
            if cpe.idx() == 0 {
                cpe.charge_flops(800_000);
            }
            cpe.sync();
            // After the barrier every CPE is at the straggler's time; more
            // work strictly extends the launch.
            cpe.charge_flops(800);
        });
        let straggler =
            800_000.0 / (8.0 * crate::arch::KERNEL_COMPUTE_EFFICIENCY) / crate::arch::CLOCK_HZ;
        let tail = 800.0 / (8.0 * crate::arch::KERNEL_COMPUTE_EFFICIENCY) / crate::arch::CLOCK_HZ;
        assert!(r.elapsed.seconds() >= straggler + tail);
    }

    #[test]
    fn rlc_ring_passes_values_around_a_row() {
        // CPE (0, c) sends its value to (0, (c+1) % 8); verify arrival.
        let mut results = vec![0.0f32; 8];
        let out = MemViewMut::new(&mut results);
        run_mesh(ExecMode::Functional, 8, |cpe| {
            let me = [cpe.col() as f64 * 10.0];
            let dst = (cpe.col() + 1) % 8;
            let src = (cpe.col() + 7) % 8;
            cpe.rlc_row_send(dst, &me);
            let mut buf = [0.0f64];
            cpe.rlc_row_recv(src, &mut buf);
            cpe.dma_put(out, cpe.col(), &[buf[0] as f32]);
        });
        for (c, r) in results.iter().enumerate() {
            let src = (c + 7) % 8;
            assert_eq!(*r, src as f32 * 10.0);
        }
    }

    #[test]
    fn row_broadcast_reaches_all_active_row_members() {
        let mut results = vec![0.0f32; 64];
        let out = MemViewMut::new(&mut results);
        run_mesh(ExecMode::Functional, 64, |cpe| {
            // Column 3 of each row broadcasts row*100.
            if cpe.col() == 3 {
                cpe.rlc_row_bcast(&[cpe.row() as f64 * 100.0]);
                cpe.dma_put(out, cpe.idx(), &[cpe.row() as f32 * 100.0]);
            } else {
                let mut buf = [0.0f64];
                cpe.rlc_row_recv(3, &mut buf);
                cpe.dma_put(out, cpe.idx(), &[buf[0] as f32]);
            }
        });
        for (idx, r) in results.iter().enumerate() {
            assert_eq!(*r, (idx / 8) as f32 * 100.0);
        }
    }

    #[test]
    fn col_broadcast_reaches_column() {
        let mut results = vec![0.0f32; 64];
        let out = MemViewMut::new(&mut results);
        run_mesh(ExecMode::Functional, 64, |cpe| {
            if cpe.row() == 5 {
                cpe.rlc_col_bcast(&[cpe.col() as f64 + 0.5]);
                cpe.dma_put(out, cpe.idx(), &[cpe.col() as f32 + 0.5]);
            } else {
                let mut buf = [0.0f64];
                cpe.rlc_col_recv(5, &mut buf);
                cpe.dma_put(out, cpe.idx(), &[buf[0] as f32]);
            }
        });
        for (idx, r) in results.iter().enumerate() {
            assert_eq!(*r, (idx % 8) as f32 + 0.5);
        }
    }

    #[test]
    fn timing_only_mode_skips_data_but_charges_time() {
        let src_data = vec![1.0f32; 1024];
        let mut dst_data = vec![0.0f32; 1024];
        let src = MemView::new(&src_data);
        let dst = MemViewMut::new(&mut dst_data);
        let r = run_mesh(ExecMode::TimingOnly, 1, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(1024);
            cpe.dma_get(src, 0, &mut buf);
            cpe.dma_put(dst, 0, &buf);
        });
        assert!(
            dst_data.iter().all(|&v| v == 0.0),
            "timing-only must not move data"
        );
        assert_eq!(r.stats.dma_get_bytes, 4096);
        assert_eq!(r.stats.dma_put_bytes, 4096);
        assert!(r.elapsed.seconds() > 0.0);
    }

    #[test]
    fn timing_matches_between_modes() {
        let src_data = vec![1.0f32; 4096];
        let src = MemView::new(&src_data);
        let run = |mode| {
            run_mesh(mode, 64, |cpe| {
                let mut buf = cpe.ldm.alloc_f32(64);
                cpe.dma_get(src, cpe.idx() * 64, &mut buf);
                cpe.charge_flops(1000);
                cpe.sync();
            })
        };
        let f = run(ExecMode::Functional);
        let t = run(ExecMode::TimingOnly);
        assert!((f.elapsed.seconds() - t.elapsed.seconds()).abs() < 1e-15);
        assert_eq!(f.stats.dma_get_bytes, t.stats.dma_get_bytes);
        assert_eq!(f.stats.flops, t.stats.flops);
    }

    #[test]
    fn async_dma_overlaps_with_compute() {
        let src_data = vec![0.0f32; 1 << 16];
        let src = MemView::new(&src_data);
        // Sequential: get then compute. Overlapped: async get, compute, wait.
        let seq = run_mesh(ExecMode::TimingOnly, 1, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(8192);
            cpe.dma_get(src, 0, &mut buf);
            cpe.charge_flops(40_000);
        });
        let ovl = run_mesh(ExecMode::TimingOnly, 1, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(8192);
            let h = cpe.dma_get_async(src, 0, &mut buf);
            cpe.charge_flops(40_000);
            cpe.dma_wait(h);
        });
        assert!(ovl.elapsed.seconds() < seq.elapsed.seconds());
    }

    #[test]
    #[should_panic(expected = "stale or already-waited")]
    fn double_wait_panics_unchecked() {
        let src_data = vec![0.0f32; 256];
        let src = MemView::new(&src_data);
        run_mesh(ExecMode::Functional, 1, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(256);
            let h = cpe.dma_get_async(src, 0, &mut buf);
            cpe.dma_wait(h);
            cpe.dma_wait(h); // stale: must panic
        });
    }

    #[test]
    fn traced_run_is_bit_identical_and_records_events() {
        fn add_one(cpe: &mut Cpe, src: MemView<'_>, out: MemViewMut<'_>) {
            let n = 64;
            let mut buf = cpe.ldm.alloc_f32(n);
            let h = cpe.dma_get_async(src, cpe.idx() * n, &mut buf);
            cpe.dma_wait(h);
            cpe.compute(n as u64, || {
                for v in buf.iter_mut() {
                    *v += 1.0;
                }
            });
            cpe.sync();
            cpe.dma_put(out, cpe.idx() * n, &buf);
        }
        let src_data: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        let src = MemView::new(&src_data);
        let mut plain_out = vec![0.0f32; 4096];
        let out = MemViewMut::new(&mut plain_out);
        let plain = run_mesh(ExecMode::Functional, 64, move |cpe| add_one(cpe, src, out));
        let mut traced_out = vec![0.0f32; 4096];
        let out = MemViewMut::new(&mut traced_out);
        let (traced, trace) = run_mesh_traced(ExecMode::Functional, 64, "add_one", move |cpe| {
            add_one(cpe, src, out)
        });
        assert_eq!(plain_out, traced_out, "tracing must not perturb data");
        assert_eq!(
            plain.elapsed.seconds().to_bits(),
            traced.elapsed.seconds().to_bits(),
            "tracing must not perturb simulated time"
        );
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(trace.name, "add_one");
        assert_eq!(trace.per_cpe.len(), 64);
        assert!(!trace.stalled());
        assert_eq!(trace.ldm_high_water(), 64 * 4);
        let events = &trace.per_cpe[0].events;
        assert!(events
            .iter()
            .any(|e| matches!(e, CpeEvent::DmaIssue { seq: 0, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, CpeEvent::Barrier { n: 1 })));
        assert!(trace.per_cpe.iter().all(|c| c.leaked_dma.is_empty()));
    }

    #[test]
    fn traced_deadlock_unwinds_with_diagnostics() {
        // Every CPE of a pair waits for the other to send first: a classic
        // cyclic RLC wait. Untraced this would hang; traced it must return
        // with both CPEs marked blocked on the receive.
        let (_, trace) = run_mesh_traced(ExecMode::Functional, 2, "deadlock", |cpe| {
            let mut buf = [0.0f64];
            let other = 1 - cpe.col();
            cpe.rlc_row_recv(other, &mut buf); // both block here forever
            cpe.rlc_row_send(other, &buf);
        });
        assert!(trace.stalled());
        for c in &trace.per_cpe {
            assert!(
                matches!(c.stall, Some(BlockedOn::RlcRecv { .. })),
                "CPE {} stall = {:?}",
                c.idx,
                c.stall
            );
        }
    }

    #[test]
    fn traced_barrier_divergence_unwinds() {
        // CPE 0 exits without syncing while CPE 1 waits in the barrier.
        let (_, trace) = run_mesh_traced(ExecMode::Functional, 2, "diverge", |cpe| {
            if cpe.idx() == 1 {
                cpe.sync();
            }
        });
        assert!(trace.stalled());
        assert_eq!(trace.per_cpe[1].stall, Some(BlockedOn::Barrier));
        assert_eq!(trace.per_cpe[0].stall, None);
    }
}
