//! Mesh kernel launch: the simulator's equivalent of `athread_spawn` /
//! `athread_join`.
//!
//! A launch runs the kernel closure on `n_cpes` real host threads, each
//! with its own [`Cpe`] context (LDM, DMA engine, RLC ports, local clock).
//! Register-communication receives block exactly as the hardware FIFOs do,
//! so a mis-scheduled kernel deadlocks in simulation the same way it would
//! on silicon. The launch's simulated duration is the spawn overhead plus
//! the latest per-CPE finish time.

use crate::arch::{ATHREAD_LAUNCH_OVERHEAD_SECONDS, CPES_PER_CG};
use crate::cpe::{Cpe, MeshBarrier};
use crate::rlc::RlcFabric;
use crate::stats::{LaunchReport, Stats};
use crate::time::{ExecMode, SimTime};

/// Run `kernel` on the first `n_cpes` CPEs (row-major) of one core group's
/// 8x8 mesh.
///
/// `kernel` must be deterministic given the CPE identity; all 64 instances
/// run concurrently on host threads.
pub fn run_mesh<F>(mode: ExecMode, n_cpes: usize, kernel: F) -> LaunchReport
where
    F: Fn(&mut Cpe) + Sync,
{
    assert!(
        (1..=CPES_PER_CG).contains(&n_cpes),
        "launch must use 1..=64 CPEs, got {n_cpes}"
    );
    let fabric = RlcFabric::new();
    let barrier = MeshBarrier::new(n_cpes);
    let kernel = &kernel;
    let fabric_ref = &fabric;
    let barrier_ref = &barrier;

    let per_cpe: Vec<(SimTime, Stats)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_cpes)
            .map(|idx| {
                s.spawn(move || {
                    let mut cpe = Cpe::new(idx, n_cpes, mode, fabric_ref, barrier_ref);
                    kernel(&mut cpe);
                    cpe.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("CPE kernel panicked"))
            .collect()
    });

    let mut stats = Stats::default();
    let mut max_clock = SimTime::ZERO;
    for (clock, s) in &per_cpe {
        stats.merge(s);
        max_clock = max_clock.max(*clock);
    }
    stats.launches = 1;
    LaunchReport {
        elapsed: SimTime::from_seconds(ATHREAD_LAUNCH_OVERHEAD_SECONDS) + max_clock,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{MemView, MemViewMut};

    #[test]
    fn all_64_cpes_run_with_identity() {
        let mut seen = vec![0.0f32; 64];
        let out = MemViewMut::new(&mut seen);
        run_mesh(ExecMode::Functional, 64, |cpe| {
            let v = [cpe.idx() as f32 + 1.0];
            cpe.dma_put(out, cpe.idx(), &v);
            assert_eq!(cpe.idx(), cpe.row() * 8 + cpe.col());
        });
        for (i, v) in seen.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0);
        }
    }

    #[test]
    fn launch_time_includes_spawn_overhead() {
        let r = run_mesh(ExecMode::Functional, 8, |_| {});
        assert!(r.elapsed.seconds() >= ATHREAD_LAUNCH_OVERHEAD_SECONDS);
        assert_eq!(r.stats.launches, 1);
    }

    #[test]
    fn launch_time_is_max_over_cpes() {
        // One CPE does far more work; the launch takes its time.
        let r = run_mesh(ExecMode::TimingOnly, 64, |cpe| {
            if cpe.idx() == 13 {
                cpe.charge_flops(1_000_000);
            } else {
                cpe.charge_flops(10);
            }
        });
        let heavy =
            1_000_000.0 / (8.0 * crate::arch::KERNEL_COMPUTE_EFFICIENCY) / crate::arch::CLOCK_HZ;
        assert!(r.elapsed.seconds() >= heavy);
        assert_eq!(r.stats.flops, 1_000_000 + 63 * 10);
    }

    #[test]
    fn barrier_reconciles_clocks() {
        let r = run_mesh(ExecMode::TimingOnly, 16, |cpe| {
            if cpe.idx() == 0 {
                cpe.charge_flops(800_000);
            }
            cpe.sync();
            // After the barrier every CPE is at the straggler's time; more
            // work strictly extends the launch.
            cpe.charge_flops(800);
        });
        let straggler =
            800_000.0 / (8.0 * crate::arch::KERNEL_COMPUTE_EFFICIENCY) / crate::arch::CLOCK_HZ;
        let tail = 800.0 / (8.0 * crate::arch::KERNEL_COMPUTE_EFFICIENCY) / crate::arch::CLOCK_HZ;
        assert!(r.elapsed.seconds() >= straggler + tail);
    }

    #[test]
    fn rlc_ring_passes_values_around_a_row() {
        // CPE (0, c) sends its value to (0, (c+1) % 8); verify arrival.
        let mut results = vec![0.0f32; 8];
        let out = MemViewMut::new(&mut results);
        run_mesh(ExecMode::Functional, 8, |cpe| {
            let me = [cpe.col() as f64 * 10.0];
            let dst = (cpe.col() + 1) % 8;
            let src = (cpe.col() + 7) % 8;
            cpe.rlc_row_send(dst, &me);
            let mut buf = [0.0f64];
            cpe.rlc_row_recv(src, &mut buf);
            cpe.dma_put(out, cpe.col(), &[buf[0] as f32]);
        });
        for (c, r) in results.iter().enumerate() {
            let src = (c + 7) % 8;
            assert_eq!(*r, src as f32 * 10.0);
        }
    }

    #[test]
    fn row_broadcast_reaches_all_active_row_members() {
        let mut results = vec![0.0f32; 64];
        let out = MemViewMut::new(&mut results);
        run_mesh(ExecMode::Functional, 64, |cpe| {
            // Column 3 of each row broadcasts row*100.
            if cpe.col() == 3 {
                cpe.rlc_row_bcast(&[cpe.row() as f64 * 100.0]);
                cpe.dma_put(out, cpe.idx(), &[cpe.row() as f32 * 100.0]);
            } else {
                let mut buf = [0.0f64];
                cpe.rlc_row_recv(3, &mut buf);
                cpe.dma_put(out, cpe.idx(), &[buf[0] as f32]);
            }
        });
        for (idx, r) in results.iter().enumerate() {
            assert_eq!(*r, (idx / 8) as f32 * 100.0);
        }
    }

    #[test]
    fn col_broadcast_reaches_column() {
        let mut results = vec![0.0f32; 64];
        let out = MemViewMut::new(&mut results);
        run_mesh(ExecMode::Functional, 64, |cpe| {
            if cpe.row() == 5 {
                cpe.rlc_col_bcast(&[cpe.col() as f64 + 0.5]);
                cpe.dma_put(out, cpe.idx(), &[cpe.col() as f32 + 0.5]);
            } else {
                let mut buf = [0.0f64];
                cpe.rlc_col_recv(5, &mut buf);
                cpe.dma_put(out, cpe.idx(), &[buf[0] as f32]);
            }
        });
        for (idx, r) in results.iter().enumerate() {
            assert_eq!(*r, (idx % 8) as f32 + 0.5);
        }
    }

    #[test]
    fn timing_only_mode_skips_data_but_charges_time() {
        let src_data = vec![1.0f32; 1024];
        let mut dst_data = vec![0.0f32; 1024];
        let src = MemView::new(&src_data);
        let dst = MemViewMut::new(&mut dst_data);
        let r = run_mesh(ExecMode::TimingOnly, 1, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(1024);
            cpe.dma_get(src, 0, &mut buf);
            cpe.dma_put(dst, 0, &buf);
        });
        assert!(
            dst_data.iter().all(|&v| v == 0.0),
            "timing-only must not move data"
        );
        assert_eq!(r.stats.dma_get_bytes, 4096);
        assert_eq!(r.stats.dma_put_bytes, 4096);
        assert!(r.elapsed.seconds() > 0.0);
    }

    #[test]
    fn timing_matches_between_modes() {
        let src_data = vec![1.0f32; 4096];
        let src = MemView::new(&src_data);
        let run = |mode| {
            run_mesh(mode, 64, |cpe| {
                let mut buf = cpe.ldm.alloc_f32(64);
                cpe.dma_get(src, cpe.idx() * 64, &mut buf);
                cpe.charge_flops(1000);
                cpe.sync();
            })
        };
        let f = run(ExecMode::Functional);
        let t = run(ExecMode::TimingOnly);
        assert!((f.elapsed.seconds() - t.elapsed.seconds()).abs() < 1e-15);
        assert_eq!(f.stats.dma_get_bytes, t.stats.dma_get_bytes);
        assert_eq!(f.stats.flops, t.stats.flops);
    }

    #[test]
    fn async_dma_overlaps_with_compute() {
        let src_data = vec![0.0f32; 1 << 16];
        let src = MemView::new(&src_data);
        // Sequential: get then compute. Overlapped: async get, compute, wait.
        let seq = run_mesh(ExecMode::TimingOnly, 1, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(8192);
            cpe.dma_get(src, 0, &mut buf);
            cpe.charge_flops(40_000);
        });
        let ovl = run_mesh(ExecMode::TimingOnly, 1, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(8192);
            let h = cpe.dma_get_async(src, 0, &mut buf);
            cpe.charge_flops(40_000);
            cpe.dma_wait(h);
        });
        assert!(ovl.elapsed.seconds() < seq.elapsed.seconds());
    }
}
