//! Scoped attribution of simulated time and hardware counters.
//!
//! A [`PhaseRecorder`] brackets sections of work on a [`CoreGroup`] and
//! records, per named scope, exactly the time and [`Stats`] that accrued
//! inside it ([`Stats::delta`] of before/after snapshots). The profiling
//! layer (`swprof`) turns these records into per-kernel roofline
//! attribution without the kernels having to know they are being
//! measured.

use crate::cg::CoreGroup;
use crate::stats::Stats;
use crate::time::SimTime;

/// What one scope accumulated on its core group.
#[derive(Debug, Clone)]
pub struct ScopeRecord {
    pub name: String,
    /// Counters accrued strictly inside the scope.
    pub stats: Stats,
    /// Simulated time accrued strictly inside the scope.
    pub elapsed: SimTime,
}

/// Collects [`ScopeRecord`]s across a run. Scopes with the same name stay
/// separate records (call sites decide whether to aggregate).
#[derive(Debug, Clone, Default)]
pub struct PhaseRecorder {
    records: Vec<ScopeRecord>,
}

impl PhaseRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` against `cg` and attribute everything it accrues to a
    /// scope called `name`. Returns `f`'s result.
    pub fn scope<R>(
        &mut self,
        name: &str,
        cg: &mut CoreGroup,
        f: impl FnOnce(&mut CoreGroup) -> R,
    ) -> R {
        let stats_before = *cg.stats();
        let t_before = cg.elapsed();
        let out = f(cg);
        self.records.push(ScopeRecord {
            name: name.to_string(),
            stats: cg.stats().delta(&stats_before),
            elapsed: cg.elapsed() - t_before,
        });
        out
    }

    pub fn records(&self) -> &[ScopeRecord] {
        &self.records
    }

    /// Sum the records of every scope with the given name.
    pub fn total(&self, name: &str) -> Option<ScopeRecord> {
        let mut found = None;
        for r in self.records.iter().filter(|r| r.name == name) {
            let acc = found.get_or_insert_with(|| ScopeRecord {
                name: name.to_string(),
                stats: Stats::default(),
                elapsed: SimTime::ZERO,
            });
            acc.stats.merge(&r.stats);
            acc.elapsed += r.elapsed;
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ExecMode;

    #[test]
    fn scope_captures_only_inner_work() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        // Work before the scope must not be attributed to it.
        cg.run(64, |cpe| cpe.charge_flops(500));
        let mut rec = PhaseRecorder::new();
        rec.scope("gemm", &mut cg, |cg| {
            cg.run(64, |cpe| cpe.charge_flops(1000));
        });
        let r = &rec.records()[0];
        assert_eq!(r.name, "gemm");
        assert_eq!(r.stats.flops, 64 * 1000);
        assert_eq!(r.stats.launches, 1);
        assert!(r.elapsed.seconds() > 0.0);
        assert!(r.elapsed < cg.elapsed());
    }

    #[test]
    fn repeated_scopes_aggregate_via_total() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let mut rec = PhaseRecorder::new();
        for _ in 0..3 {
            rec.scope("relu", &mut cg, |cg| {
                cg.run(64, |cpe| cpe.charge_flops(10));
            });
        }
        assert_eq!(rec.records().len(), 3);
        let total = rec.total("relu").unwrap();
        assert_eq!(total.stats.flops, 3 * 64 * 10);
        assert_eq!(total.stats.launches, 3);
        assert!(rec.total("missing").is_none());
    }

    #[test]
    fn scope_passes_through_return_value() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let mut rec = PhaseRecorder::new();
        let v = rec.scope("x", &mut cg, |_| 42);
        assert_eq!(v, 42);
    }
}
