//! Simulated time.
//!
//! The simulator is not cycle-accurate; it charges analytically-modelled
//! durations to per-CPE local clocks and reconciles them at synchronisation
//! points (register-communication receives take `max(local, sender)`,
//! barriers take the mesh-wide max). This is the classic conservative
//! parallel-discrete-event shortcut and is exact for the bulk-synchronous
//! kernels swDNN uses.

use std::ops::{Add, AddAssign, Sub};

/// A simulated duration / instant, in seconds.
///
/// Stored as `f64` seconds; at nanosecond granularity this is exact far
/// beyond any simulation length we run.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    #[inline]
    pub fn from_seconds(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "negative/NaN sim time: {s}");
        SimTime(s)
    }

    #[inline]
    pub fn from_cycles(cycles: f64) -> Self {
        SimTime::from_seconds(crate::arch::cycles_to_seconds(cycles))
    }

    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

/// Whether kernels actually move and compute data, or only charge time.
///
/// `Functional` is used by tests and examples (results are bit-checked
/// against reference implementations); `TimingOnly` is used by the large
/// table/figure sweeps where a functional VGG-16 batch-128 iteration would
/// be terabytes of host arithmetic. The *time charged is identical* in both
/// modes: the cost model depends only on shapes and plans, never on values.
///
/// `HostNative` is the third face: kernels compute the same values as
/// `Functional` (bit-for-bit — the host mirrors replicate the mesh
/// kernels' types and accumulation order) but run as plain blocked host
/// loops on `threads` OS threads with **no timing model**: reports carry
/// zero simulated time and zero counters. Kernels without a host mirror
/// fall back to the functional mesh, so results stay bit-identical even
/// for partially-ported pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    #[default]
    Functional,
    TimingOnly,
    HostNative {
        /// Worker threads for the host execution path (0 = one per
        /// available core, resolved at dispatch time).
        threads: usize,
    },
}

impl ExecMode {
    /// True when kernels materialise real values (both the simulated mesh
    /// and the host-native path); false when only time is charged.
    #[inline]
    pub fn is_functional(self) -> bool {
        !matches!(self, ExecMode::TimingOnly)
    }

    /// The host-native thread count, if this mode executes on the host
    /// path rather than the simulated mesh.
    #[inline]
    pub fn host_threads(self) -> Option<usize> {
        match self {
            ExecMode::HostNative { threads } => Some(threads),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = SimTime::from_seconds(1.0);
        let b = SimTime::from_seconds(2.5);
        assert_eq!((a + b).seconds(), 3.5);
        assert_eq!((b - a).seconds(), 1.5);
        // Saturating subtraction: durations never go negative.
        assert_eq!((a - b).seconds(), 0.0);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn cycle_conversion() {
        let t = SimTime::from_cycles(1.45e9);
        assert!((t.seconds() - 1.0).abs() < 1e-12);
    }
}
