//! Architectural constants of the SW26010 many-core processor.
//!
//! Numbers come from the swCaffe paper (Table I, Section II-A, Fig. 2) and
//! the public SW26010 benchmarking literature it cites. They parameterise
//! the timing model; the functional simulator enforces the *structural*
//! constraints (LDM capacity, mesh shape, row/column-only register
//! communication) independently of these values.

/// Core groups per chip.
pub const CORE_GROUPS: usize = 4;

/// CPE mesh dimension: the cluster is `MESH_DIM x MESH_DIM`.
pub const MESH_DIM: usize = 8;

/// Computing processing elements per core group.
pub const CPES_PER_CG: usize = MESH_DIM * MESH_DIM;

/// Clock frequency of both MPE and CPE cores, in Hz (1.45 GHz).
pub const CLOCK_HZ: f64 = 1.45e9;

/// Local directive memory (scratch pad) per CPE, in bytes (64 KB).
pub const LDM_BYTES: usize = 64 * 1024;

/// Main memory per core group, in bytes (8 GB DDR3).
pub const CG_MEMORY_BYTES: usize = 8 * 1024 * 1024 * 1024;

/// SIMD width in bits (256-bit vector registers).
pub const SIMD_BITS: usize = 256;

/// Double-precision lanes per SIMD register.
pub const SIMD_DP_LANES: usize = SIMD_BITS / 64;

/// Peak double-precision throughput of one CPE, flops/cycle
/// (256-bit fused multiply-add: 4 lanes x 2 flops).
pub const CPE_DP_FLOPS_PER_CYCLE: f64 = 8.0;

/// Peak double-precision performance of the whole 8x8 CPE cluster of one
/// core group: 64 * 8 flops/cycle * 1.45 GHz = 742.4 GFlops.
pub const CPE_CLUSTER_PEAK_FLOPS: f64 = CPES_PER_CG as f64 * CPE_DP_FLOPS_PER_CYCLE * CLOCK_HZ;

/// Peak performance of the management processing element (11.6 GFlops).
pub const MPE_PEAK_FLOPS: f64 = 11.6e9;

/// Whole-chip peak (4 CGs, MPE + CPE cluster): 3.02 TFlops⁠—⁠wired to the
/// published figure rather than derived, for reporting parity with Table I.
pub const CHIP_PEAK_FLOPS: f64 = 3.02e12;

/// The SW26010 has no native single-precision arithmetic or single-precision
/// register communication: single data is widened to double. Hence the
/// float and double peaks in Table I are identical.
pub const SP_EQUALS_DP: bool = true;

/// Theoretical memory bandwidth per core group (one 128-bit DDR3 channel),
/// in bytes/second. 4 channels give the chip-level 136 GB/s figure.
pub const CG_MEM_BANDWIDTH: f64 = 34.0e9;

/// Measured saturating DMA bandwidth per core group (Fig. 2): ~28 GB/s for
/// both get and put when all 64 CPEs issue large continuous transfers.
pub const DMA_PEAK_BANDWIDTH: f64 = 28.0e9;

/// Bandwidth of MPE-mediated memory-to-memory copies (Principle 2): 9.9 GB/s.
pub const MPE_MEMCPY_BANDWIDTH: f64 = 9.9e9;

/// Per-CPE DMA link bandwidth (the single-CPE saturation level in Fig. 2).
pub const DMA_CPE_LINK_BANDWIDTH: f64 = 6.0e9;

/// DMA start-up latency per request ("hundreds of cycles" of LDM transfer
/// latency, paper Principle 3). ~1450 cycles at 1.45 GHz.
pub const DMA_STARTUP_SECONDS: f64 = 1.0e-6;

/// Extra fixed overhead per strided block (descriptor processing + DRAM
/// row activation), calibrated so that <256-byte blocks lose most of the
/// bandwidth, matching the right half of Fig. 2.
pub const DMA_STRIDED_BLOCK_OVERHEAD_SECONDS: f64 = 2.0e-7;

/// Register-level communication: bytes moved per cycle per CPE lane
/// (one 256-bit register per cycle).
pub const RLC_BYTES_PER_CYCLE: f64 = 32.0;

/// Aggregate pipelined P2P RLC bandwidth across the mesh (2549 GB/s) and
/// broadcast bandwidth (4461 GB/s), from Xu et al. \[7\]; used for reporting.
pub const RLC_P2P_AGG_BANDWIDTH: f64 = 2549.0e9;
pub const RLC_BCAST_AGG_BANDWIDTH: f64 = 4461.0e9;

/// RLC message granularity in bytes (256-bit packets).
pub const RLC_PACKET_BYTES: usize = 32;

/// Depth of the RLC send/receive FIFOs, in 256-bit packets. Senders stall
/// when the receiving FIFO is full (anonymous producer-consumer semantics).
pub const RLC_FIFO_DEPTH: usize = 4;

/// Efficiency factor applied to hand-tuned compute kernels (register
/// blocking + dual-issue of the float and memory pipelines never reaches
/// 100% of peak; swDNN reports ~85-95% on large GEMM inner kernels).
pub const KERNEL_COMPUTE_EFFICIENCY: f64 = 0.88;

/// Overhead of spawning + joining a CPE-cluster kernel via the athread
/// runtime (thread launch, argument marshalling, completion polling).
pub const ATHREAD_LAUNCH_OVERHEAD_SECONDS: f64 = 2.0e-6;

/// Flop-per-byte ratio of the core group: 742.4 GFlops / 28 GB/s = 26.5
/// (paper, Principle 3).
pub fn flop_per_byte_ratio() -> f64 {
    CPE_CLUSTER_PEAK_FLOPS / DMA_PEAK_BANDWIDTH
}

/// Cycles to seconds at the SW26010 clock.
#[inline]
pub fn cycles_to_seconds(cycles: f64) -> f64 {
    cycles / CLOCK_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_peak_matches_paper() {
        assert!((CPE_CLUSTER_PEAK_FLOPS - 742.4e9).abs() / 742.4e9 < 1e-3);
    }

    #[test]
    fn flop_per_byte_matches_paper() {
        // Paper, Principle 3: 742.4 GFlops / 28 GB/s = 26.5.
        assert!((flop_per_byte_ratio() - 26.5).abs() < 0.1);
    }

    #[test]
    fn mesh_has_64_cpes() {
        assert_eq!(CPES_PER_CG, 64);
    }

    #[test]
    fn rlc_packet_is_256_bits() {
        assert_eq!(RLC_PACKET_BYTES * 8, SIMD_BITS);
    }
}
