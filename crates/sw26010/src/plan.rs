//! Declarative kernel metadata for static (pre-execution) checking.
//!
//! Every swdnn kernel registers a [`KernelPlan`]: the LDM buffers it will
//! allocate, its register-communication pattern, and how many DMA
//! requests it keeps in flight. The plan is a *claim* that can be
//! validated without running anything — most importantly that the working
//! set fits the 64 KB LDM for a given problem shape — so an overflowing
//! shape is **rejected before launch** with a named-buffer diagnostic
//! instead of panicking (or silently corrupting state) mid-kernel. The
//! `swcheck` crate lints the plans of the whole kernel zoo across the
//! benchmark shape sweep, and its sanitizer cross-checks the claims
//! against recorded traces (observed high water ≤ planned bytes).

use crate::arch::{CPES_PER_CG, LDM_BYTES};

/// One named LDM buffer a kernel plans to allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanBuffer {
    pub name: String,
    pub bytes: usize,
}

/// The register-communication schedule class of a kernel. Coarse on
/// purpose: enough for the linter to know which buses must be matched and
/// for diagnostics to describe the kernel, without encoding every send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RlcPattern {
    /// No register communication.
    #[default]
    None,
    /// Each step one CPE broadcasts along its row bus.
    RowBroadcast,
    /// Each step one CPE broadcasts along its column bus.
    ColBroadcast,
    /// Row and column broadcasts in the same kernel (broadcast GEMM).
    RowAndColBroadcast,
    /// Point-to-point sends between mesh neighbours.
    PointToPoint,
}

/// Declarative description of one mesh kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlan {
    pub name: String,
    pub n_cpes: usize,
    pub buffers: Vec<PlanBuffer>,
    pub rlc: RlcPattern,
    /// Maximum DMA requests the kernel keeps un-waited at any time.
    pub max_inflight_dma: usize,
}

/// Why a [`KernelPlan`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanViolation {
    /// The planned working set exceeds LDM capacity. Lists every buffer
    /// so the offender is obvious.
    LdmOverflow {
        plan: String,
        required: usize,
        capacity: usize,
        buffers: Vec<PlanBuffer>,
    },
    /// `n_cpes` outside `1..=64`.
    BadGeometry { plan: String, n_cpes: usize },
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanViolation::LdmOverflow {
                plan,
                required,
                capacity,
                buffers,
            } => {
                write!(
                    f,
                    "kernel plan `{plan}` overflows LDM: {required} B planned \
                     vs {capacity} B capacity ("
                )?;
                for (i, b) in buffers.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{} {} B", b.name, b.bytes)?;
                }
                write!(f, "); choose a smaller block size for this shape")
            }
            PlanViolation::BadGeometry { plan, n_cpes } => write!(
                f,
                "kernel plan `{plan}` requests {n_cpes} CPEs (must be 1..=64)"
            ),
        }
    }
}

impl std::error::Error for PlanViolation {}

impl KernelPlan {
    pub fn new(name: impl Into<String>, n_cpes: usize) -> Self {
        KernelPlan {
            name: name.into(),
            n_cpes,
            buffers: Vec::new(),
            rlc: RlcPattern::None,
            max_inflight_dma: 1,
        }
    }

    /// Declare an LDM buffer (builder style).
    pub fn buffer(mut self, name: impl Into<String>, bytes: usize) -> Self {
        self.buffers.push(PlanBuffer {
            name: name.into(),
            bytes,
        });
        self
    }

    pub fn rlc(mut self, pattern: RlcPattern) -> Self {
        self.rlc = pattern;
        self
    }

    pub fn inflight_dma(mut self, n: usize) -> Self {
        self.max_inflight_dma = n;
        self
    }

    /// Total planned LDM working set in bytes.
    pub fn ldm_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.bytes).sum()
    }

    /// Check the plan against the hardware's structural limits.
    pub fn validate(&self) -> Result<(), PlanViolation> {
        if !(1..=CPES_PER_CG).contains(&self.n_cpes) {
            return Err(PlanViolation::BadGeometry {
                plan: self.name.clone(),
                n_cpes: self.n_cpes,
            });
        }
        let required = self.ldm_bytes();
        if required > LDM_BYTES {
            return Err(PlanViolation::LdmOverflow {
                plan: self.name.clone(),
                required,
                capacity: LDM_BYTES,
                buffers: self.buffers.clone(),
            });
        }
        Ok(())
    }

    /// Panic with the violation message if the plan is invalid. Kernel
    /// entry points call this so bad shapes fail *before* the launch.
    pub fn assert_valid(&self) {
        if let Err(v) = self.validate() {
            panic!("{v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitting_plan_validates() {
        let p = KernelPlan::new("gemm", 64)
            .buffer("a_tile", 16 * 1024)
            .buffer("b_tile", 16 * 1024)
            .buffer("c_tile", 16 * 1024)
            .rlc(RlcPattern::RowAndColBroadcast)
            .inflight_dma(2);
        assert_eq!(p.ldm_bytes(), 48 * 1024);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn overflowing_plan_is_rejected_with_buffer_names() {
        let p = KernelPlan::new("huge", 64)
            .buffer("a", 40 * 1024)
            .buffer("b", 40 * 1024);
        let err = p.validate().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("overflows LDM"), "{msg}");
        assert!(msg.contains("a 40960 B + b 40960 B"), "{msg}");
        assert!(msg.contains("81920 B planned vs 65536 B capacity"), "{msg}");
    }

    #[test]
    fn bad_geometry_is_rejected() {
        assert!(matches!(
            KernelPlan::new("none", 0).validate(),
            Err(PlanViolation::BadGeometry { .. })
        ));
        assert!(matches!(
            KernelPlan::new("big", 65).validate(),
            Err(PlanViolation::BadGeometry { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "overflows LDM")]
    fn assert_valid_panics_on_overflow() {
        KernelPlan::new("huge", 64)
            .buffer("a", 128 * 1024)
            .assert_valid();
    }
}
