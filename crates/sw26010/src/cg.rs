//! Core group: one MPE + one 8x8 CPE cluster + one memory controller.
//!
//! A [`CoreGroup`] is the unit kernels are launched on and the unit the
//! swCaffe multi-threaded solver parallelises over (one pthread per CG,
//! Fig. 5 of the paper). It accumulates simulated time and hardware
//! counters across launches.
//!
//! With [`CheckMode::Record`] enabled the core group additionally keeps a
//! [`KernelTrace`] per launch for the `swcheck` sanitizer; recording is
//! off by default and costs nothing when off.

use crate::arch::MPE_PEAK_FLOPS;
use crate::check::{CheckMode, KernelTrace};
use crate::cpe::Cpe;
use crate::dma;
use crate::mesh::{run_mesh, run_mesh_traced};
use crate::plan::{KernelPlan, PlanViolation};
use crate::stats::{LaunchReport, Stats};
use crate::time::{ExecMode, SimTime};

/// One SW26010 core group.
#[derive(Debug)]
pub struct CoreGroup {
    mode: ExecMode,
    stats: Stats,
    elapsed: SimTime,
    check: CheckMode,
    traces: Vec<KernelTrace>,
}

impl Default for CoreGroup {
    fn default() -> Self {
        Self::new(ExecMode::Functional)
    }
}

impl CoreGroup {
    pub fn new(mode: ExecMode) -> Self {
        CoreGroup {
            mode,
            stats: Stats::default(),
            elapsed: SimTime::ZERO,
            check: CheckMode::Off,
            traces: Vec::new(),
        }
    }

    /// A core group with the kernel sanitizer armed: every launch records
    /// a [`KernelTrace`] retrievable via [`CoreGroup::take_traces`].
    pub fn new_checked(mode: ExecMode) -> Self {
        let mut cg = Self::new(mode);
        cg.check = CheckMode::Record;
        cg
    }

    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Current sanitizer mode.
    pub fn check_mode(&self) -> CheckMode {
        self.check
    }

    /// Switch sanitizer recording on or off for subsequent launches.
    pub fn set_check(&mut self, check: CheckMode) {
        self.check = check;
    }

    /// Drain the kernel traces recorded since the last call.
    pub fn take_traces(&mut self) -> Vec<KernelTrace> {
        std::mem::take(&mut self.traces)
    }

    /// Launch a kernel on `n_cpes` CPEs of this core group's mesh and
    /// accumulate its time and counters.
    pub fn run<F>(&mut self, n_cpes: usize, kernel: F) -> LaunchReport
    where
        F: Fn(&mut Cpe) + Sync,
    {
        self.run_named("unnamed", n_cpes, kernel)
    }

    /// Like [`CoreGroup::run`], with a kernel name carried into sanitizer
    /// traces and diagnostics.
    pub fn run_named<F>(&mut self, name: &str, n_cpes: usize, kernel: F) -> LaunchReport
    where
        F: Fn(&mut Cpe) + Sync,
    {
        let report = match self.check {
            CheckMode::Off => run_mesh(self.mode, n_cpes, kernel),
            CheckMode::Record => {
                let (report, trace) = run_mesh_traced(self.mode, n_cpes, name, kernel);
                self.traces.push(trace);
                report
            }
        };
        self.stats.merge(&report.stats);
        self.elapsed += report.elapsed;
        report
    }

    /// Launch a kernel through its registered [`KernelPlan`]: the plan is
    /// validated first, so a shape whose working set cannot fit LDM is
    /// rejected with a named-buffer diagnostic *before* anything runs.
    pub fn run_planned<F>(&mut self, plan: &KernelPlan, kernel: F) -> LaunchReport
    where
        F: Fn(&mut Cpe) + Sync,
    {
        plan.assert_valid();
        self.run_named(&plan.name, plan.n_cpes, kernel)
    }

    /// Like [`CoreGroup::run_planned`], but an invalid plan is returned
    /// as the structured [`PlanViolation`] instead of panicking — the
    /// entry point for callers (like the autotuner's verification pass)
    /// that probe machine-generated plans.
    pub fn try_run_planned<F>(
        &mut self,
        plan: &KernelPlan,
        kernel: F,
    ) -> Result<LaunchReport, PlanViolation>
    where
        F: Fn(&mut Cpe) + Sync,
    {
        plan.validate()?;
        Ok(self.run_named(&plan.name, plan.n_cpes, kernel))
    }

    /// MPE-mediated memory copy (Principle 2's slow path, 9.9 GB/s).
    pub fn mpe_memcpy(&mut self, bytes: usize) -> SimTime {
        let t = dma::mpe_memcpy_time(bytes);
        self.elapsed += t;
        t
    }

    /// Scalar compute on the MPE (11.6 GFlops peak).
    pub fn mpe_compute(&mut self, flops: u64) -> SimTime {
        let t = SimTime::from_seconds(flops as f64 / MPE_PEAK_FLOPS);
        self.stats.mpe_flops += flops;
        self.elapsed += t;
        t
    }

    /// Charge an externally-modelled duration (e.g. network wait) to this
    /// core group's timeline.
    pub fn charge(&mut self, t: SimTime) {
        self.elapsed += t;
    }

    /// Total simulated time accumulated on this core group.
    pub fn elapsed(&self) -> SimTime {
        self.elapsed
    }

    /// Accumulated hardware counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reset time and counters (e.g. between benchmark repetitions).
    /// Recorded traces are kept; drain them with [`CoreGroup::take_traces`].
    pub fn reset(&mut self) {
        self.stats = Stats::default();
        self.elapsed = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::KernelPlan;

    #[test]
    fn accumulates_across_launches() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        cg.run(64, |cpe| cpe.charge_flops(1000));
        cg.run(64, |cpe| cpe.charge_flops(1000));
        assert_eq!(cg.stats().flops, 2 * 64 * 1000);
        assert_eq!(cg.stats().launches, 2);
        assert!(cg.elapsed().seconds() > 0.0);
        cg.reset();
        assert_eq!(cg.stats().flops, 0);
        assert_eq!(cg.elapsed(), SimTime::ZERO);
    }

    #[test]
    fn mpe_paths_charge_time() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let t1 = cg.mpe_memcpy(9_900_000); // ~1 ms at 9.9 GB/s
        assert!((t1.seconds() - 1.0e-3).abs() < 1e-9);
        let t2 = cg.mpe_compute(11_600_000); // ~1 ms at 11.6 GFlops
        assert!((t2.seconds() - 1.0e-3).abs() < 1e-9);
        assert!((cg.elapsed().seconds() - 2.0e-3).abs() < 1e-8);
    }

    #[test]
    fn checked_runs_record_named_traces() {
        let mut cg = CoreGroup::new_checked(ExecMode::TimingOnly);
        assert!(cg.check_mode().is_on());
        cg.run_named("warmup", 8, |cpe| cpe.charge_flops(10));
        cg.run(8, |cpe| cpe.charge_flops(10));
        let traces = cg.take_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].name, "warmup");
        assert_eq!(traces[1].name, "unnamed");
        assert_eq!(traces[0].per_cpe.len(), 8);
        assert!(cg.take_traces().is_empty(), "traces drain once");
        cg.set_check(CheckMode::Off);
        cg.run(8, |cpe| cpe.charge_flops(10));
        assert!(cg.take_traces().is_empty());
    }

    #[test]
    fn unchecked_runs_record_nothing() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        cg.run(8, |cpe| cpe.charge_flops(10));
        assert!(cg.take_traces().is_empty());
    }

    #[test]
    fn try_run_planned_returns_violation_instead_of_panicking() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let good = KernelPlan::new("ok", 4).buffer("buf", 1024);
        let report = cg
            .try_run_planned(&good, |cpe| cpe.charge_flops(1))
            .unwrap();
        assert_eq!(report.stats.flops, 4);
        let bad = KernelPlan::new("huge", 4).buffer("buf", 1 << 20);
        let before = cg.stats().launches;
        assert!(matches!(
            cg.try_run_planned(&bad, |cpe| cpe.charge_flops(1)),
            Err(PlanViolation::LdmOverflow { .. })
        ));
        assert_eq!(cg.stats().launches, before, "rejected plan must not run");
    }

    #[test]
    fn run_planned_validates_then_runs() {
        let mut cg = CoreGroup::new_checked(ExecMode::TimingOnly);
        let plan = KernelPlan::new("tiny", 4).buffer("buf", 1024);
        cg.run_planned(&plan, |cpe| cpe.charge_flops(1));
        let traces = cg.take_traces();
        assert_eq!(traces[0].name, "tiny");
        assert_eq!(traces[0].n_cpes, 4);
    }

    #[test]
    #[should_panic(expected = "overflows LDM")]
    fn run_planned_rejects_overflowing_shape_before_launch() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let plan = KernelPlan::new("fat", 64).buffer("img", 1 << 20);
        cg.run_planned(&plan, |_| panic!("kernel must not run"));
    }
}
