//! Core group: one MPE + one 8x8 CPE cluster + one memory controller.
//!
//! A [`CoreGroup`] is the unit kernels are launched on and the unit the
//! swCaffe multi-threaded solver parallelises over (one pthread per CG,
//! Fig. 5 of the paper). It accumulates simulated time and hardware
//! counters across launches.

use crate::arch::MPE_PEAK_FLOPS;
use crate::cpe::Cpe;
use crate::dma;
use crate::mesh::run_mesh;
use crate::stats::{LaunchReport, Stats};
use crate::time::{ExecMode, SimTime};

/// One SW26010 core group.
#[derive(Debug)]
pub struct CoreGroup {
    mode: ExecMode,
    stats: Stats,
    elapsed: SimTime,
}

impl Default for CoreGroup {
    fn default() -> Self {
        Self::new(ExecMode::Functional)
    }
}

impl CoreGroup {
    pub fn new(mode: ExecMode) -> Self {
        CoreGroup {
            mode,
            stats: Stats::default(),
            elapsed: SimTime::ZERO,
        }
    }

    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Launch a kernel on `n_cpes` CPEs of this core group's mesh and
    /// accumulate its time and counters.
    pub fn run<F>(&mut self, n_cpes: usize, kernel: F) -> LaunchReport
    where
        F: Fn(&mut Cpe) + Sync,
    {
        let report = run_mesh(self.mode, n_cpes, kernel);
        self.stats.merge(&report.stats);
        self.elapsed += report.elapsed;
        report
    }

    /// MPE-mediated memory copy (Principle 2's slow path, 9.9 GB/s).
    pub fn mpe_memcpy(&mut self, bytes: usize) -> SimTime {
        let t = dma::mpe_memcpy_time(bytes);
        self.elapsed += t;
        t
    }

    /// Scalar compute on the MPE (11.6 GFlops peak).
    pub fn mpe_compute(&mut self, flops: u64) -> SimTime {
        let t = SimTime::from_seconds(flops as f64 / MPE_PEAK_FLOPS);
        self.stats.mpe_flops += flops;
        self.elapsed += t;
        t
    }

    /// Charge an externally-modelled duration (e.g. network wait) to this
    /// core group's timeline.
    pub fn charge(&mut self, t: SimTime) {
        self.elapsed += t;
    }

    /// Total simulated time accumulated on this core group.
    pub fn elapsed(&self) -> SimTime {
        self.elapsed
    }

    /// Accumulated hardware counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reset time and counters (e.g. between benchmark repetitions).
    pub fn reset(&mut self) {
        self.stats = Stats::default();
        self.elapsed = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_launches() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        cg.run(64, |cpe| cpe.charge_flops(1000));
        cg.run(64, |cpe| cpe.charge_flops(1000));
        assert_eq!(cg.stats().flops, 2 * 64 * 1000);
        assert_eq!(cg.stats().launches, 2);
        assert!(cg.elapsed().seconds() > 0.0);
        cg.reset();
        assert_eq!(cg.stats().flops, 0);
        assert_eq!(cg.elapsed(), SimTime::ZERO);
    }

    #[test]
    fn mpe_paths_charge_time() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let t1 = cg.mpe_memcpy(9_900_000); // ~1 ms at 9.9 GB/s
        assert!((t1.seconds() - 1.0e-3).abs() < 1e-9);
        let t2 = cg.mpe_compute(11_600_000); // ~1 ms at 11.6 GFlops
        assert!((t2.seconds() - 1.0e-3).abs() < 1e-9);
        assert!((cg.elapsed().seconds() - 2.0e-3).abs() < 1e-8);
    }
}
