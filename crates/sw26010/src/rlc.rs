//! Register-level communication (RLC) fabric.
//!
//! The 8x8 CPE mesh can exchange 256-bit packets over per-row and
//! per-column buses, following an *anonymous producer-consumer* pattern
//! with bounded FIFOs: sends are asynchronous but stall when the receiving
//! FIFO is full, receives stall when it is empty (paper, Principle 4).
//!
//! We model the fabric with bounded `std::sync::mpsc` channels — one FIFO
//! per (receiver, axis, sender-position) — so the blocking semantics (and
//! the deadlocks a wrong communication schedule would produce on silicon!)
//! are reproduced faithfully. Payloads are `f64` because SW26010's
//! instruction set has no single-precision RLC: single-precision data must
//! be widened before transfer, which the GEMM kernels in `swdnn` do
//! explicitly, just like the paper.
//!
//! Timing: a message of `n` doubles occupies the bus for
//! `ceil(8n / 32)` cycles at both endpoints, and the receive completes no
//! earlier than the send did (`max(local clock, sender clock)` + a small
//! hop latency). Broadcast occupies the sender's bus once and every
//! receiver's port once, reproducing the ~1.75x broadcast/P2P aggregate
//! bandwidth ratio of the published microbenchmarks.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Mutex;

use crate::arch::{MESH_DIM, RLC_FIFO_DEPTH, RLC_PACKET_BYTES};
use crate::time::SimTime;

/// Hop latency of one register-bus transfer (about 10 cycles on silicon).
pub const RLC_HOP_CYCLES: f64 = 10.0;

/// Which bus a transfer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Sender and receiver share a row; the FIFO is indexed by sender column.
    Row,
    /// Sender and receiver share a column; the FIFO is indexed by sender row.
    Col,
}

/// One in-flight register-communication message.
pub struct RlcMsg {
    /// Sender's local clock at the moment the send completed.
    pub sent_at: SimTime,
    /// Payload; `None` in timing-only mode.
    pub data: Option<Box<[f64]>>,
}

/// Cycles a message of `bytes` occupies a register bus endpoint.
#[inline]
pub fn transfer_cycles(bytes: usize) -> f64 {
    bytes.div_ceil(RLC_PACKET_BYTES) as f64
}

/// Per-CPE receive ports, taken from the fabric when a CPE thread starts.
pub struct CpePorts {
    /// Row-bus FIFOs indexed by sender column.
    pub row: Vec<Receiver<RlcMsg>>,
    /// Column-bus FIFOs indexed by sender row.
    pub col: Vec<Receiver<RlcMsg>>,
}

/// The per-launch communication fabric for one 8x8 mesh.
pub struct RlcFabric {
    /// `row_tx[receiver_idx][sender_col]`
    row_tx: Vec<Vec<SyncSender<RlcMsg>>>,
    /// `col_tx[receiver_idx][sender_row]`
    col_tx: Vec<Vec<SyncSender<RlcMsg>>>,
    ports: Vec<Mutex<Option<CpePorts>>>,
}

impl Default for RlcFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl RlcFabric {
    pub fn new() -> Self {
        let n = MESH_DIM * MESH_DIM;
        let mut row_tx = Vec::with_capacity(n);
        let mut col_tx = Vec::with_capacity(n);
        let mut ports = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row_s = Vec::with_capacity(MESH_DIM);
            let mut row_r = Vec::with_capacity(MESH_DIM);
            let mut col_s = Vec::with_capacity(MESH_DIM);
            let mut col_r = Vec::with_capacity(MESH_DIM);
            for _ in 0..MESH_DIM {
                let (ts, tr) = sync_channel(RLC_FIFO_DEPTH);
                row_s.push(ts);
                row_r.push(tr);
                let (ts, tr) = sync_channel(RLC_FIFO_DEPTH);
                col_s.push(ts);
                col_r.push(tr);
            }
            row_tx.push(row_s);
            col_tx.push(col_s);
            ports.push(Mutex::new(Some(CpePorts {
                row: row_r,
                col: col_r,
            })));
        }
        RlcFabric {
            row_tx,
            col_tx,
            ports,
        }
    }

    /// Take the receive ports for CPE `idx`. Each CPE thread calls this once.
    pub fn take_ports(&self, idx: usize) -> CpePorts {
        self.ports[idx]
            .lock()
            .expect("RLC port registry poisoned")
            .take()
            .expect("CPE ports already taken — duplicate CPE index in launch")
    }

    /// Send on the row bus from `(row, src_col)` to `(row, dst_col)`.
    ///
    /// Blocks while the destination FIFO is full, mirroring hardware stall
    /// semantics.
    pub fn send_row(&self, row: usize, src_col: usize, dst_col: usize, msg: RlcMsg) {
        assert!(src_col != dst_col, "RLC send to self");
        let dst = row * MESH_DIM + dst_col;
        self.row_tx[dst][src_col]
            .send(msg)
            .expect("RLC receiver dropped mid-kernel");
    }

    /// Send on the column bus from `(src_row, col)` to `(dst_row, col)`.
    pub fn send_col(&self, col: usize, src_row: usize, dst_row: usize, msg: RlcMsg) {
        assert!(src_row != dst_row, "RLC send to self");
        let dst = dst_row * MESH_DIM + col;
        self.col_tx[dst][src_row]
            .send(msg)
            .expect("RLC receiver dropped mid-kernel");
    }

    /// Non-blocking variant of [`RlcFabric::send_row`], used by checked
    /// launches so a send into a full FIFO can participate in stall
    /// detection instead of blocking forever.
    pub fn try_send_row(
        &self,
        row: usize,
        src_col: usize,
        dst_col: usize,
        msg: RlcMsg,
    ) -> SendAttempt {
        assert!(src_col != dst_col, "RLC send to self");
        let dst = row * MESH_DIM + dst_col;
        into_attempt(self.row_tx[dst][src_col].try_send(msg))
    }

    /// Non-blocking variant of [`RlcFabric::send_col`].
    pub fn try_send_col(
        &self,
        col: usize,
        src_row: usize,
        dst_row: usize,
        msg: RlcMsg,
    ) -> SendAttempt {
        assert!(src_row != dst_row, "RLC send to self");
        let dst = dst_row * MESH_DIM + col;
        into_attempt(self.col_tx[dst][src_row].try_send(msg))
    }
}

/// Outcome of a non-blocking RLC send.
pub enum SendAttempt {
    /// The message entered the destination FIFO.
    Sent,
    /// The FIFO is full; the message is handed back so the caller can
    /// retry after a bounded wait.
    Full(RlcMsg),
    /// The receiver thread is gone (it panicked or stalled out).
    Disconnected,
}

fn into_attempt(r: Result<(), TrySendError<RlcMsg>>) -> SendAttempt {
    match r {
        Ok(()) => SendAttempt::Sent,
        Err(TrySendError::Full(m)) => SendAttempt::Full(m),
        Err(TrySendError::Disconnected(_)) => SendAttempt::Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cycles_rounds_up_to_packets() {
        assert_eq!(transfer_cycles(0), 0.0);
        assert_eq!(transfer_cycles(1), 1.0);
        assert_eq!(transfer_cycles(32), 1.0);
        assert_eq!(transfer_cycles(33), 2.0);
        assert_eq!(transfer_cycles(256), 8.0);
    }

    #[test]
    fn row_message_routing() {
        let fab = RlcFabric::new();
        let mut ports_2_3 = fab.take_ports(2 * MESH_DIM + 3);
        fab.send_row(
            2,
            5,
            3,
            RlcMsg {
                sent_at: SimTime::from_seconds(1.0),
                data: Some(vec![7.0].into()),
            },
        );
        let msg = ports_2_3.row[5].recv().unwrap();
        assert_eq!(msg.sent_at.seconds(), 1.0);
        assert_eq!(msg.data.unwrap()[0], 7.0);
        // Nothing arrived from other senders.
        ports_2_3.row.remove(5);
        for rx in &ports_2_3.row {
            assert!(rx.try_recv().is_err());
        }
    }

    #[test]
    fn col_message_routing() {
        let fab = RlcFabric::new();
        let ports = fab.take_ports(6 * MESH_DIM + 1);
        fab.send_col(
            1,
            0,
            6,
            RlcMsg {
                sent_at: SimTime::ZERO,
                data: Some(vec![1.0, 2.0].into()),
            },
        );
        let msg = ports.col[0].recv().unwrap();
        assert_eq!(msg.data.unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_take_panics() {
        let fab = RlcFabric::new();
        let _a = fab.take_ports(0);
        let _b = fab.take_ports(0);
    }

    #[test]
    fn fifo_depth_is_bounded() {
        let fab = RlcFabric::new();
        let _ports = fab.take_ports(3); // keep receiver alive, never read
        for _ in 0..RLC_FIFO_DEPTH {
            // Fill the FIFO without blocking.
            let ok = fab.row_tx[3][0]
                .try_send(RlcMsg {
                    sent_at: SimTime::ZERO,
                    data: None,
                })
                .is_ok();
            assert!(ok);
        }
        // One more must report full.
        let full = fab.row_tx[3][0]
            .try_send(RlcMsg {
                sent_at: SimTime::ZERO,
                data: None,
            })
            .is_err();
        assert!(full);
    }
}
