//! Randomised-but-deterministic tests of the processor simulator:
//! cost-model sanity (monotonicity, bounds) and functional correctness of
//! mesh primitives under many shapes.
//!
//! Cases are drawn from a fixed-seed SplitMix64 stream instead of a
//! property-testing framework so the suite runs with zero external
//! dependencies and every failure reproduces exactly.

use sw26010::{dma, run_mesh, ExecMode, MemView, MemViewMut};

/// Deterministic case generator (SplitMix64).
struct CaseRng {
    state: u64,
}

impl CaseRng {
    fn new(seed: u64) -> Self {
        CaseRng { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

#[test]
fn continuous_bandwidth_bounded_and_monotone() {
    let mut rng = CaseRng::new(0xC0FFEE);
    for _ in 0..24 {
        let size = rng.range(16, 64_000);
        let ncpes = rng.range(1, 65);
        let bw = dma::continuous_aggregate_bandwidth(size, ncpes);
        assert!(bw > 0.0);
        assert!(bw <= sw26010::arch::DMA_PEAK_BANDWIDTH * 1.0001);
        // Larger transfers never lose bandwidth.
        let bw2 = dma::continuous_aggregate_bandwidth(size * 2, ncpes);
        assert!(bw2 >= bw * 0.999, "{bw} -> {bw2}");
        // More CPEs never lose aggregate bandwidth.
        if ncpes < 64 {
            let bw3 = dma::continuous_aggregate_bandwidth(size, ncpes + 1);
            assert!(bw3 >= bw * 0.999);
        }
    }
}

#[test]
fn strided_never_beats_continuous() {
    let mut rng = CaseRng::new(0xBEEF);
    let mut cases = 0;
    while cases < 24 {
        let block = rng.range(4, 4096);
        let total = rng.range(1024, 32_768);
        let ncpes = rng.range(1, 65);
        if block > total {
            continue;
        }
        cases += 1;
        let strided = dma::strided_aggregate_bandwidth(block, total, ncpes);
        let continuous = dma::continuous_aggregate_bandwidth(total, ncpes);
        assert!(
            strided <= continuous * 1.0001,
            "strided {strided} > continuous {continuous}"
        );
    }
}

#[test]
fn dma_time_additive_in_requests() {
    let mut rng = CaseRng::new(0xD17A);
    for _ in 0..24 {
        let bytes = rng.range(64, 32_768);
        let ncpes = rng.range(1, 65);
        // Two requests cost strictly more than one request of double size
        // (the second start-up latency).
        let one = dma::continuous_time(2 * bytes, ncpes).seconds();
        let two = 2.0 * dma::continuous_time(bytes, ncpes).seconds();
        assert!(two > one);
    }
}

#[test]
fn mesh_scatter_gather_roundtrip() {
    let mut rng = CaseRng::new(0x5CA7);
    for _ in 0..12 {
        let ncpes = rng.range(1, 65);
        let per_cpe = rng.range(1, 128);
        // Every CPE stages its slice, negates it, writes it back; the
        // result must be the exact negation regardless of mesh size.
        let input: Vec<f32> = (0..ncpes * per_cpe).map(|i| i as f32 - 17.0).collect();
        let mut output = vec![0.0f32; input.len()];
        let src = MemView::new(&input);
        let dst = MemViewMut::new(&mut output);
        run_mesh(ExecMode::Functional, ncpes, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(per_cpe);
            cpe.dma_get(src, cpe.idx() * per_cpe, &mut buf);
            cpe.compute(per_cpe as u64, || {
                for v in buf.iter_mut() {
                    *v = -*v;
                }
            });
            cpe.dma_put(dst, cpe.idx() * per_cpe, &buf);
        });
        for (o, i) in output.iter().zip(&input) {
            assert_eq!(*o, -i);
        }
    }
}

#[test]
fn mesh_row_rotation_is_a_permutation() {
    for shift in 1usize..8 {
        // Rotate values around each row by `shift` hops over the register
        // buses; the multiset of values per row must be preserved.
        let mut out = vec![0.0f32; 64];
        let view = MemViewMut::new(&mut out);
        run_mesh(ExecMode::Functional, 64, |cpe| {
            let mut val = [cpe.idx() as f64];
            let mut recv = [0.0f64];
            for _ in 0..shift {
                let dst = (cpe.col() + 1) % 8;
                let src = (cpe.col() + 7) % 8;
                cpe.rlc_row_send(dst, &val);
                cpe.rlc_row_recv(src, &mut recv);
                val[0] = recv[0];
            }
            cpe.dma_put(view, cpe.idx(), &[val[0] as f32]);
        });
        for row in 0..8 {
            let mut vals: Vec<i32> = out[row * 8..][..8].iter().map(|v| *v as i32).collect();
            vals.sort_unstable();
            let want: Vec<i32> = (0..8).map(|c| (row * 8 + c) as i32).collect();
            assert_eq!(vals, want, "row {row} lost values");
        }
    }
}

#[test]
fn timing_equals_between_modes_for_symmetric_kernels() {
    let mut rng = CaseRng::new(0x71FE);
    for _ in 0..12 {
        let ncpes = rng.range(1, 65);
        let elems = rng.range(1, 512);
        let flops = rng.range(1, 10_000) as u64;
        let data = vec![1.0f32; ncpes * elems];
        let src = MemView::new(&data);
        let run = |mode| {
            run_mesh(mode, ncpes, |cpe| {
                let mut buf = cpe.ldm.alloc_f32(elems);
                cpe.dma_get(src, cpe.idx() * elems, &mut buf);
                cpe.charge_flops(flops);
                cpe.sync();
            })
        };
        let f = run(ExecMode::Functional);
        let t = run(ExecMode::TimingOnly);
        assert!((f.elapsed.seconds() - t.elapsed.seconds()).abs() < 1e-15);
        assert_eq!(f.stats.flops, t.stats.flops);
        assert_eq!(f.stats.dma_get_bytes, t.stats.dma_get_bytes);
    }
}
