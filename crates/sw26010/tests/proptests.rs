//! Property-based tests of the processor simulator: cost-model sanity
//! (monotonicity, bounds) and functional correctness of mesh primitives
//! under arbitrary shapes.

use proptest::prelude::*;
use sw26010::{dma, run_mesh, ExecMode, MemView, MemViewMut};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn continuous_bandwidth_bounded_and_monotone(
        size in 16usize..64_000,
        ncpes in 1usize..=64,
    ) {
        let bw = dma::continuous_aggregate_bandwidth(size, ncpes);
        prop_assert!(bw > 0.0);
        prop_assert!(bw <= sw26010::arch::DMA_PEAK_BANDWIDTH * 1.0001);
        // Larger transfers never lose bandwidth.
        let bw2 = dma::continuous_aggregate_bandwidth(size * 2, ncpes);
        prop_assert!(bw2 >= bw * 0.999, "{bw} -> {bw2}");
        // More CPEs never lose aggregate bandwidth.
        if ncpes < 64 {
            let bw3 = dma::continuous_aggregate_bandwidth(size, ncpes + 1);
            prop_assert!(bw3 >= bw * 0.999);
        }
    }

    #[test]
    fn strided_never_beats_continuous(
        block in 4usize..4096,
        total in 1024usize..32_768,
        ncpes in 1usize..=64,
    ) {
        prop_assume!(block <= total);
        let strided = dma::strided_aggregate_bandwidth(block, total, ncpes);
        let continuous = dma::continuous_aggregate_bandwidth(total, ncpes);
        prop_assert!(strided <= continuous * 1.0001, "strided {strided} > continuous {continuous}");
    }

    #[test]
    fn dma_time_additive_in_requests(bytes in 64usize..32_768, ncpes in 1usize..=64) {
        // Two requests cost strictly more than one request of double size
        // (the second start-up latency).
        let one = dma::continuous_time(2 * bytes, ncpes).seconds();
        let two = 2.0 * dma::continuous_time(bytes, ncpes).seconds();
        prop_assert!(two > one);
    }

    #[test]
    fn mesh_scatter_gather_roundtrip(
        ncpes in 1usize..=64,
        per_cpe in 1usize..128,
    ) {
        // Every CPE stages its slice, negates it, writes it back; the
        // result must be the exact negation regardless of mesh size.
        let input: Vec<f32> = (0..ncpes * per_cpe).map(|i| i as f32 - 17.0).collect();
        let mut output = vec![0.0f32; input.len()];
        let src = MemView::new(&input);
        let dst = MemViewMut::new(&mut output);
        run_mesh(ExecMode::Functional, ncpes, |cpe| {
            let mut buf = cpe.ldm.alloc_f32(per_cpe);
            cpe.dma_get(src, cpe.idx() * per_cpe, &mut buf);
            cpe.compute(per_cpe as u64, || {
                for v in buf.iter_mut() {
                    *v = -*v;
                }
            });
            cpe.dma_put(dst, cpe.idx() * per_cpe, &buf);
        });
        for (o, i) in output.iter().zip(&input) {
            prop_assert_eq!(*o, -i);
        }
    }

    #[test]
    fn mesh_row_rotation_is_a_permutation(shift in 1usize..8) {
        // Rotate values around each row by `shift` hops over the register
        // buses; the multiset of values per row must be preserved.
        let mut out = vec![0.0f32; 64];
        let view = MemViewMut::new(&mut out);
        run_mesh(ExecMode::Functional, 64, |cpe| {
            let mut val = [cpe.idx() as f64];
            let mut recv = [0.0f64];
            for _ in 0..shift {
                let dst = (cpe.col() + 1) % 8;
                let src = (cpe.col() + 7) % 8;
                cpe.rlc_row_send(dst, &val);
                cpe.rlc_row_recv(src, &mut recv);
                val[0] = recv[0];
            }
            cpe.dma_put(view, cpe.idx(), &[val[0] as f32]);
        });
        for row in 0..8 {
            let mut vals: Vec<i32> = out[row * 8..][..8].iter().map(|v| *v as i32).collect();
            vals.sort_unstable();
            let want: Vec<i32> = (0..8).map(|c| (row * 8 + c) as i32).collect();
            prop_assert_eq!(vals, want, "row {} lost values", row);
        }
    }

    #[test]
    fn timing_equals_between_modes_for_symmetric_kernels(
        ncpes in 1usize..=64,
        elems in 1usize..512,
        flops in 1u64..10_000,
    ) {
        let data = vec![1.0f32; ncpes * elems];
        let src = MemView::new(&data);
        let run = |mode| {
            run_mesh(mode, ncpes, |cpe| {
                let mut buf = cpe.ldm.alloc_f32(elems);
                cpe.dma_get(src, cpe.idx() * elems, &mut buf);
                cpe.charge_flops(flops);
                cpe.sync();
            })
        };
        let f = run(ExecMode::Functional);
        let t = run(ExecMode::TimingOnly);
        prop_assert!((f.elapsed.seconds() - t.elapsed.seconds()).abs() < 1e-15);
        prop_assert_eq!(f.stats.flops, t.stats.flops);
        prop_assert_eq!(f.stats.dma_get_bytes, t.stats.dma_get_bytes);
    }
}
