//! Mini-batch prefetching (Sec. V-B): each worker runs an I/O thread that
//! reads the next mini-batch while the current iteration computes, hiding
//! disk latency behind the forward/backward passes.
//!
//! The thread is real (bounded `std::sync::mpsc` channel, double
//! buffering); the *disk time* it would take comes from
//! [`crate::stripefs::IoModel`], so the trainer can charge
//! `max(0, io_time - compute_time)` per iteration.

use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

use sw26010::SimTime;

use crate::dataset::SyntheticImageNet;
use crate::stripefs::IoModel;

/// One prefetched mini-batch.
#[derive(Debug, Clone)]
pub struct Batch {
    pub data: Vec<f32>,
    pub labels: Vec<f32>,
    /// Simulated disk time this read would take.
    pub io_time: SimTime,
    /// Sampling seed used (iteration number).
    pub seed: u64,
}

/// A failed background read, surfaced to the training loop instead of
/// killing the I/O thread silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// Sampling seed (iteration number) of the read that failed.
    pub seed: u64,
    pub msg: String,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reading batch {}: {}", self.seed, self.msg)
    }
}

impl std::error::Error for ReadError {}

impl From<ReadError> for String {
    fn from(e: ReadError) -> String {
        e.to_string()
    }
}

/// A mini-batch source the prefetch thread pulls from.
/// [`SyntheticImageNet`] never fails; real dataset readers surface
/// corrupt records or lost stripes as errors, which the prefetcher
/// forwards to the consumer and then stops.
pub trait BatchReader: Send + 'static {
    #[allow(clippy::too_many_arguments)]
    fn read(
        &mut self,
        seed: u64,
        batch: usize,
        c: usize,
        h: usize,
        w: usize,
        data: &mut [f32],
        labels: &mut [f32],
    ) -> Result<(), String>;
}

impl BatchReader for SyntheticImageNet {
    fn read(
        &mut self,
        seed: u64,
        batch: usize,
        c: usize,
        h: usize,
        w: usize,
        data: &mut [f32],
        labels: &mut [f32],
    ) -> Result<(), String> {
        self.fill_batch(seed, batch, c, h, w, data, labels);
        Ok(())
    }
}

/// Double-buffered background reader.
pub struct Prefetcher {
    rx: Receiver<Result<Batch, ReadError>>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn the I/O thread over the synthetic dataset. `nprocs` is the
    /// number of workers reading concurrently (affects the
    /// shared-filesystem bandwidth).
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        dataset: SyntheticImageNet,
        io: IoModel,
        nprocs: usize,
        batch: usize,
        c: usize,
        h: usize,
        w: usize,
        start_seed: u64,
    ) -> Self {
        let bytes = dataset.batch_bytes(batch);
        Self::spawn_reader(dataset, io, bytes, nprocs, batch, c, h, w, start_seed)
    }

    /// Spawn the I/O thread over an arbitrary [`BatchReader`]. A read
    /// error is delivered in stream order — batches before it are still
    /// consumable — and ends the stream.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_reader<B: BatchReader>(
        mut reader: B,
        io: IoModel,
        batch_bytes: usize,
        nprocs: usize,
        batch: usize,
        c: usize,
        h: usize,
        w: usize,
        start_seed: u64,
    ) -> Self {
        // Double buffering: 1 in flight + 1 building.
        let (tx, rx) = sync_channel::<Result<Batch, ReadError>>(1);
        let handle = std::thread::spawn(move || {
            let mut seed = start_seed;
            loop {
                let mut data = vec![0.0f32; batch * c * h * w];
                let mut labels = vec![0.0f32; batch];
                let sent = match reader.read(seed, batch, c, h, w, &mut data, &mut labels) {
                    Ok(()) => {
                        let io_time = io.batch_read_time(nprocs, batch_bytes);
                        tx.send(Ok(Batch {
                            data,
                            labels,
                            io_time,
                            seed,
                        }))
                    }
                    Err(msg) => {
                        let _ = tx.send(Err(ReadError { seed, msg }));
                        return; // the stream ends at the first failure
                    }
                };
                if sent.is_err() {
                    return; // consumer dropped
                }
                seed += 1;
            }
        });
        Prefetcher {
            rx,
            handle: Some(handle),
        }
    }

    /// Take the next mini-batch (blocks if the I/O thread is behind).
    /// Returns the reader's error, in stream order, if its read failed.
    pub fn next(&self) -> Result<Batch, ReadError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(ReadError {
                seed: 0,
                msg: "prefetch thread has stopped (after a prior error or panic)".into(),
            })
        })
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Close the channel, then join the thread.
        let (_tx, rx) = sync_channel::<Result<Batch, ReadError>>(0);
        let old = std::mem::replace(&mut self.rx, rx);
        drop(old);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Stall charged to an iteration when the disk cannot keep up with
/// compute: prefetching hides `compute`, not more.
pub fn io_stall(io_time: SimTime, compute_time: SimTime) -> SimTime {
    io_time - compute_time // SimTime subtraction saturates at zero
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripefs::Layout;

    #[test]
    fn prefetcher_delivers_deterministic_sequence() {
        let ds = SyntheticImageNet::new(1000);
        let io = IoModel::taihulight(Layout::paper_striped());
        let p = Prefetcher::spawn(ds, io, 4, 2, 3, 4, 4, 100);
        let b1 = p.next().unwrap();
        let b2 = p.next().unwrap();
        assert_eq!(b1.seed, 100);
        assert_eq!(b2.seed, 101);
        assert_ne!(b1.data, b2.data);
        // Same as a direct fill with the same seed.
        let mut want = vec![0.0f32; 2 * 3 * 4 * 4];
        let mut wl = vec![0.0f32; 2];
        ds.fill_batch(100, 2, 3, 4, 4, &mut want, &mut wl);
        assert_eq!(b1.data, want);
        assert_eq!(b1.labels, wl);
        assert!(b1.io_time.seconds() > 0.0);
    }

    #[test]
    fn stall_is_zero_when_compute_dominates() {
        assert_eq!(
            io_stall(SimTime::from_seconds(0.1), SimTime::from_seconds(0.5)).seconds(),
            0.0
        );
        assert!(
            (io_stall(SimTime::from_seconds(0.5), SimTime::from_seconds(0.1)).seconds() - 0.4)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn prefetcher_shuts_down_cleanly() {
        let ds = SyntheticImageNet::new(100);
        let io = IoModel::taihulight(Layout::paper_striped());
        let p = Prefetcher::spawn(ds, io, 1, 1, 1, 2, 2, 0);
        let _ = p.next().unwrap();
        drop(p); // must not hang
    }

    /// A reader whose backing storage loses a stripe partway through the
    /// epoch — the error must reach the consumer in stream order, after
    /// every batch read before it.
    struct FlakyDisk {
        fail_at: u64,
    }

    impl BatchReader for FlakyDisk {
        fn read(
            &mut self,
            seed: u64,
            _batch: usize,
            _c: usize,
            _h: usize,
            _w: usize,
            data: &mut [f32],
            _labels: &mut [f32],
        ) -> Result<(), String> {
            if seed == self.fail_at {
                return Err("lost stripe 3 of split 0".into());
            }
            data.fill(seed as f32);
            Ok(())
        }
    }

    #[test]
    fn reader_failure_is_surfaced_in_stream_order() {
        let io = IoModel::taihulight(Layout::paper_striped());
        let p = Prefetcher::spawn_reader(FlakyDisk { fail_at: 2 }, io, 1024, 1, 1, 1, 2, 2, 0);
        assert_eq!(p.next().unwrap().seed, 0);
        assert_eq!(p.next().unwrap().seed, 1);
        let err = p.next().unwrap_err();
        assert_eq!(err.seed, 2);
        assert!(err.msg.contains("lost stripe"), "{err}");
        assert!(String::from(err).contains("batch 2"));
        // The stream ended at the failure; later calls report it instead
        // of panicking, and dropping the prefetcher must not hang.
        assert!(p.next().is_err());
    }
}
