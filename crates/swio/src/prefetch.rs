//! Mini-batch prefetching (Sec. V-B): each worker runs an I/O thread that
//! reads the next mini-batch while the current iteration computes, hiding
//! disk latency behind the forward/backward passes.
//!
//! The thread is real (bounded `std::sync::mpsc` channel, double
//! buffering); the *disk time* it would take comes from
//! [`crate::stripefs::IoModel`], so the trainer can charge
//! `max(0, io_time - compute_time)` per iteration.

use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

use sw26010::SimTime;

use crate::dataset::SyntheticImageNet;
use crate::stripefs::IoModel;

/// One prefetched mini-batch.
pub struct Batch {
    pub data: Vec<f32>,
    pub labels: Vec<f32>,
    /// Simulated disk time this read would take.
    pub io_time: SimTime,
    /// Sampling seed used (iteration number).
    pub seed: u64,
}

/// Double-buffered background reader.
pub struct Prefetcher {
    rx: Receiver<Batch>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn the I/O thread. `nprocs` is the number of workers reading
    /// concurrently (affects the shared-filesystem bandwidth).
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        dataset: SyntheticImageNet,
        io: IoModel,
        nprocs: usize,
        batch: usize,
        c: usize,
        h: usize,
        w: usize,
        start_seed: u64,
    ) -> Self {
        let (tx, rx) = sync_channel::<Batch>(1); // double buffering: 1 in flight + 1 building
        let handle = std::thread::spawn(move || {
            let bytes = dataset.batch_bytes(batch);
            let mut seed = start_seed;
            loop {
                let mut data = vec![0.0f32; batch * c * h * w];
                let mut labels = vec![0.0f32; batch];
                dataset.fill_batch(seed, batch, c, h, w, &mut data, &mut labels);
                let io_time = io.batch_read_time(nprocs, bytes);
                if tx
                    .send(Batch {
                        data,
                        labels,
                        io_time,
                        seed,
                    })
                    .is_err()
                {
                    return; // consumer dropped
                }
                seed += 1;
            }
        });
        Prefetcher {
            rx,
            handle: Some(handle),
        }
    }

    /// Take the next mini-batch (blocks if the I/O thread is behind).
    pub fn next(&self) -> Batch {
        self.rx.recv().expect("prefetch thread died")
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Close the channel, then join the thread.
        let (_tx, rx) = sync_channel::<Batch>(0);
        let old = std::mem::replace(&mut self.rx, rx);
        drop(old);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Stall charged to an iteration when the disk cannot keep up with
/// compute: prefetching hides `compute`, not more.
pub fn io_stall(io_time: SimTime, compute_time: SimTime) -> SimTime {
    io_time - compute_time // SimTime subtraction saturates at zero
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripefs::Layout;

    #[test]
    fn prefetcher_delivers_deterministic_sequence() {
        let ds = SyntheticImageNet::new(1000);
        let io = IoModel::taihulight(Layout::paper_striped());
        let p = Prefetcher::spawn(ds, io, 4, 2, 3, 4, 4, 100);
        let b1 = p.next();
        let b2 = p.next();
        assert_eq!(b1.seed, 100);
        assert_eq!(b2.seed, 101);
        assert_ne!(b1.data, b2.data);
        // Same as a direct fill with the same seed.
        let mut want = vec![0.0f32; 2 * 3 * 4 * 4];
        let mut wl = vec![0.0f32; 2];
        ds.fill_batch(100, 2, 3, 4, 4, &mut want, &mut wl);
        assert_eq!(b1.data, want);
        assert_eq!(b1.labels, wl);
        assert!(b1.io_time.seconds() > 0.0);
    }

    #[test]
    fn stall_is_zero_when_compute_dominates() {
        assert_eq!(
            io_stall(SimTime::from_seconds(0.1), SimTime::from_seconds(0.5)).seconds(),
            0.0
        );
        assert!(
            (io_stall(SimTime::from_seconds(0.5), SimTime::from_seconds(0.1)).seconds() - 0.4)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn prefetcher_shuts_down_cleanly() {
        let ds = SyntheticImageNet::new(100);
        let io = IoModel::taihulight(Layout::paper_striped());
        let p = Prefetcher::spawn(ds, io, 1, 1, 1, 2, 2, 0);
        let _ = p.next();
        drop(p); // must not hang
    }
}
