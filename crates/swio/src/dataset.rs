//! Synthetic ImageNet (substitution for the real dataset, which this
//! environment does not have).
//!
//! Images are deterministic pseudo-random tensors derived from their
//! index, with a class-dependent bias so that training signal exists;
//! labels cover the 1000 ImageNet classes. Record sizes mirror the
//! paper's arithmetic: a 256-image mini-batch is ~192 MB, i.e. ~0.75 MB
//! per decoded image.

/// Bytes of one decoded training record (0.75 MB, per Sec. V-B's
/// "mini-batch of 256 is around 192 MB").
pub const RECORD_BYTES: usize = 768 * 1024;

/// ImageNet class count.
pub const CLASSES: usize = 1000;

/// A deterministic synthetic ImageNet-like dataset.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticImageNet {
    /// Number of training records (ImageNet-1k: ~1.28 M).
    pub images: usize,
}

impl SyntheticImageNet {
    pub fn new(images: usize) -> Self {
        SyntheticImageNet { images }
    }

    /// ImageNet-1k sized instance.
    pub fn imagenet_1k() -> Self {
        SyntheticImageNet { images: 1_281_167 }
    }

    /// Total dataset size on disk, in bytes.
    pub fn total_bytes(&self) -> usize {
        self.images * RECORD_BYTES
    }

    /// Label of a record.
    pub fn label(&self, idx: usize) -> usize {
        // Deterministic but scrambled so adjacent records differ in class.
        (splitmix(idx as u64) % CLASSES as u64) as usize
    }

    /// Fill `data` (one image of `c*h*w` floats) for a record, with a
    /// class-correlated stripe so learning is possible.
    pub fn fill_image(&self, idx: usize, c: usize, h: usize, w: usize, data: &mut [f32]) {
        assert_eq!(data.len(), c * h * w);
        let label = self.label(idx);
        let len = data.len();
        let mut s = splitmix(idx as u64 ^ 0xDEADBEEF);
        for (i, v) in data.iter_mut().enumerate() {
            s = splitmix(s);
            let noise = (s % 2048) as f32 / 2048.0 - 0.5;
            let stripe = (i * CLASSES / len) == label;
            *v = noise * 0.3 + if stripe { 1.0 } else { 0.0 };
        }
    }

    /// Sample a mini-batch (uniform with replacement, seeded) into flat
    /// NCHW data + label buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_batch(
        &self,
        seed: u64,
        batch: usize,
        c: usize,
        h: usize,
        w: usize,
        data: &mut [f32],
        labels: &mut [f32],
    ) {
        assert_eq!(data.len(), batch * c * h * w);
        assert_eq!(labels.len(), batch);
        let per = c * h * w;
        let mut s = splitmix(seed ^ 0x5EED);
        for b in 0..batch {
            s = splitmix(s);
            let idx = (s % self.images as u64) as usize;
            self.fill_image(idx, c, h, w, &mut data[b * per..][..per]);
            labels[b] = self.label(idx) as f32;
        }
    }

    /// Bytes a node reads per iteration for a sub-mini-batch.
    pub fn batch_bytes(&self, sub_batch: usize) -> usize {
        sub_batch * RECORD_BYTES
    }
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod sampler_tests {
    use super::*;

    #[test]
    fn epoch_sampler_visits_each_record_once() {
        let ds = SyntheticImageNet::new(64);
        let mut seen = std::collections::HashSet::new();
        // 4 workers x 16 records each must cover all 64 exactly once.
        for rank in 0..4 {
            let mut s = EpochSampler::new(&ds, 4, rank);
            for _ in 0..16 {
                assert!(seen.insert(s.next_index()), "duplicate within an epoch");
            }
            assert_eq!(s.epoch(), 0);
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn epoch_sampler_seed_reproduces_and_varies() {
        let ds = SyntheticImageNet::new(64);
        let order = |seed: u64| {
            let mut s = EpochSampler::with_seed(&ds, 1, 0, seed);
            (0..64).map(|_| s.next_index()).collect::<Vec<_>>()
        };
        assert_eq!(order(7), order(7), "same seed must reproduce");
        assert_ne!(order(7), order(8), "different seeds must reshuffle");
    }

    #[test]
    fn epoch_sampler_reshuffles_between_epochs() {
        let ds = SyntheticImageNet::new(32);
        let mut s = EpochSampler::new(&ds, 1, 0);
        let first: Vec<usize> = (0..32).map(|_| s.next_index()).collect();
        let second: Vec<usize> = (0..32).map(|_| s.next_index()).collect();
        assert_eq!(s.epoch(), 1);
        assert_ne!(first, second, "epochs must reshuffle");
        let mut a = first.clone();
        let mut b = second.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "both epochs cover the same records");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_of_256_is_about_192mb() {
        let ds = SyntheticImageNet::imagenet_1k();
        let mb = ds.batch_bytes(256) as f64 / (1 << 20) as f64;
        assert_eq!(mb, 192.0);
    }

    #[test]
    fn images_are_deterministic_and_distinct() {
        let ds = SyntheticImageNet::new(1000);
        let mut a = vec![0.0f32; 3 * 8 * 8];
        let mut b = vec![0.0f32; 3 * 8 * 8];
        ds.fill_image(7, 3, 8, 8, &mut a);
        ds.fill_image(7, 3, 8, 8, &mut b);
        assert_eq!(a, b);
        ds.fill_image(8, 3, 8, 8, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn labels_cover_many_classes() {
        let ds = SyntheticImageNet::new(100_000);
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000 {
            let l = ds.label(i);
            assert!(l < CLASSES);
            seen.insert(l);
        }
        assert!(
            seen.len() > 900,
            "only {} classes in 5000 samples",
            seen.len()
        );
    }

    #[test]
    fn batches_are_seed_deterministic() {
        let ds = SyntheticImageNet::new(1000);
        let mut d1 = vec![0.0f32; 4 * 3 * 4 * 4];
        let mut l1 = vec![0.0f32; 4];
        let mut d2 = d1.clone();
        let mut l2 = l1.clone();
        ds.fill_batch(42, 4, 3, 4, 4, &mut d1, &mut l1);
        ds.fill_batch(42, 4, 3, 4, 4, &mut d2, &mut l2);
        assert_eq!(d1, d2);
        assert_eq!(l1, l2);
        ds.fill_batch(43, 4, 3, 4, 4, &mut d2, &mut l2);
        assert_ne!(d1, d2);
    }
}

/// Epoch-based sampler: a seeded permutation of the dataset, partitioned
/// across distributed workers (each record visited exactly once per epoch,
/// each worker sees a disjoint shard — the sampling discipline real
/// ImageNet training uses, vs. the paper's simpler random sampling).
#[derive(Debug)]
pub struct EpochSampler {
    images: usize,
    workers: usize,
    rank: usize,
    epoch: u64,
    seed: u64,
    perm: Vec<u32>,
    cursor: usize,
}

impl EpochSampler {
    pub fn new(dataset: &SyntheticImageNet, workers: usize, rank: usize) -> Self {
        Self::with_seed(dataset, workers, rank, 0)
    }

    /// Like [`EpochSampler::new`] with an explicit shuffle seed: all
    /// workers of one run must share it (they derive the same epoch
    /// permutation from it), and varying it re-randomises the epoch order
    /// without touching the dataset.
    pub fn with_seed(dataset: &SyntheticImageNet, workers: usize, rank: usize, seed: u64) -> Self {
        assert!(rank < workers);
        let mut s = EpochSampler {
            images: dataset.images,
            workers,
            rank,
            epoch: 0,
            seed,
            perm: Vec::new(),
            cursor: 0,
        };
        s.reshuffle();
        s
    }

    fn reshuffle(&mut self) {
        // Seeded Fisher-Yates so every worker derives the same permutation.
        self.perm = (0..self.images as u32).collect();
        let mut state = splitmix(self.epoch ^ splitmix(self.seed) ^ 0x0E90_C45E_ED00);
        for i in (1..self.perm.len()).rev() {
            state = splitmix(state);
            let j = (state % (i as u64 + 1)) as usize;
            self.perm.swap(i, j);
        }
        self.cursor = 0;
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Next record index for this worker; advances the epoch when the
    /// shard is exhausted.
    pub fn next_index(&mut self) -> usize {
        let shard = self.images / self.workers;
        if self.cursor >= shard {
            self.epoch += 1;
            self.reshuffle();
        }
        let idx = self.perm[self.rank * shard + self.cursor] as usize;
        self.cursor += 1;
        idx
    }
}
