//! Shared-filesystem model (Sec. V-B).
//!
//! TaihuLight's filesystem defaults to *single-split* placement: a file
//! lives entirely on one disk array, so concurrent readers of the training
//! set pile onto that array and aggregate bandwidth stops scaling. The
//! paper's fix is striping: 32 stripes of 256 MB placed round-robin, so a
//! 192 MB mini-batch read touches at most two arrays and the reader load
//! per array drops to at most `2N/32`.

use sw26010::SimTime;

/// Data placement policy of the training-set file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Whole file on one disk array (system default).
    SingleSplit,
    /// Round-robin striping over `stripes` arrays with `split_bytes`
    /// blocks (paper: 32 stripes of 256 MB).
    Striped { stripes: usize, split_bytes: usize },
}

impl Layout {
    /// The paper's tuned layout.
    pub fn paper_striped() -> Layout {
        Layout::Striped {
            stripes: 32,
            split_bytes: 256 << 20,
        }
    }
}

/// The storage subsystem.
#[derive(Debug, Clone, Copy)]
pub struct IoModel {
    /// Disk arrays available to the job.
    pub arrays: usize,
    /// Sustained read bandwidth of one array (bytes/s).
    pub array_bandwidth: f64,
    /// Per-node NIC ceiling for filesystem traffic (bytes/s).
    pub nic_bandwidth: f64,
    pub layout: Layout,
}

impl IoModel {
    /// TaihuLight-like defaults: 32 arrays of 2.4 GB/s behind 12 GB/s NICs.
    pub fn taihulight(layout: Layout) -> Self {
        IoModel {
            arrays: 32,
            array_bandwidth: 2.4e9,
            nic_bandwidth: 12.0e9,
            layout,
        }
    }

    /// Arrays a single contiguous read of `bytes` touches.
    pub fn arrays_touched(&self, bytes: usize) -> usize {
        match self.layout {
            Layout::SingleSplit => 1,
            Layout::Striped {
                stripes,
                split_bytes,
            } => {
                // A contiguous range of `bytes` spans at most
                // ceil(bytes/split)+1 splits, each on a different array.
                (bytes / split_bytes + 2).min(stripes)
            }
        }
    }

    /// Concurrent readers per (touched) array when `nprocs` processes each
    /// issue one mini-batch read at independent offsets.
    pub fn readers_per_array(&self, nprocs: usize, bytes: usize) -> usize {
        match self.layout {
            // Everyone hits the single array holding the file.
            Layout::SingleSplit => nprocs,
            Layout::Striped { stripes, .. } => {
                let k = self.arrays_touched(bytes);
                (nprocs * k).div_ceil(stripes.min(self.arrays)).max(1)
            }
        }
    }

    /// Time for one process to read its `bytes` mini-batch while `nprocs`
    /// read concurrently. The read is spread over `arrays_touched` arrays
    /// in parallel, each delivering its fair share.
    pub fn batch_read_time(&self, nprocs: usize, bytes: usize) -> SimTime {
        let r = self.readers_per_array(nprocs, bytes) as f64;
        let k = self.arrays_touched(bytes) as f64;
        let bw = (k * self.array_bandwidth / r).min(self.nic_bandwidth);
        SimTime::from_seconds(bytes as f64 / bw)
    }

    /// Aggregate bandwidth across all processes (bytes/s) — the quantity
    /// whose collapse under single-split motivates Sec. V-B.
    pub fn aggregate_bandwidth(&self, nprocs: usize, bytes: usize) -> f64 {
        let t = self.batch_read_time(nprocs, bytes).seconds();
        nprocs as f64 * bytes as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BATCH: usize = 192 << 20; // 192 MB (256 ImageNet images)

    #[test]
    fn single_split_saturates_one_array() {
        let io = IoModel::taihulight(Layout::SingleSplit);
        for n in [1, 8, 64, 512] {
            let agg = io.aggregate_bandwidth(n, BATCH);
            assert!(
                agg <= io.array_bandwidth * 1.001,
                "single split exceeded one array: {agg} at {n} procs"
            );
        }
    }

    #[test]
    fn striped_scales_until_arrays_saturate() {
        let io = IoModel::taihulight(Layout::paper_striped());
        let a8 = io.aggregate_bandwidth(8, BATCH);
        let a64 = io.aggregate_bandwidth(64, BATCH);
        assert!(a64 > 3.0 * a8 || a64 > 0.8 * io.arrays as f64 * io.array_bandwidth);
        // Never exceeds total array capability.
        for n in [1, 32, 256, 1024] {
            let agg = io.aggregate_bandwidth(n, BATCH);
            assert!(agg <= io.arrays as f64 * io.array_bandwidth * 1.001);
        }
    }

    #[test]
    fn striped_beats_single_split_at_scale() {
        let single = IoModel::taihulight(Layout::SingleSplit);
        let striped = IoModel::taihulight(Layout::paper_striped());
        let t_single = single.batch_read_time(1024, BATCH).seconds();
        let t_striped = striped.batch_read_time(1024, BATCH).seconds();
        assert!(
            t_striped < t_single / 10.0,
            "striped {t_striped}s vs single {t_single}s at 1024 procs"
        );
    }

    #[test]
    fn batch_touches_at_most_two_arrays() {
        // Paper: 192 MB consecutive read with 256 MB splits touches <= 2.
        let io = IoModel::taihulight(Layout::paper_striped());
        assert!(io.arrays_touched(BATCH) <= 2);
        // And reader load is at most 2N/32.
        let n = 1024;
        assert!(io.readers_per_array(n, BATCH) <= 2 * n / 32);
    }

    #[test]
    fn nic_caps_single_reader() {
        let io = IoModel {
            arrays: 32,
            array_bandwidth: 100.0e9, // hypothetical very fast arrays
            nic_bandwidth: 12.0e9,
            layout: Layout::paper_striped(),
        };
        let t = io.batch_read_time(1, BATCH).seconds();
        let implied = BATCH as f64 / t;
        assert!(implied <= 12.0e9 * 1.001);
    }
}
