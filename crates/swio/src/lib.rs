//! # swio — parallel I/O substrate (Sec. V-B of the paper)
//!
//! Three pieces: a disk-array/striping model of the TaihuLight shared
//! filesystem (single-split vs the paper's 32-way, 256 MB round-robin
//! striping), a deterministic synthetic ImageNet stand-in (the real
//! dataset is not available here; record sizes match the paper's 192 MB
//! per 256-image mini-batch), and a real background prefetch thread per
//! worker that hides simulated disk time behind compute.

pub mod dataset;
pub mod prefetch;
pub mod stripefs;

pub use dataset::{EpochSampler, SyntheticImageNet, CLASSES, RECORD_BYTES};
pub use prefetch::{io_stall, Batch, BatchReader, Prefetcher, ReadError};
pub use stripefs::{IoModel, Layout};
