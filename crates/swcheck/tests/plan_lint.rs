//! Static lint acceptance: the whole benchmark shape sweep must pass,
//! and an overflowing plan must be rejected *before* its kernel runs.

use sw26010::{CoreGroup, ExecMode, KernelPlan};
use swcheck::{lint_benchmark_sweep, lint_plans};

#[test]
fn vgg_sweep_every_plan_fits_ldm() {
    let outcome = lint_benchmark_sweep();
    assert!(outcome.checked >= 100, "checked: {}", outcome.checked);
    assert!(
        outcome.is_clean(),
        "rejected plans:\n{}",
        outcome
            .rejected
            .iter()
            .map(|(l, v)| format!("  {l}: {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn overflowing_plan_is_rejected_with_named_buffers() {
    let bad = KernelPlan::new("swdnn.bogus_tile", 64)
        .buffer("a_tile", 48 * 1024)
        .buffer("b_tile", 48 * 1024);
    let outcome = lint_plans([("bogus".to_string(), &bad)]);
    assert_eq!(outcome.rejected.len(), 1);
    let msg = outcome.rejected[0].1.to_string();
    assert!(msg.contains("overflows LDM"), "{msg}");
    assert!(msg.contains("a_tile 49152 B + b_tile 49152 B"), "{msg}");
    assert!(msg.contains("98304 B planned vs 65536 B capacity"), "{msg}");
}

#[test]
#[should_panic(expected = "overflows LDM")]
fn run_planned_rejects_overflowing_shape_before_launch() {
    let mut cg = CoreGroup::new(ExecMode::Functional);
    let plan = KernelPlan::new("inject.huge", 64).buffer("a", 80 * 1024);
    cg.run_planned(&plan, |_cpe| {
        unreachable!("the kernel must never start for a rejected plan")
    });
}
