//! Negative tests for `swcheck::graph`: hand-built net definitions with
//! one injected defect each; the lint must name the defect (and the
//! clean baseline must stay clean).

use swcaffe_core::{ConvFormat, LayerKind, NetDef, PoolKind, TransDir};
use swcheck::graph::{check_net_def, GraphViolation};

fn input(shape: &[usize]) -> LayerKind {
    LayerKind::Input {
        shape: shape.to_vec(),
        with_labels: false,
    }
}

fn kinds(def: &NetDef) -> Vec<&'static str> {
    check_net_def(def)
        .violations
        .iter()
        .map(GraphViolation::kind)
        .collect()
}

#[test]
fn clean_baseline_stays_clean() {
    let def = NetDef::new("clean")
        .layer("data", input(&[2, 3, 8, 8]), &[], &["data"])
        .layer("relu", LayerKind::ReLU, &["data"], &["act"]);
    assert!(kinds(&def).is_empty(), "{:?}", kinds(&def));
}

#[test]
fn shape_mismatch_is_reported() {
    // Pooling window larger than the feature map: the runtime setup
    // would underflow; the lint reports it as a typed shape violation.
    let def = NetDef::new("bad_pool")
        .layer("data", input(&[2, 3, 8, 8]), &[], &["data"])
        .layer(
            "pool",
            LayerKind::Pooling {
                kernel: 9,
                stride: 1,
                pad: 0,
                method: PoolKind::Max,
            },
            &["data"],
            &["pooled"],
        );
    let found = kinds(&def);
    assert!(found.contains(&"shape_mismatch"), "{found:?}");

    // Eltwise operands of different shapes.
    let def = NetDef::new("bad_sum")
        .layer("a", input(&[2, 3, 8, 8]), &[], &["a"])
        .layer("b", input(&[2, 3, 4, 4]), &[], &["b"])
        .layer("sum", LayerKind::EltwiseSum, &["a", "b"], &["out"]);
    let found = kinds(&def);
    assert!(found.contains(&"shape_mismatch"), "{found:?}");
}

#[test]
fn dangling_blob_and_dead_layer_are_reported() {
    // A side branch nobody consumes while the graph has a loss head:
    // its top dangles and the layer producing it is dead.
    let def = NetDef::new("dangler")
        .layer(
            "data",
            LayerKind::Input {
                shape: vec![2, 3, 8, 8],
                with_labels: true,
            },
            &[],
            &["data", "label"],
        )
        .layer("relu", LayerKind::ReLU, &["data"], &["act"])
        .layer("side", LayerKind::ReLU, &["data"], &["unused"])
        .layer(
            "fc",
            LayerKind::InnerProduct {
                num_output: 4,
                bias: true,
            },
            &["act"],
            &["scores"],
        )
        .layer(
            "loss",
            LayerKind::SoftmaxWithLoss,
            &["scores", "label"],
            &["loss"],
        );
    let found = kinds(&def);
    assert!(found.contains(&"dangling_blob"), "{found:?}");
    assert!(found.contains(&"dead_layer"), "{found:?}");
}

#[test]
fn in_place_alias_is_reported() {
    let def = NetDef::new("alias")
        .layer("data", input(&[2, 3, 8, 8]), &[], &["data"])
        .layer("relu", LayerKind::ReLU, &["data"], &["data"]);
    let found = kinds(&def);
    assert!(found.contains(&"in_place_alias"), "{found:?}");
}

#[test]
fn undefined_and_redefined_blobs_are_reported() {
    let def = NetDef::new("undefined")
        .layer("data", input(&[2, 3, 8, 8]), &[], &["data"])
        .layer("relu", LayerKind::ReLU, &["ghost"], &["act"]);
    let found = kinds(&def);
    assert!(found.contains(&"undefined_blob"), "{found:?}");

    let def = NetDef::new("redefined")
        .layer("data", input(&[2, 3, 8, 8]), &[], &["data"])
        .layer("r1", LayerKind::ReLU, &["data"], &["act"])
        .layer("r2", LayerKind::ReLU, &["data"], &["act"]);
    let found = kinds(&def);
    assert!(found.contains(&"redefined_blob"), "{found:?}");
}

#[test]
fn layout_mismatch_is_reported() {
    // An RCNB convolution fed an NCHW blob without the transform.
    let def = NetDef::new("layout")
        .layer("data", input(&[2, 3, 8, 8]), &[], &["data"])
        .layer(
            "conv",
            LayerKind::Convolution {
                num_output: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
                bias: true,
                format: ConvFormat::Rcnb,
            },
            &["data"],
            &["feat"],
        )
        .layer(
            "back",
            LayerKind::TensorTransform {
                dir: TransDir::RcnbToNchw,
            },
            &["feat"],
            &["out"],
        );
    let found = kinds(&def);
    assert!(found.contains(&"layout_mismatch"), "{found:?}");
}

#[test]
fn fusion_precondition_violation_is_reported() {
    // The inference-only fused layer coexisting with a training head.
    let def = NetDef::new("fused_train")
        .layer(
            "data",
            LayerKind::Input {
                shape: vec![2, 3, 8, 8],
                with_labels: true,
            },
            &[],
            &["data", "label"],
        )
        .layer(
            "fused",
            LayerKind::FusedConvBnRelu {
                num_output: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
                bias: true,
                eps: 1e-5,
            },
            &["data"],
            &["feat"],
        )
        .layer(
            "fc",
            LayerKind::InnerProduct {
                num_output: 4,
                bias: true,
            },
            &["feat"],
            &["scores"],
        )
        .layer(
            "loss",
            LayerKind::SoftmaxWithLoss,
            &["scores", "label"],
            &["loss"],
        );
    let found = kinds(&def);
    assert!(found.contains(&"fusion_precondition"), "{found:?}");
}

#[test]
fn bottom_arity_violation_is_reported() {
    let def = NetDef::new("arity")
        .layer("data", input(&[2, 3, 8, 8]), &[], &["data"])
        .layer("sum", LayerKind::EltwiseSum, &["data"], &["out"]);
    let found = kinds(&def);
    assert!(found.contains(&"bottom_arity"), "{found:?}");
}

#[test]
fn typed_errors_reach_net_construction_and_the_optimizer() {
    // `Net::from_def` must reject an ill-formed definition with the
    // lint's message instead of panicking deep in layer setup.
    let def = NetDef::new("bad_pool")
        .layer("data", input(&[2, 3, 8, 8]), &[], &["data"])
        .layer(
            "pool",
            LayerKind::Pooling {
                kernel: 9,
                stride: 1,
                pad: 0,
                method: PoolKind::Max,
            },
            &["data"],
            &["pooled"],
        );
    let err = match swcaffe_core::Net::from_def_mode(&def, sw26010::ExecMode::Functional) {
        Err(e) => e,
        Ok(_) => panic!("lint must reject the window underflow"),
    };
    assert!(err.contains("net lint"), "{err}");

    // The serving optimizer runs the same pre-pass.
    let err = swserve::optimize(&def).expect_err("optimizer pre-pass must reject");
    assert!(err.contains("lint"), "{err}");
}
