//! The backward-overlapped bucketed all-reduce path under the
//! sanitizer: a real net's forward/backward runs on a recording core
//! group with zero violations, gradients stay bit-identical to an
//! unchecked run, and the bucketed reduce driven by the traced run's
//! backward events matches the monolithic reduce bit-for-bit.

use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{models, Net};
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};
use swtrain::{build_buckets, overlapped_allreduce, pack_gradients};

fn train_step(cg: &mut CoreGroup) -> (Net, Vec<swcaffe_core::GradReady>) {
    let def = models::tiny_cnn(2, 3);
    let mut net = Net::from_def(&def, true).unwrap();
    let img = 3 * 16 * 16;
    let data: Vec<f32> = (0..2 * img)
        .map(|i| ((i * 29 % 13) as f32 - 6.0) / 7.0)
        .collect();
    net.set_input("data", &data);
    net.set_input("label", &[0.0, 2.0]);
    net.zero_param_diffs();
    net.forward(cg);
    let events = net.backward_with_events(cg);
    (net, events)
}

#[test]
fn training_step_is_clean_and_bit_identical_under_sanitizer() {
    let mut plain = CoreGroup::new(ExecMode::Functional);
    let (ref_net, _) = train_step(&mut plain);
    let reference = pack_gradients(&ref_net);

    let mut checked = CoreGroup::new_checked(ExecMode::Functional);
    let (net, events) = train_step(&mut checked);
    let grads = pack_gradients(&net);

    assert_eq!(reference.len(), grads.len());
    for (i, (a, b)) in reference.iter().zip(&grads).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "grad[{i}] perturbed by tracing");
    }

    let traces = checked.take_traces();
    assert!(!traces.is_empty(), "training step produced no traces");
    let violations = swcheck::check_traces(&traces);
    assert!(
        violations.is_empty(),
        "sanitizer found violations in the training step:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The bucketed-overlapped reduce driven by the traced run's real
    // backward events must match the monolithic reduce bit-for-bit.
    let elems = net.param_len();
    let p = 8;
    let topo = Topology::with_supernode(p, 4);
    let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
    let make = || -> Vec<Vec<f32>> {
        (0..p)
            .map(|r| {
                (0..elems)
                    .map(|i| 1.0 / (1 + (r * 131 + i * 17) % 97) as f32 - 0.5)
                    .collect()
            })
            .collect()
    };
    for algo in [
        Algorithm::Ring,
        Algorithm::Binomial,
        Algorithm::RecursiveHalvingDoubling,
    ] {
        let mut mono = make();
        let mut seg = mono.clone();
        allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            algo,
            elems,
            Some(&mut mono),
        );
        let buckets = build_buckets(&events, 4096);
        assert!(buckets.len() > 1, "want multiple buckets");
        overlapped_allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            algo,
            elems,
            &buckets,
            Some(&mut seg),
        );
        for (rank, (a, b)) in mono.iter().zip(&seg).enumerate() {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "algo {algo:?} rank {rank} elem {i} differs"
                );
            }
        }
    }
}
