//! Tier: the full swdnn kernel zoo must run clean under the sanitizer,
//! and recording must not perturb results or simulated time.

use sw26010::{CoreGroup, ExecMode};
use swcheck::suite;
use swdnn::{gemm, GemmDims, Trans};

#[test]
fn kernel_zoo_runs_clean_under_sanitizer() {
    let outcome = swcheck::run_suite();
    assert!(outcome.launches > 40, "launches: {}", outcome.launches);
    assert!(outcome.events > 100_000, "events: {}", outcome.events);
    for expected in [
        "swdnn.gemm",
        "swdnn.gemm_db",
        "swdnn.pool.fwd",
        "swdnn.bn.fwd_stats",
        "swdnn.softmax.fwd",
        "swdnn.unary_map",
    ] {
        assert!(
            outcome.kernels.iter().any(|k| k == expected),
            "kernel {expected} missing from {:?}",
            outcome.kernels
        );
    }
    assert!(
        outcome.is_clean(),
        "sanitizer found violations:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unchecked_run_records_nothing() {
    assert!(suite::run_unchecked_records_nothing());
}

#[test]
fn tracing_is_bit_identical_in_data_and_simulated_time() {
    let dims = GemmDims::new(40, 36, 24);
    let mut a = vec![0.0f32; dims.m * dims.k];
    let mut b = vec![0.0f32; dims.k * dims.n];
    let mut c0 = vec![0.0f32; dims.m * dims.n];
    suite::fill(1, &mut a);
    suite::fill(2, &mut b);
    suite::fill(3, &mut c0);
    let mut c1 = c0.clone();

    let mut plain = CoreGroup::new(ExecMode::Functional);
    let r0 = gemm::gemm(
        &mut plain,
        dims,
        Trans::No,
        Trans::No,
        0.5,
        Some(gemm::GemmOperands {
            a: &a,
            b: &b,
            c: &mut c0,
        }),
    );

    let mut checked = CoreGroup::new_checked(ExecMode::Functional);
    let r1 = gemm::gemm(
        &mut checked,
        dims,
        Trans::No,
        Trans::No,
        0.5,
        Some(gemm::GemmOperands {
            a: &a,
            b: &b,
            c: &mut c1,
        }),
    );

    for (i, (x, y)) in c0.iter().zip(&c1).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "c[{i}] differs under tracing");
    }
    assert_eq!(
        r0.elapsed.seconds().to_bits(),
        r1.elapsed.seconds().to_bits(),
        "simulated time perturbed by tracing"
    );
    let traces = checked.take_traces();
    assert_eq!(traces.len(), 1);
    assert!(traces[0].per_cpe.iter().any(|c| !c.events.is_empty()));
    assert!(swcheck::check_traces(&traces).is_empty());
}
