//! Hazard-injection tests for `swcheck::comm`: mutate materialized
//! collective schedules in targeted ways and prove the checker reports
//! each class of violation — and nothing on the unmutated baselines.
//!
//! Also exercises the `swtrain` integration: a crash followed by
//! `ShrinkAndContinue` must leave the cluster with a schedulable,
//! verifiably clean collective configuration.

use sw26010::ExecMode;
use swcaffe_core::{models, SolverConfig};
use swcheck::comm::{check_schedule, check_spec, CommViolation};
use swnet::{Algorithm, CommPhase, CommSchedule, CommSpec, RankMap, RankOp, Topology};
use swtrain::{ClusterConfig, ClusterTrainer, FaultPlan, FaultSession, Recovery};

fn materialize(algo: Algorithm, p: usize) -> CommSchedule {
    CommSpec::monolithic(
        Topology::with_supernode(p, (p / 2).max(1)),
        RankMap::RoundRobin,
        algo,
        4096,
    )
    .unwrap()
    .extract()
}

fn kinds(sched: &CommSchedule) -> Vec<&'static str> {
    check_schedule(sched)
        .violations
        .iter()
        .map(CommViolation::kind)
        .collect()
}

#[test]
fn mismatched_peer_is_reported() {
    let mut sched = materialize(Algorithm::RecursiveHalvingDoubling, 8);
    assert!(check_schedule(&sched).is_clean());
    // Rank 1's reduce recv in step 0 claims the wrong source: its true
    // partner's send now has no receiver, and the claimed channel
    // carries a recv that is never sent.
    let op = sched.steps[0]
        .1
        .iter_mut()
        .find(|o| !o.is_send && o.rank == 1)
        .unwrap();
    assert_eq!(op.peer, 5, "RHD step 0 pairs rank 1 with 1 ^ 4");
    op.peer = 6;
    let found = kinds(&sched);
    assert!(found.contains(&"unmatched_send"), "{found:?}");
    assert!(found.contains(&"unmatched_recv"), "{found:?}");
}

#[test]
fn dropped_recv_is_reported() {
    let mut sched = materialize(Algorithm::RecursiveHalvingDoubling, 4);
    assert!(check_schedule(&sched).is_clean());
    // Remove rank 2's reduce recv entirely: its partner's send can
    // never complete.
    let pos = sched.steps[0]
        .1
        .iter()
        .position(|o| !o.is_send && o.rank == 2)
        .unwrap();
    sched.steps[0].1.remove(pos);
    let found = kinds(&sched);
    assert!(found.contains(&"unmatched_send"), "{found:?}");
}

#[test]
fn double_reduced_segment_is_reported() {
    let mut sched = materialize(Algorithm::RecursiveHalvingDoubling, 4);
    assert!(check_schedule(&sched).is_clean());
    // Duplicate a matched reduce pair in step 1 (mask 1: 0 <-> 1): the
    // receiver folds its partner's partial sum twice, so the owner ends
    // the reduce phase with doubled contributions — and the duplicate
    // delivery within one step makes the fold order ambiguous.
    let dup: Vec<RankOp> = sched.steps[1]
        .1
        .iter()
        .filter(|o| (o.rank == 0 && o.is_send) || (o.rank == 1 && !o.is_send))
        .copied()
        .collect();
    sched.steps[1].1.extend(dup);
    let found = kinds(&sched);
    assert!(found.contains(&"reduce_count_mismatch"), "{found:?}");
    assert!(found.contains(&"nondeterministic_fold"), "{found:?}");
}

#[test]
fn wait_for_cycle_is_reported() {
    // Skew a 2-rank RHD exchange so both ranks post their sends in one
    // step and their recvs in the next: under rendezvous semantics
    // neither send can complete, the classic head-to-head deadlock.
    let base = materialize(Algorithm::RecursiveHalvingDoubling, 2);
    assert!(check_schedule(&base).is_clean());
    let (phase0, ops0) = base.steps[0].clone();
    let sends: Vec<RankOp> = ops0.iter().filter(|o| o.is_send).copied().collect();
    let recvs: Vec<RankOp> = ops0.iter().filter(|o| !o.is_send).copied().collect();
    let mut steps = vec![(phase0, sends), (phase0, recvs)];
    steps.extend(base.steps[1..].iter().cloned());
    let sched = CommSchedule {
        spec: base.spec,
        steps,
    };
    let out = check_schedule(&sched);
    let found: Vec<_> = out.violations.iter().map(CommViolation::kind).collect();
    assert!(found.contains(&"wait_for_cycle"), "{found:?}");
}

#[test]
fn payload_mismatch_is_reported() {
    let mut sched = materialize(Algorithm::Ring, 5);
    assert!(check_schedule(&sched).is_clean());
    // A recv that expects a different chunk than its sender carries.
    let op = sched.steps[2]
        .1
        .iter_mut()
        .find(|o| !o.is_send && o.rank == 3)
        .unwrap();
    op.chunks = swnet::ChunkSpan::new(1, 2);
    let found = kinds(&sched);
    assert!(found.contains(&"payload_mismatch"), "{found:?}");
}

#[test]
fn dropped_gather_step_is_reported() {
    let mut sched = materialize(Algorithm::Ring, 5);
    assert!(check_schedule(&sched).is_clean());
    // Delete the final gather step: every rank is left one chunk short
    // of the fully reduced buffer.
    assert_eq!(sched.steps.last().unwrap().0, CommPhase::Gather);
    sched.steps.pop();
    let found = kinds(&sched);
    assert!(found.contains(&"incomplete_gather"), "{found:?}");
}

#[test]
fn rerouted_reduce_chunk_is_reported() {
    let mut sched = materialize(Algorithm::Ring, 4);
    assert!(check_schedule(&sched).is_clean());
    // Reroute one matched reduce exchange to a different chunk: the
    // original chunk misses a contribution (count 0 at its owner) and
    // the rerouted one is folded twice.
    for op in sched.steps[1].1.iter_mut() {
        if (op.rank == 0 && op.is_send && op.peer == 1) || (op.rank == 1 && !op.is_send) {
            op.chunks = swnet::ChunkSpan::new(0, 1);
        }
    }
    let found = kinds(&sched);
    assert!(found.contains(&"reduce_count_mismatch"), "{found:?}");
}

#[test]
fn non_canonical_emission_order_is_reported() {
    let mut sched = materialize(Algorithm::Binomial, 8);
    assert!(check_schedule(&sched).is_clean());
    // Swap two ops in one step: the deterministic cost-accounting order
    // (ascending rank, send before recv) is broken even though the
    // schedule still matches and reduces correctly.
    sched.steps[0].1.swap(0, 1);
    let found = kinds(&sched);
    assert!(found.contains(&"non_canonical_order"), "{found:?}");
}

#[test]
fn shrink_and_continue_yields_a_verifiably_clean_schedule() {
    // 4-node paper configuration (RHD over round-robin supernodes).
    let def = models::tiny_cnn(1, 3);
    let mut cluster = ClusterTrainer::new(
        &def,
        SolverConfig::default(),
        ClusterConfig {
            supernode_size: 2,
            ..ClusterConfig::swcaffe(4)
        },
        ExecMode::Functional,
    )
    .unwrap();
    let pre = cluster.config.comm_spec(100_000).unwrap();
    assert_eq!(pre.algo, Algorithm::RecursiveHalvingDoubling);
    assert!(check_spec(&pre).is_clean());

    // Node 3 dies; the job shrinks to 3 survivors. RHD needs a power of
    // two, so recovery reconfigures to Ring over the natural mapping.
    let mut faults = FaultSession::new(FaultPlan::new(11).crash(3, 1));
    faults.begin_iteration(1);
    cluster
        .recover(&mut faults, Recovery::ShrinkAndContinue, None)
        .unwrap();
    assert_eq!(cluster.config.nodes, 3);

    let post = cluster.config.comm_spec(100_000).unwrap();
    assert_eq!(post.algo, Algorithm::Ring);
    assert_eq!(post.map, RankMap::Natural);
    let out = check_spec(&post);
    assert!(out.is_clean(), "{:?}", out.violations);

    // An 8-node job losing one rank keeps shrinking to 7 — still ring —
    // and that schedule verifies clean too.
    let mut cluster8 = ClusterTrainer::new(
        &def,
        SolverConfig::default(),
        ClusterConfig {
            supernode_size: 4,
            ..ClusterConfig::swcaffe(8)
        },
        ExecMode::Functional,
    )
    .unwrap();
    let mut faults8 = FaultSession::new(FaultPlan::new(7).crash(5, 1));
    faults8.begin_iteration(1);
    cluster8
        .recover(&mut faults8, Recovery::ShrinkAndContinue, None)
        .unwrap();
    let post8 = cluster8.config.comm_spec(50_000).unwrap();
    assert_eq!(post8.topo.nodes, 7);
    assert!(check_spec(&post8).is_clean());
}
