//! Negative tests: kernels with injected hazards must each be caught by
//! the sanitizer with the right violation kind — this is the proof the
//! checker actually checks something.

use sw26010::{CoreGroup, ExecMode, MemView, MemViewMut};
use swcheck::{check_traces, Violation, ViolationKind};

fn run_and_check(
    name: &str,
    n_cpes: usize,
    kernel: impl Fn(&mut sw26010::Cpe) + Sync,
) -> Vec<Violation> {
    let mut cg = CoreGroup::new_checked(ExecMode::Functional);
    cg.run_named(name, n_cpes, kernel);
    check_traces(&cg.take_traces())
}

#[test]
fn use_before_wait_is_caught() {
    let src = vec![1.0f32; 256];
    let mut dst = vec![0.0f32; 256];
    let sv = MemView::new(&src);
    let dv = MemViewMut::new(&mut dst);
    let v = run_and_check("inject.use_before_wait", 1, move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(256);
        let h = cpe.dma_get_async(sv, 0, &mut buf);
        // BUG: reads `buf` while the get is still in flight.
        cpe.dma_put(dv, 0, &buf[..]);
        cpe.dma_wait(h);
    });
    assert!(
        v.iter()
            .any(|v| matches!(v.kind, ViolationKind::UseBeforeWait { .. })),
        "{v:?}"
    );
}

#[test]
fn double_wait_is_caught() {
    let src = vec![1.0f32; 64];
    let sv = MemView::new(&src);
    let v = run_and_check("inject.double_wait", 1, move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(64);
        let h = cpe.dma_get_async(sv, 0, &mut buf);
        cpe.dma_wait(h);
        // BUG: the handle was already retired.
        cpe.dma_wait(h);
    });
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        matches!(v[0].kind, ViolationKind::DoubleWait { .. }),
        "{v:?}"
    );
}

#[test]
fn leaked_dma_is_caught() {
    let src = vec![1.0f32; 64];
    let sv = MemView::new(&src);
    let v = run_and_check("inject.leak", 1, move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(64);
        // BUG: issued but never waited.
        let _h = cpe.dma_get_async(sv, 0, &mut buf);
    });
    assert!(
        v.iter()
            .any(|v| matches!(v.kind, ViolationKind::LeakedDma { .. })),
        "{v:?}"
    );
}

#[test]
fn send_recv_mismatch_is_caught() {
    let v = run_and_check("inject.rlc_mismatch", 2, |cpe| {
        if cpe.idx() == 0 {
            // BUG: two sends for a single receive.
            cpe.rlc_row_send(1, &[1.0f64]);
            cpe.rlc_row_send(1, &[2.0f64]);
        } else {
            let mut got = [0.0f64];
            cpe.rlc_row_recv(0, &mut got);
        }
    });
    assert!(
        v.iter().any(|v| matches!(
            v.kind,
            ViolationKind::SendRecvMismatch {
                from: 0,
                to: 1,
                sent: 2,
                received: 1,
                ..
            }
        )),
        "{v:?}"
    );
}

#[test]
fn rlc_deadlock_is_caught() {
    // Both CPEs receive first: a classic cyclic wait. The stall detector
    // unwinds the mesh and the checker classifies it as a deadlock.
    let v = run_and_check("inject.deadlock", 2, |cpe| {
        let mut got = [0.0f64];
        if cpe.idx() == 0 {
            cpe.rlc_row_recv(1, &mut got);
            cpe.rlc_row_send(1, &[1.0f64]);
        } else {
            cpe.rlc_row_recv(0, &mut got);
            cpe.rlc_row_send(0, &[2.0f64]);
        }
    });
    let deadlock = v
        .iter()
        .find(|v| matches!(v.kind, ViolationKind::Deadlock { .. }))
        .unwrap_or_else(|| panic!("no deadlock diagnosis in {v:?}"));
    let msg = deadlock.to_string();
    assert!(msg.contains("blocked on"), "{msg}");
}

#[test]
fn barrier_divergence_is_caught() {
    let v = run_and_check("inject.divergence", 2, |cpe| {
        if cpe.idx() == 0 {
            // BUG: only one of the two CPEs reaches the barrier.
            cpe.sync();
        }
    });
    assert!(
        v.iter()
            .any(|v| matches!(v.kind, ViolationKind::BarrierDivergence { .. })),
        "{v:?}"
    );
}

#[test]
fn plan_high_water_mismatch_is_caught() {
    let src = vec![0.0f32; 2048];
    let sv = MemView::new(&src);
    let plan = sw26010::KernelPlan::new("inject.undersized_plan", 1).buffer("buf", 1024);
    let mut cg = CoreGroup::new_checked(ExecMode::Functional);
    // Launch via run_named so the (valid but dishonest) plan is not
    // enforced at launch; the sanitizer cross-checks the trace instead.
    cg.run_named("inject.undersized_plan", 1, move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(2048); // 8 KB > 1 KB planned
        cpe.dma_get(sv, 0, &mut buf);
    });
    let traces = cg.take_traces();
    let v = swcheck::check_trace_against_plan(&traces[0], &plan);
    assert!(
        v.iter().any(|v| matches!(
            v.kind,
            ViolationKind::PlanExceeded {
                observed: 8192,
                planned: 1024,
                ..
            }
        )),
        "{v:?}"
    );
}
