//! # swcheck — kernel sanitizer + static lint pass for SW26010 kernels
//!
//! Correctness tooling for the simulated SW26010 kernel zoo, in two
//! halves:
//!
//! * **Dynamic sanitizer** ([`sanitize`]): replays the typed event
//!   traces a [`sw26010::CheckMode::Record`] core group captures
//!   (every DMA issue/wait, register-communication send/recv, mesh
//!   barrier, and LDM alloc/free on every CPE) and proves
//!   happens-before properties — no use of a buffer before its
//!   `dma_wait`, no double-waits or leaked handles, matched send/recv
//!   counts on both buses, uniform barrier arrival — and classifies
//!   stalled launches as deadlock or barrier divergence with per-CPE
//!   blocked-on diagnostics.
//! * **Static lint** ([`lint`]): validates the [`sw26010::KernelPlan`]
//!   every swdnn kernel registers, across the benchmark shape sweep,
//!   proving LDM fit *before* execution and rejecting overflowing
//!   shapes with named-buffer diagnostics.
//!
//! [`suite`] drives the whole swdnn kernel zoo under the sanitizer and
//! [`report`] serializes findings as deterministic `swjson` documents
//! for CI artifacts.

pub mod comm;
pub mod graph;
pub mod lint;
pub mod report;
pub mod sanitize;
pub mod suite;

pub use comm::{check_schedule, check_spec, CheckMode, CommOutcome, CommViolation};
pub use graph::{check_model_zoo, check_net_def, GraphOutcome};
pub use lint::{conv_shape_plans, lint_benchmark_sweep, lint_plans, LintOutcome};
pub use report::{
    comm_report_json, comm_violation_json, graph_report_json, report_json, violation_json,
    violations_json,
};
pub use sanitize::{check_trace, check_trace_against_plan, check_traces, Violation, ViolationKind};
pub use suite::{drive_kernel_zoo, run_suite, summarize, SuiteOutcome};
