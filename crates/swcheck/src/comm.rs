//! # swcheck::comm — static verification of collective schedules
//!
//! Proves correctness properties of the symbolic communication schedules
//! [`swnet::CommSpec`] derives for the three all-reduce algorithms,
//! *without simulating* the collective. Because the runtime executes the
//! very same step generator (`collectives::run_schedule`), anything
//! proven here holds for the simulation by construction.
//!
//! Two modes, picked automatically by [`check_spec`]:
//!
//! * **Exact mode** (`nodes <= EXACT_MAX_RANKS`): the schedule is
//!   materialized and pushed through a symbolic dataflow that tracks,
//!   per rank and per chunk, *how many times each rank's gradient
//!   contribution has been folded in*. Send/recv payloads are snapshot
//!   at the send step (sendrecv exchanges within a step are concurrent),
//!   so the analysis is faithful to the bulk-synchronous semantics. At
//!   the reduce/gather boundary every chunk's owner must hold every
//!   contribution exactly once; at the end every rank must. This catches
//!   double-reduced segments, dropped contributions, stale gathers, and
//!   within-step fold-order ambiguity (the reduction-order determinism
//!   property) with no false positives.
//! * **Scale mode** (beyond the exact cutoff, up to 40,960+ ranks):
//!   per-step algebraic invariants that never materialize the quadratic
//!   ring schedule — the ring's [`swnet::StepOps::Uniform`] descriptors
//!   are checked in O(1) per step (shift sequences, pipeline hand-off
//!   `receiver(c, k) == sender(c, k+1)`, owner consistency), while RHD
//!   and the binomial tree are checked per step in O(p) via interval
//!   telescoping (RHD: send/keep halves partition the working interval,
//!   partners work the same block) and tree exactly-once counting
//!   (binomial: every non-root forwards its accumulator exactly once,
//!   strictly toward rank 0, before ever folding again). Deadlock
//!   freedom is structural in this mode: every operation matches within
//!   its own bulk-synchronous step, so the wait-for graph is layered by
//!   step index and cannot cycle.
//!
//! Exact mode additionally runs rendezvous deadlock detection over the
//! materialized schedule: matched send/recv pairs induce a wait-for
//! graph over per-rank step groups (a rank's send and recv within one
//! step are concurrent — sendrecv — so the classical ring pattern is
//! *not* a false positive), and a Kahn pass proves every group
//! completes. Injected cross-step skew (both peers sending first,
//! receiving later) is reported as [`CommViolation::WaitForCycle`].
//!
//! The hazard-injection tests in `tests/comm_hazards.rs` mutate
//! materialized schedules to prove each class of violation actually
//! fires.

use swnet::{
    Algorithm, ChunkSpan, CommPhase, CommSchedule, CommSpec, RankOp, StepOps, UniformStep,
};

/// Largest rank count verified by full exact-mode dataflow. Above this,
/// [`check_spec`] switches to the algebraic scale mode.
pub const EXACT_MAX_RANKS: usize = 128;

/// Cap on collected violations: a badly mutated schedule should produce
/// a readable report, not millions of lines.
const MAX_VIOLATIONS: usize = 64;

/// One property violation found in a collective schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommViolation {
    /// The topology or rank map is itself invalid (non-bijective
    /// physical mapping, phantom node, ...).
    BadTopology { detail: String },
    /// The chunk table does not tile the reduced segment exactly.
    BrokenChunkTable { detail: String },
    /// The post-reduce ownership spans do not partition chunk space.
    OwnershipNotPartition { chunk: usize, owners: usize },
    /// Step ops are not in the canonical deterministic emission order
    /// (ascending rank, send before recv, at most one of each per rank).
    NonCanonicalOrder { step: usize, index: usize },
    /// A send with no matching receive on the peer.
    UnmatchedSend {
        step: usize,
        rank: usize,
        peer: usize,
    },
    /// A receive with no matching send from the peer.
    UnmatchedRecv {
        step: usize,
        rank: usize,
        peer: usize,
    },
    /// Send and matched receive disagree on payload (chunk span or
    /// fold/copy flag).
    PayloadMismatch {
        step: usize,
        rank: usize,
        peer: usize,
        detail: String,
    },
    /// Rendezvous wait-for graph has a cycle: the listed (rank, step)
    /// groups can never complete.
    WaitForCycle { stuck: Vec<(usize, usize)> },
    /// Two payloads land on the same (rank, chunk) within one step, so
    /// the fold order — and the floating-point sum — is unspecified.
    NondeterministicFold {
        step: usize,
        rank: usize,
        chunk: usize,
    },
    /// After the reduce phase the chunk's owner holds a contribution a
    /// wrong number of times (0 = dropped, 2+ = double-reduced).
    ReduceCountMismatch {
        chunk: usize,
        contributor: usize,
        count: u32,
    },
    /// At the end of the schedule a rank does not hold the fully
    /// reduced value of a chunk exactly once.
    IncompleteGather {
        rank: usize,
        chunk: usize,
        contributor: usize,
        count: u32,
    },
    /// A scale-mode structural invariant broke (interval telescoping,
    /// ring pipeline hand-off, tree exactly-once, phase ordering).
    PhaseViolation { step: usize, detail: String },
}

impl CommViolation {
    /// Machine-readable snake_case tag, mirroring the kernel
    /// sanitizer's report conventions.
    pub fn kind(&self) -> &'static str {
        match self {
            CommViolation::BadTopology { .. } => "bad_topology",
            CommViolation::BrokenChunkTable { .. } => "broken_chunk_table",
            CommViolation::OwnershipNotPartition { .. } => "ownership_not_partition",
            CommViolation::NonCanonicalOrder { .. } => "non_canonical_order",
            CommViolation::UnmatchedSend { .. } => "unmatched_send",
            CommViolation::UnmatchedRecv { .. } => "unmatched_recv",
            CommViolation::PayloadMismatch { .. } => "payload_mismatch",
            CommViolation::WaitForCycle { .. } => "wait_for_cycle",
            CommViolation::NondeterministicFold { .. } => "nondeterministic_fold",
            CommViolation::ReduceCountMismatch { .. } => "reduce_count_mismatch",
            CommViolation::IncompleteGather { .. } => "incomplete_gather",
            CommViolation::PhaseViolation { .. } => "phase_violation",
        }
    }
}

impl std::fmt::Display for CommViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommViolation::BadTopology { detail } => write!(f, "invalid topology: {detail}"),
            CommViolation::BrokenChunkTable { detail } => {
                write!(f, "chunk table does not tile the segment: {detail}")
            }
            CommViolation::OwnershipNotPartition { chunk, owners } => write!(
                f,
                "chunk {chunk} has {owners} post-reduce owners (expected exactly 1)"
            ),
            CommViolation::NonCanonicalOrder { step, index } => write!(
                f,
                "step {step} op {index} breaks canonical order (ascending rank, send before recv)"
            ),
            CommViolation::UnmatchedSend { step, rank, peer } => write!(
                f,
                "step {step}: rank {rank} sends to {peer} but no matching recv exists"
            ),
            CommViolation::UnmatchedRecv { step, rank, peer } => write!(
                f,
                "step {step}: rank {rank} expects a message from {peer} that is never sent"
            ),
            CommViolation::PayloadMismatch {
                step,
                rank,
                peer,
                detail,
            } => write!(
                f,
                "step {step}: payload mismatch on {peer}->{rank}: {detail}"
            ),
            CommViolation::WaitForCycle { stuck } => {
                write!(f, "rendezvous deadlock: wait-for cycle through")?;
                for (r, s) in stuck {
                    write!(f, " (rank {r}, step {s})")?;
                }
                Ok(())
            }
            CommViolation::NondeterministicFold { step, rank, chunk } => write!(
                f,
                "step {step}: rank {rank} receives chunk {chunk} from multiple messages; \
                 fold order is unspecified"
            ),
            CommViolation::ReduceCountMismatch {
                chunk,
                contributor,
                count,
            } => write!(
                f,
                "chunk {chunk}: owner holds rank {contributor}'s contribution {count} times \
                 after reduce (expected exactly 1)"
            ),
            CommViolation::IncompleteGather {
                rank,
                chunk,
                contributor,
                count,
            } => write!(
                f,
                "rank {rank} ends with chunk {chunk} holding rank {contributor}'s \
                 contribution {count} times (expected exactly 1)"
            ),
            CommViolation::PhaseViolation { step, detail } => {
                write!(f, "step {step}: {detail}")
            }
        }
    }
}

impl std::error::Error for CommViolation {}

/// Which checker ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Materialized schedule + full contribution dataflow + rendezvous
    /// deadlock detection.
    Exact,
    /// Algebraic per-step invariants; deadlock freedom structural.
    Scale,
}

impl std::fmt::Display for CheckMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckMode::Exact => write!(f, "exact"),
            CheckMode::Scale => write!(f, "scale"),
        }
    }
}

/// Result of checking one collective configuration.
#[derive(Debug, Clone)]
pub struct CommOutcome {
    pub algo: Algorithm,
    pub nodes: usize,
    pub supernode_size: usize,
    pub mode: CheckMode,
    /// Bulk-synchronous steps examined.
    pub steps: usize,
    /// Endpoint operations examined (for uniform ring steps in scale
    /// mode, one descriptor stands for all `p` per-rank operations and
    /// counts as `2 p`).
    pub ops: usize,
    pub violations: Vec<CommViolation>,
}

impl CommOutcome {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Bounded violation sink.
struct Sink {
    violations: Vec<CommViolation>,
}

impl Sink {
    fn new() -> Self {
        Sink {
            violations: Vec::new(),
        }
    }

    fn push(&mut self, v: CommViolation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }

    fn full(&self) -> bool {
        self.violations.len() >= MAX_VIOLATIONS
    }
}

/// Deterministic 64-bit fingerprint of a spec's full schedule, folding
/// every step descriptor. Extraction is a pure function of the spec, so
/// equal fingerprints across runs (and across machines) witness
/// reduction-order determinism of the *emission*; the dataflow checker
/// separately proves no step has ambiguous fold order internally.
pub fn schedule_fingerprint(spec: &CommSpec) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut fold = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 31;
    };
    fold(spec.nodes() as u64);
    fold(spec.total_elems as u64);
    fold(spec.seg_lo as u64);
    fold(spec.seg_hi as u64);
    let mut ops = Vec::new();
    for step in 0..spec.num_steps() {
        match spec.step_descriptor(step) {
            StepOps::Uniform(u) => {
                fold(u.peer_delta as u64);
                fold(u.chunk_shift as u64);
                fold(u64::from(u.reduce));
            }
            StepOps::Explicit { ops: step_ops, .. } => {
                ops.clear();
                ops.extend(step_ops);
                for op in &ops {
                    fold((op.rank as u64) << 32 | op.peer as u64);
                    fold((op.chunks.lo as u64) << 32 | op.chunks.hi as u64);
                    fold(u64::from(op.is_send) << 1 | u64::from(op.reduce));
                }
            }
        }
    }
    h
}

// ---------------------------------------------------------------------
// Spec-level geometry checks (both modes)
// ---------------------------------------------------------------------

fn check_geometry(spec: &CommSpec, sink: &mut Sink) {
    // Rank map must be a bijection onto live physical slots.
    if let Err(e) = spec.map.physical_table(&spec.topo) {
        sink.push(CommViolation::BadTopology {
            detail: e.to_string(),
        });
    }

    // Non-empty chunk spans must tile [seg_lo, seg_hi) in order.
    let table = spec.chunk_table();
    let nonempty: Vec<(usize, usize)> = table.iter().copied().filter(|(lo, hi)| hi > lo).collect();
    if spec.seg_lo == spec.seg_hi {
        if !nonempty.is_empty() {
            sink.push(CommViolation::BrokenChunkTable {
                detail: "empty segment but non-empty chunk spans".into(),
            });
        }
    } else if nonempty.is_empty() {
        sink.push(CommViolation::BrokenChunkTable {
            detail: "non-empty segment but every chunk span is empty".into(),
        });
    } else {
        if nonempty.first().unwrap().0 != spec.seg_lo || nonempty.last().unwrap().1 != spec.seg_hi {
            sink.push(CommViolation::BrokenChunkTable {
                detail: format!(
                    "spans cover {}..{} but segment is {}..{}",
                    nonempty.first().unwrap().0,
                    nonempty.last().unwrap().1,
                    spec.seg_lo,
                    spec.seg_hi
                ),
            });
        }
        for w in nonempty.windows(2) {
            if w[0].1 != w[1].0 {
                sink.push(CommViolation::BrokenChunkTable {
                    detail: format!("gap or overlap between {:?} and {:?}", w[0], w[1]),
                });
                break;
            }
        }
    }

    // Post-reduce ownership must partition chunk space. Diff array keeps
    // this O(p) even at 40k ranks.
    let chunks = spec.num_chunks();
    let mut diff = vec![0i64; chunks + 1];
    for r in 0..spec.nodes() {
        let o = spec.owned_after_reduce(r);
        if o.is_empty() {
            continue;
        }
        if o.hi > chunks {
            sink.push(CommViolation::OwnershipNotPartition {
                chunk: o.hi - 1,
                owners: 0,
            });
            continue;
        }
        diff[o.lo] += 1;
        diff[o.hi] -= 1;
    }
    let mut cover = 0i64;
    for (c, d) in diff.iter().take(chunks).enumerate() {
        cover += d;
        if cover != 1 {
            sink.push(CommViolation::OwnershipNotPartition {
                chunk: c,
                owners: cover.max(0) as usize,
            });
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Exact mode: materialized schedule
// ---------------------------------------------------------------------

/// A matched send/recv pair, by (step, op index) coordinates.
struct Pair {
    send: (usize, usize),
    recv: (usize, usize),
}

fn check_canonical_order(steps: &[(CommPhase, Vec<RankOp>)], sink: &mut Sink) {
    for (si, (_, ops)) in steps.iter().enumerate() {
        let mut last: Option<(usize, bool)> = None; // (rank, is_send)
        for (oi, op) in ops.iter().enumerate() {
            let key = (op.rank, !op.is_send); // send sorts before recv
            if let Some(prev) = last {
                if key <= prev {
                    sink.push(CommViolation::NonCanonicalOrder {
                        step: si,
                        index: oi,
                    });
                    break;
                }
            }
            last = Some(key);
        }
    }
}

/// FIFO-match sends to recvs per directed channel across the whole
/// schedule. Reports unmatched ops and payload mismatches; returns the
/// matched pairs for deadlock analysis and dataflow.
fn match_channels(steps: &[(CommPhase, Vec<RankOp>)], sink: &mut Sink) -> (Vec<Pair>, bool) {
    use std::collections::HashMap;
    // channel (src, dst) -> queues of (step, op index)
    let mut sends: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    let mut recvs: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for (si, (_, ops)) in steps.iter().enumerate() {
        for (oi, op) in ops.iter().enumerate() {
            if op.is_send {
                sends.entry((op.rank, op.peer)).or_default().push((si, oi));
            } else {
                recvs.entry((op.peer, op.rank)).or_default().push((si, oi));
            }
        }
    }
    let mut pairs = Vec::new();
    let mut complete = true;
    let mut channels: Vec<(usize, usize)> = sends.keys().chain(recvs.keys()).copied().collect();
    channels.sort_unstable();
    channels.dedup();
    for ch in channels {
        let empty = Vec::new();
        let ss = sends.get(&ch).unwrap_or(&empty);
        let rs = recvs.get(&ch).unwrap_or(&empty);
        for i in 0..ss.len().max(rs.len()) {
            match (ss.get(i), rs.get(i)) {
                (Some(&s), Some(&r)) => {
                    let sop = &steps[s.0].1[s.1];
                    let rop = &steps[r.0].1[r.1];
                    if sop.chunks != rop.chunks || sop.reduce != rop.reduce {
                        sink.push(CommViolation::PayloadMismatch {
                            step: r.0,
                            rank: rop.rank,
                            peer: rop.peer,
                            detail: format!(
                                "send carries chunks {}..{} (reduce={}), recv expects {}..{} \
                                 (reduce={})",
                                sop.chunks.lo,
                                sop.chunks.hi,
                                sop.reduce,
                                rop.chunks.lo,
                                rop.chunks.hi,
                                rop.reduce
                            ),
                        });
                        complete = false;
                    }
                    pairs.push(Pair { send: s, recv: r });
                }
                (Some(&s), None) => {
                    let sop = &steps[s.0].1[s.1];
                    sink.push(CommViolation::UnmatchedSend {
                        step: s.0,
                        rank: sop.rank,
                        peer: sop.peer,
                    });
                    complete = false;
                }
                (None, Some(&r)) => {
                    let rop = &steps[r.0].1[r.1];
                    sink.push(CommViolation::UnmatchedRecv {
                        step: r.0,
                        rank: rop.rank,
                        peer: rop.peer,
                    });
                    complete = false;
                }
                (None, None) => unreachable!(),
            }
        }
    }
    (pairs, complete)
}

/// Rendezvous deadlock detection. Groups = (rank, step) with at least
/// one op; a group completes when the rank's previous group is done and
/// every one of its matched partners has *posted* (partner's previous
/// group done). A Kahn pass over these dependencies either completes
/// every group or exposes the ranks stuck on a wait-for cycle.
fn check_deadlock(steps: &[(CommPhase, Vec<RankOp>)], pairs: &[Pair], sink: &mut Sink) {
    use std::collections::HashMap;
    // Identify active groups and each rank's ordered step list.
    let mut group_id: HashMap<(usize, usize), usize> = HashMap::new();
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut rank_steps: HashMap<usize, Vec<usize>> = HashMap::new();
    for (si, (_, ops)) in steps.iter().enumerate() {
        for op in ops {
            if let std::collections::hash_map::Entry::Vacant(e) = group_id.entry((op.rank, si)) {
                e.insert(groups.len());
                groups.push((op.rank, si));
                rank_steps.entry(op.rank).or_default().push(si);
            }
        }
    }
    // Predecessor group of (rank, step): same rank's previous active step.
    let pred = |rank: usize, step: usize| -> Option<usize> {
        let ss = &rank_steps[&rank];
        let idx = ss.partition_point(|&s| s < step);
        if idx == 0 {
            None
        } else {
            Some(group_id[&(rank, ss[idx - 1])])
        }
    };
    // Dependency edges u -> v: u must complete before v can.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
    let mut indeg: Vec<usize> = vec![0; groups.len()];
    let add_edge = |adj: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, u: usize, v: usize| {
        adj[u].push(v);
        indeg[v] += 1;
    };
    for (gid, &(rank, step)) in groups.iter().enumerate() {
        if let Some(p) = pred(rank, step) {
            add_edge(&mut adj, &mut indeg, p, gid);
        }
    }
    for pair in pairs {
        let (ss, so) = pair.send;
        let (rs, ro) = pair.recv;
        let sg = group_id[&(steps[ss].1[so].rank, ss)];
        let rg = group_id[&(steps[rs].1[ro].rank, rs)];
        // The send completes once the recv is posted, and vice versa.
        let (s_rank, s_step) = groups[sg];
        let (r_rank, r_step) = groups[rg];
        if let Some(p) = pred(r_rank, r_step) {
            if p != sg {
                add_edge(&mut adj, &mut indeg, p, sg);
            }
        }
        if let Some(p) = pred(s_rank, s_step) {
            if p != rg {
                add_edge(&mut adj, &mut indeg, p, rg);
            }
        }
    }
    // Kahn.
    let mut queue: Vec<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut done = 0usize;
    while let Some(u) = queue.pop() {
        done += 1;
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    if done < groups.len() {
        let stuck: Vec<(usize, usize)> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .take(8)
            .map(|(i, _)| groups[i])
            .collect();
        sink.push(CommViolation::WaitForCycle { stuck });
    }
}

/// Contribution-count dataflow: `cnt[rank][chunk][contributor]` counts
/// how many times `contributor`'s gradient for `chunk` has been folded
/// into `rank`'s accumulator. Payloads snapshot the sender's state at
/// the *send* step (concurrent sendrecv), folds add, gather copies
/// replace.
fn check_dataflow(
    spec: &CommSpec,
    steps: &[(CommPhase, Vec<RankOp>)],
    pairs: &[Pair],
    sink: &mut Sink,
) {
    let p = spec.nodes();
    let chunks = spec.num_chunks();
    let idx = |rank: usize, chunk: usize| (rank * chunks + chunk) * p;
    let mut cnt = vec![0u32; p * chunks * p];
    for r in 0..p {
        for c in 0..chunks {
            cnt[idx(r, c) + r] = 1;
        }
    }

    // Index pairs by send step and recv step.
    let mut sends_at: Vec<Vec<usize>> = vec![Vec::new(); steps.len()];
    let mut recvs_at: Vec<Vec<usize>> = vec![Vec::new(); steps.len()];
    for (pi, pair) in pairs.iter().enumerate() {
        sends_at[pair.send.0].push(pi);
        recvs_at[pair.recv.0].push(pi);
    }
    let mut payloads: Vec<Option<Vec<u32>>> = (0..pairs.len()).map(|_| None).collect();

    let last_reduce = steps
        .iter()
        .rposition(|(phase, _)| *phase == CommPhase::Reduce);

    let mut landed: Vec<u32> = vec![0; p * chunks];
    for (si, _) in steps.iter().enumerate() {
        // Snapshot payloads leaving this step before any delivery.
        for &pi in &sends_at[si] {
            let pair = &pairs[pi];
            let op = &steps[pair.send.0].1[pair.send.1];
            let span = op.chunks;
            let mut buf = Vec::with_capacity(span.len() * p);
            for c in span.lo..span.hi.min(chunks) {
                buf.extend_from_slice(&cnt[idx(op.rank, c)..idx(op.rank, c) + p]);
            }
            payloads[pi] = Some(buf);
        }
        // Deliver everything received this step.
        for slot in landed.iter_mut() {
            *slot = 0;
        }
        for &pi in &recvs_at[si] {
            let pair = &pairs[pi];
            let rop = &steps[pair.recv.0].1[pair.recv.1];
            let Some(buf) = payloads[pi].take() else {
                continue; // payload never snapshot (send after recv step)
            };
            let span = steps[pair.send.0].1[pair.send.1].chunks;
            for (ci, c) in (span.lo..span.hi.min(chunks)).enumerate() {
                landed[rop.rank * chunks + c] += 1;
                if landed[rop.rank * chunks + c] == 2 {
                    sink.push(CommViolation::NondeterministicFold {
                        step: si,
                        rank: rop.rank,
                        chunk: c,
                    });
                }
                let base = idx(rop.rank, c);
                if rop.reduce {
                    for q in 0..p {
                        cnt[base + q] += buf[ci * p + q];
                    }
                } else {
                    cnt[base..base + p].copy_from_slice(&buf[ci * p..(ci + 1) * p]);
                }
            }
            if sink.full() {
                return;
            }
        }
        // At the reduce/gather boundary, owners must hold every
        // contribution exactly once.
        if Some(si) == last_reduce {
            for c in 0..chunks {
                let owner = (0..p).find(|&r| spec.owned_after_reduce(r).contains(c));
                let Some(owner) = owner else { continue };
                let base = idx(owner, c);
                for q in 0..p {
                    if cnt[base + q] != 1 {
                        sink.push(CommViolation::ReduceCountMismatch {
                            chunk: c,
                            contributor: q,
                            count: cnt[base + q],
                        });
                        if sink.full() {
                            return;
                        }
                    }
                }
            }
        }
    }

    // Final: every rank holds every chunk fully reduced, exactly once.
    for r in 0..p {
        for c in 0..chunks {
            let base = idx(r, c);
            for q in 0..p {
                if cnt[base + q] != 1 {
                    sink.push(CommViolation::IncompleteGather {
                        rank: r,
                        chunk: c,
                        contributor: q,
                        count: cnt[base + q],
                    });
                    if sink.full() {
                        return;
                    }
                }
            }
        }
    }
}

/// Check a materialized schedule (exact mode). This is the entry point
/// the hazard-injection tests use after mutating `sched.steps`;
/// [`check_spec`] routes small configurations here automatically.
pub fn check_schedule(sched: &CommSchedule) -> CommOutcome {
    let spec = &sched.spec;
    let mut sink = Sink::new();
    check_geometry(spec, &mut sink);
    check_canonical_order(&sched.steps, &mut sink);
    let (pairs, complete) = match_channels(&sched.steps, &mut sink);
    check_deadlock(&sched.steps, &pairs, &mut sink);
    // Dataflow semantics are only meaningful when every op matched and
    // nothing deadlocks; structural violations are already reported.
    let deadlocked = sink
        .violations
        .iter()
        .any(|v| matches!(v, CommViolation::WaitForCycle { .. }));
    if complete && !deadlocked {
        check_dataflow(spec, &sched.steps, &pairs, &mut sink);
    }
    CommOutcome {
        algo: spec.algo,
        nodes: spec.nodes(),
        supernode_size: spec.topo.supernode_size,
        mode: CheckMode::Exact,
        steps: sched.steps.len(),
        ops: sched.steps.iter().map(|(_, ops)| ops.len()).sum(),
        violations: sink.violations,
    }
}

// ---------------------------------------------------------------------
// Scale mode
// ---------------------------------------------------------------------

fn expect_uniform(spec: &CommSpec, step: usize) -> Option<UniformStep> {
    match spec.step_descriptor(step) {
        StepOps::Uniform(u) => Some(u),
        StepOps::Explicit { .. } => None,
    }
}

/// Ring at scale: O(1) per step over the uniform descriptors.
///
/// With `peer_delta == 1` each rank sends exactly one chunk and receives
/// exactly one per step, and the map chunk -> receiver is a bijection —
/// matching is perfect by construction, so the checker's work is the
/// *semantic* layer: the reduce shifts must decrement by exactly 1 each
/// step (the pipeline hand-off `receiver(c, k) == sender(c, k+1)`), the
/// final fold must land on the declared owner, and the gather must walk
/// every chunk through the remaining `p - 1` ranks exactly once.
fn check_ring_scale(spec: &CommSpec, sink: &mut Sink) -> usize {
    let p = spec.nodes();
    let steps = spec.num_steps();
    let half = p - 1;
    let mut prev_shift: Option<usize> = None;
    for k in 0..steps {
        let Some(u) = expect_uniform(spec, k) else {
            sink.push(CommViolation::PhaseViolation {
                step: k,
                detail: "ring step is not uniform".into(),
            });
            return 0;
        };
        let reduce_phase = k < half;
        if u.reduce != reduce_phase
            || (u.phase == CommPhase::Reduce) != reduce_phase
            || u.peer_delta != 1
        {
            sink.push(CommViolation::PhaseViolation {
                step: k,
                detail: format!(
                    "descriptor out of phase: peer_delta={} reduce={} in {} half",
                    u.peer_delta,
                    u.reduce,
                    if reduce_phase { "reduce" } else { "gather" }
                ),
            });
        }
        match (k, prev_shift) {
            // Reduce starts with every rank sending its own chunk.
            (0, _) => {
                if u.chunk_shift != 0 {
                    sink.push(CommViolation::PhaseViolation {
                        step: 0,
                        detail: format!("first reduce shift is {} (expected 0)", u.chunk_shift),
                    });
                }
            }
            (_, Some(prev)) if k != half => {
                // Pipeline hand-off: this step's sender of chunk c must
                // be the rank that folded (or copied) c last step, i.e.
                // shift decrements by 1 mod p.
                if (prev + p - 1) % p != u.chunk_shift {
                    sink.push(CommViolation::PhaseViolation {
                        step: k,
                        detail: format!(
                            "pipeline hand-off broken: shift {} after {} (expected {})",
                            u.chunk_shift,
                            prev,
                            (prev + p - 1) % p
                        ),
                    });
                }
            }
            (_, Some(prev)) => {
                // First gather step: sender of chunk c must be its
                // post-reduce owner (c - 1) mod p, i.e. shift 1; and the
                // last reduce fold must have landed on that owner, i.e.
                // the last reduce shift was 2.
                if prev != 2 % p || u.chunk_shift != 1 % p {
                    sink.push(CommViolation::PhaseViolation {
                        step: k,
                        detail: format!(
                            "gather does not start at the reduce owner \
                             (last reduce shift {prev}, first gather shift {})",
                            u.chunk_shift
                        ),
                    });
                }
            }
            (_, None) => unreachable!("prev_shift set from step 0"),
        }
        prev_shift = Some(u.chunk_shift);
    }
    // p - 1 reduce steps, each folding every chunk exactly once =>
    // exactly p - 1 folds per chunk; p - 1 gather steps walking each
    // chunk one rank forward per step => every non-owner receives the
    // final value exactly once. Both facts follow from the per-step
    // checks above; record the counts as a final sanity gate.
    if steps != 2 * (p - 1) {
        sink.push(CommViolation::PhaseViolation {
            step: steps,
            detail: format!("ring has {steps} steps (expected {})", 2 * (p - 1)),
        });
    }

    // Cross-validate the uniform descriptors against full expansion on a
    // few sample steps (first, last reduce, first gather, last).
    let mut ops = Vec::new();
    let mut examined = 2 * steps; // descriptor reads
    for &k in &[0, half - 1, half, steps - 1] {
        ops.clear();
        spec.expand_step_into(k, &mut ops);
        examined += ops.len();
        let u = expect_uniform(spec, k).expect("checked uniform above");
        let mut bad = false;
        for (i, op) in ops.iter().enumerate() {
            let r = i / 2;
            let ok = if op.is_send {
                op.rank == r
                    && op.peer == (r + 1) % p
                    && op.chunks
                        == ChunkSpan::new((r + u.chunk_shift) % p, (r + u.chunk_shift) % p + 1)
                    && op.reduce == u.reduce
            } else {
                op.rank == r && op.peer == (r + p - 1) % p && op.reduce == u.reduce
            };
            if !ok {
                bad = true;
                break;
            }
        }
        if bad || ops.len() != 2 * p {
            sink.push(CommViolation::PhaseViolation {
                step: k,
                detail: "uniform descriptor disagrees with expanded ops".into(),
            });
        }
    }
    examined
}

/// RHD at scale: O(p) per step via interval telescoping. Each rank's
/// working interval starts at the whole chunk space; every reduce step
/// must split it exactly into the sent half and the kept (received)
/// half, with the partner working the same block from the other side;
/// the gather runs the merge in reverse with disjoint adjacent halves.
/// Telescoping + perfect pairing is the inductive proof that every
/// contribution is folded exactly once and gathered exactly once.
fn check_rhd_scale(spec: &CommSpec, sink: &mut Sink) -> usize {
    let p = spec.nodes();
    let steps = spec.num_steps();
    let levels = steps / 2;
    let mut work: Vec<ChunkSpan> = (0..p).map(|_| ChunkSpan::new(0, p)).collect();
    let mut ops: Vec<RankOp> = Vec::with_capacity(2 * p);
    let mut examined = 0usize;
    for step in 0..steps {
        ops.clear();
        let phase = spec.expand_step_into(step, &mut ops);
        examined += ops.len();
        let reduce_phase = step < levels;
        if (phase == CommPhase::Reduce) != reduce_phase {
            sink.push(CommViolation::PhaseViolation {
                step,
                detail: "phase tag out of order".into(),
            });
        }
        if ops.len() != 2 * p {
            sink.push(CommViolation::PhaseViolation {
                step,
                detail: format!(
                    "{} ops (expected {} — one sendrecv per rank)",
                    ops.len(),
                    2 * p
                ),
            });
            return examined;
        }
        for r in 0..p {
            let send = &ops[2 * r];
            let recv = &ops[2 * r + 1];
            if !(send.is_send && !recv.is_send && send.rank == r && recv.rank == r) {
                sink.push(CommViolation::NonCanonicalOrder { step, index: 2 * r });
                return examined;
            }
            let q = send.peer;
            if q >= p || recv.peer != q || q == r {
                sink.push(CommViolation::UnmatchedSend {
                    step,
                    rank: r,
                    peer: q,
                });
                continue;
            }
            // Pairing: my send must be my partner's recv, symmetric.
            let partner_recv = &ops[2 * q + 1];
            let partner_send = &ops[2 * q];
            if partner_send.peer != r
                || partner_recv.chunks != send.chunks
                || partner_recv.reduce != send.reduce
            {
                sink.push(CommViolation::PayloadMismatch {
                    step,
                    rank: q,
                    peer: r,
                    detail: format!(
                        "send {}..{} does not mirror partner recv {}..{}",
                        send.chunks.lo,
                        send.chunks.hi,
                        partner_recv.chunks.lo,
                        partner_recv.chunks.hi
                    ),
                });
                continue;
            }
            if reduce_phase {
                // send ∪ recv must partition the working interval, and
                // the partner must be working the same block.
                let w = work[r];
                let split_ok = (send.chunks.hi == recv.chunks.lo
                    && send.chunks.lo == w.lo
                    && recv.chunks.hi == w.hi)
                    || (recv.chunks.hi == send.chunks.lo
                        && recv.chunks.lo == w.lo
                        && send.chunks.hi == w.hi);
                if !split_ok || work[q] != w || !send.reduce {
                    sink.push(CommViolation::PhaseViolation {
                        step,
                        detail: format!(
                            "rank {r}: send {}..{} / keep {}..{} do not split working \
                             interval {}..{} against partner {q}",
                            send.chunks.lo,
                            send.chunks.hi,
                            recv.chunks.lo,
                            recv.chunks.hi,
                            w.lo,
                            w.hi
                        ),
                    });
                }
            } else {
                // Gather: send what you hold, receive the adjacent
                // disjoint block; union is contiguous.
                let h = work[r];
                let merge_ok = send.chunks == h
                    && !send.reduce
                    && (recv.chunks.lo == h.hi || recv.chunks.hi == h.lo)
                    && !recv.chunks.is_empty();
                if !merge_ok {
                    sink.push(CommViolation::PhaseViolation {
                        step,
                        detail: format!(
                            "rank {r}: gather send {}..{} / recv {}..{} do not extend held \
                             interval {}..{}",
                            send.chunks.lo,
                            send.chunks.hi,
                            recv.chunks.lo,
                            recv.chunks.hi,
                            h.lo,
                            h.hi
                        ),
                    });
                }
            }
            if sink.full() {
                return examined;
            }
        }
        // Commit interval updates after the whole step is validated.
        for r in 0..p {
            let recv = &ops[2 * r + 1];
            work[r] = if reduce_phase {
                recv.chunks
            } else {
                ChunkSpan::new(
                    recv.chunks.lo.min(work[r].lo),
                    recv.chunks.hi.max(work[r].hi),
                )
            };
        }
        if step + 1 == levels {
            for (r, w) in work.iter().enumerate() {
                if *w != spec.owned_after_reduce(r) {
                    sink.push(CommViolation::OwnershipNotPartition {
                        chunk: w.lo,
                        owners: 0,
                    });
                    break;
                }
            }
        }
    }
    for (r, w) in work.iter().enumerate() {
        if *w != ChunkSpan::new(0, p) {
            sink.push(CommViolation::IncompleteGather {
                rank: r,
                chunk: if w.lo > 0 { 0 } else { w.hi },
                contributor: r,
                count: 0,
            });
            break;
        }
    }
    examined
}

/// Binomial tree at scale: exactly-once counting over the sparse op
/// lists. Every non-root rank must forward its accumulator exactly once
/// during the reduce, strictly toward rank 0, and never fold after
/// forwarding; the broadcast mirrors it (receive exactly once, from a
/// rank that already holds the result).
fn check_binomial_scale(spec: &CommSpec, sink: &mut Sink) -> usize {
    let p = spec.nodes();
    let steps = spec.num_steps();
    let levels = steps / 2;
    let mut forwarded: Vec<bool> = vec![false; p];
    let mut has_result: Vec<bool> = vec![false; p];
    has_result[0] = true;
    let mut ops: Vec<RankOp> = Vec::new();
    let mut examined = 0usize;
    let whole = ChunkSpan::new(0, 1);
    for step in 0..steps {
        ops.clear();
        let phase = spec.expand_step_into(step, &mut ops);
        examined += ops.len();
        let reduce_phase = step < levels;
        if (phase == CommPhase::Reduce) != reduce_phase {
            sink.push(CommViolation::PhaseViolation {
                step,
                detail: "phase tag out of order".into(),
            });
        }
        // Index this step's ops by rank for within-step matching.
        let mut send_of: std::collections::HashMap<usize, &RankOp> = Default::default();
        let mut recv_of: std::collections::HashMap<usize, &RankOp> = Default::default();
        for op in &ops {
            let table = if op.is_send {
                &mut send_of
            } else {
                &mut recv_of
            };
            if table.insert(op.rank, op).is_some() {
                sink.push(CommViolation::NonCanonicalOrder { step, index: 0 });
            }
            if op.chunks != whole || op.reduce != reduce_phase {
                sink.push(CommViolation::PayloadMismatch {
                    step,
                    rank: op.rank,
                    peer: op.peer,
                    detail: "binomial op must carry the whole segment".into(),
                });
            }
        }
        for (r, send) in &send_of {
            match recv_of.get(&send.peer) {
                Some(recv) if recv.peer == *r => {}
                _ => sink.push(CommViolation::UnmatchedSend {
                    step,
                    rank: *r,
                    peer: send.peer,
                }),
            }
        }
        for (r, recv) in &recv_of {
            if send_of.get(&recv.peer).map(|s| s.peer) != Some(*r) {
                sink.push(CommViolation::UnmatchedRecv {
                    step,
                    rank: *r,
                    peer: recv.peer,
                });
            }
        }
        if reduce_phase {
            for (r, send) in &send_of {
                if *r == 0 || send.peer >= *r {
                    sink.push(CommViolation::PhaseViolation {
                        step,
                        detail: format!(
                            "reduce send {r} -> {} moves away from the root",
                            send.peer
                        ),
                    });
                }
                if forwarded[*r] {
                    sink.push(CommViolation::ReduceCountMismatch {
                        chunk: 0,
                        contributor: *r,
                        count: 2,
                    });
                }
                forwarded[*r] = true;
            }
            for r in recv_of.keys() {
                if forwarded[*r] {
                    // Folding into an accumulator that was already
                    // forwarded: those contributions are lost upstream.
                    sink.push(CommViolation::PhaseViolation {
                        step,
                        detail: format!("rank {r} folds after forwarding its accumulator"),
                    });
                }
            }
        } else {
            for r in send_of.keys() {
                if !has_result[*r] {
                    sink.push(CommViolation::PhaseViolation {
                        step,
                        detail: format!("rank {r} broadcasts a result it does not hold"),
                    });
                }
            }
            for r in recv_of.keys() {
                if has_result[*r] {
                    sink.push(CommViolation::IncompleteGather {
                        rank: *r,
                        chunk: 0,
                        contributor: *r,
                        count: 2,
                    });
                }
                has_result[*r] = true;
            }
        }
        if sink.full() {
            return examined;
        }
    }
    // Every non-root forwarded exactly once => the parent edges form an
    // in-tree on p nodes rooted at 0 (parents are strictly smaller, so
    // no cycles) and every contribution reaches the root exactly once.
    for (r, f) in forwarded.iter().enumerate().skip(1) {
        if !f {
            sink.push(CommViolation::ReduceCountMismatch {
                chunk: 0,
                contributor: r,
                count: 0,
            });
        }
    }
    for (r, h) in has_result.iter().enumerate() {
        if !h {
            sink.push(CommViolation::IncompleteGather {
                rank: r,
                chunk: 0,
                contributor: r,
                count: 0,
            });
        }
    }
    examined
}

/// Verify a collective configuration. Small configurations are
/// materialized and checked exactly; large ones are checked with the
/// algebraic scale-mode invariants (O(steps) for the ring, O(p log p)
/// for the trees), keeping 40,960-rank verification well under the CI
/// wall-clock budget.
pub fn check_spec(spec: &CommSpec) -> CommOutcome {
    if spec.nodes() <= EXACT_MAX_RANKS {
        return check_schedule(&spec.extract());
    }
    let mut sink = Sink::new();
    check_geometry(spec, &mut sink);
    let ops = match spec.algo {
        Algorithm::Ring => check_ring_scale(spec, &mut sink),
        Algorithm::RecursiveHalvingDoubling => check_rhd_scale(spec, &mut sink),
        Algorithm::Binomial => check_binomial_scale(spec, &mut sink),
    };
    CommOutcome {
        algo: spec.algo,
        nodes: spec.nodes(),
        supernode_size: spec.topo.supernode_size,
        mode: CheckMode::Scale,
        steps: spec.num_steps(),
        ops,
        violations: sink.violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swnet::{RankMap, Topology};

    fn spec(algo: Algorithm, p: usize, ss: usize) -> CommSpec {
        CommSpec::monolithic(
            Topology::with_supernode(p, ss),
            RankMap::RoundRobin,
            algo,
            4096,
        )
        .unwrap()
    }

    #[test]
    fn small_configurations_verify_clean_in_exact_mode() {
        for (algo, ps) in [
            (Algorithm::RecursiveHalvingDoubling, vec![1usize, 2, 8, 32]),
            (Algorithm::Ring, vec![1, 2, 3, 5, 12, 33]),
            (Algorithm::Binomial, vec![2, 4, 16, 64]),
        ] {
            for p in ps {
                let s = spec(algo, p, (p / 2).max(1));
                let out = check_spec(&s);
                assert_eq!(out.mode, CheckMode::Exact);
                assert!(out.is_clean(), "{algo:?} p={p}: {:?}", out.violations);
            }
        }
    }

    #[test]
    fn segmented_schedules_verify_clean() {
        for algo in [
            Algorithm::RecursiveHalvingDoubling,
            Algorithm::Ring,
            Algorithm::Binomial,
        ] {
            let s = CommSpec::new(
                Topology::with_supernode(8, 3),
                RankMap::RoundRobin,
                algo,
                1013,
                37..402,
            )
            .unwrap();
            let out = check_spec(&s);
            assert!(out.is_clean(), "{algo:?}: {:?}", out.violations);
        }
    }

    #[test]
    fn scale_mode_agrees_with_exact_mode_on_overlap_sizes() {
        // Sizes small enough to materialize but large enough to run the
        // scale checks meaningfully: both verdicts must be clean.
        for algo in [
            Algorithm::RecursiveHalvingDoubling,
            Algorithm::Ring,
            Algorithm::Binomial,
        ] {
            let p = if algo == Algorithm::Ring { 96 } else { 64 };
            let s = spec(algo, p, 48);
            let exact = check_schedule(&s.extract());
            assert!(exact.is_clean(), "{algo:?} exact: {:?}", exact.violations);
            let mut sink = Sink::new();
            check_geometry(&s, &mut sink);
            match algo {
                Algorithm::Ring => check_ring_scale(&s, &mut sink),
                Algorithm::RecursiveHalvingDoubling => check_rhd_scale(&s, &mut sink),
                Algorithm::Binomial => check_binomial_scale(&s, &mut sink),
            };
            assert!(
                sink.violations.is_empty(),
                "{algo:?} scale: {:?}",
                sink.violations
            );
        }
    }

    #[test]
    fn ring_verifies_at_full_machine_scale() {
        // The headline configuration: 40,960 ranks (the TaihuLight
        // full-machine scale) with a partial trailing supernode.
        let s = spec(Algorithm::Ring, 40_960, 384);
        let out = check_spec(&s);
        assert_eq!(out.mode, CheckMode::Scale);
        assert!(out.is_clean(), "{:?}", out.violations);
        assert_eq!(out.steps, 2 * (40_960 - 1));
    }

    #[test]
    fn trees_verify_beyond_full_machine_scale() {
        for algo in [Algorithm::RecursiveHalvingDoubling, Algorithm::Binomial] {
            let s = spec(algo, 65_536, 256);
            let out = check_spec(&s);
            assert_eq!(out.mode, CheckMode::Scale);
            assert!(out.is_clean(), "{algo:?}: {:?}", out.violations);
        }
    }

    #[test]
    fn fingerprints_are_deterministic_and_distinguish_configs() {
        let a = schedule_fingerprint(&spec(Algorithm::Ring, 16, 8));
        let b = schedule_fingerprint(&spec(Algorithm::Ring, 16, 8));
        assert_eq!(a, b, "extraction must be a pure function of the spec");
        let c = schedule_fingerprint(&spec(Algorithm::RecursiveHalvingDoubling, 16, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn phantom_topology_is_reported() {
        // A round-robin map over a topology whose supernode arithmetic
        // is valid but whose spec was built for a different node count
        // cannot happen through the typed constructors; instead check
        // the checker surfaces segment-level geometry breaks.
        let s = CommSpec::new(
            Topology::with_supernode(4, 2),
            RankMap::RoundRobin,
            Algorithm::Ring,
            100,
            0..0,
        )
        .unwrap();
        // Degenerate empty segment is *valid*: all chunks empty.
        let out = check_spec(&s);
        assert!(out.is_clean(), "{:?}", out.violations);
    }
}
