//! # swcheck::graph — net-definition lint over the model zoo
//!
//! A thin driver over [`swcaffe_core::lint`]: the lint itself lives in
//! the core crate so `Net::from_def*` and `swserve`'s graph optimizer
//! can run it as a typed pre-flight; this module packages it as a
//! standalone checker pass with the same report conventions as the
//! kernel sanitizer, and sweeps the complete model zoo — every paper
//! network at its Table III batch size, the tiny test nets, *and* the
//! post-fusion definitions `swserve::optimize` emits — as a regression
//! gate: all of them must lint clean.

use swcaffe_core::models;
use swcaffe_core::netdef::NetDef;

pub use swcaffe_core::lint::{infer_shapes, lint_def, GraphViolation};

/// Result of linting one net definition.
#[derive(Debug, Clone)]
pub struct GraphOutcome {
    /// Case label (`<net>` for raw definitions, `<net>.optimized` for
    /// the optimizer's post-fusion output).
    pub name: String,
    pub layers: usize,
    pub violations: Vec<GraphViolation>,
    /// Set when the definition could not even be produced (e.g. the
    /// optimizer rejected it); a failure independent of lint findings.
    pub error: Option<String>,
}

impl GraphOutcome {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.error.is_none()
    }
}

/// Lint one definition.
pub fn check_net_def(def: &NetDef) -> GraphOutcome {
    GraphOutcome {
        name: def.name.clone(),
        layers: def.layers.len(),
        violations: lint_def(def),
        error: None,
    }
}

/// The complete zoo at the paper's batch sizes plus the tiny test nets.
pub fn zoo_defs() -> Vec<NetDef> {
    vec![
        models::alexnet_bn(8),
        models::vgg16(4),
        models::vgg19(4),
        models::resnet50(4),
        models::googlenet(8),
        models::tiny_cnn(2, 10),
        models::tiny_dropout_cnn(2, 10),
    ]
}

/// Sweep the model zoo: every raw definition and every post-fusion
/// optimized definition must lint clean. Any violation here means a
/// shipped network or an optimizer pass regressed.
pub fn check_model_zoo() -> Vec<GraphOutcome> {
    let mut outcomes = Vec::new();
    for def in zoo_defs() {
        outcomes.push(check_net_def(&def));
        match swserve::optimize(&def) {
            Ok(frozen) => {
                let mut out = check_net_def(&frozen.def);
                out.name = format!("{}.optimized", def.name);
                outcomes.push(out);
            }
            Err(e) => outcomes.push(GraphOutcome {
                name: format!("{}.optimized", def.name),
                layers: 0,
                violations: Vec::new(),
                error: Some(e),
            }),
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_whole_zoo_and_its_optimized_forms_lint_clean() {
        for out in check_model_zoo() {
            assert!(
                out.is_clean(),
                "{}: error={:?} violations={:?}",
                out.name,
                out.error,
                out.violations
            );
        }
    }
}
