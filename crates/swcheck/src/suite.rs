//! The dynamic sanitizer suite: drive the whole swdnn kernel zoo
//! functionally on a recording core group, then replay the traces
//! through the happens-before checker.
//!
//! The driver is deliberately reusable with a *non*-recording core
//! group so the `swcheck` binary can measure sanitizer overhead by
//! running the identical workload twice.

use sw26010::{CheckMode, CoreGroup, ExecMode, KernelTrace};
use swdnn::shapes::PoolMethod;
use swdnn::transform::TransShape;
use swdnn::{
    bn, conv_explicit, conv_implicit, elementwise, gemm, im2col, lrn, pool, softmax, transform,
    ConvShape, GemmDims, PoolShape, Trans,
};

use crate::sanitize::{check_traces, Violation};

/// What one sanitizer-suite run observed.
#[derive(Debug, Default)]
pub struct SuiteOutcome {
    /// Distinct kernel names traced, in first-launch order.
    pub kernels: Vec<String>,
    /// Total traced launches.
    pub launches: usize,
    /// Total recorded events across all CPEs of all launches.
    pub events: usize,
    pub violations: Vec<Violation>,
}

impl SuiteOutcome {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Deterministic fill in roughly `[-1, 1)` (splitmix64-derived, no
/// external randomness so traced and untraced runs see identical data).
pub fn fill(seed: u64, buf: &mut [f32]) {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    for v in buf.iter_mut() {
        let mut z = state;
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        *v = ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0;
    }
}

fn vec_filled(seed: u64, len: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; len];
    fill(seed, &mut v);
    v
}

fn drive_gemm(cg: &mut CoreGroup) {
    let dims = GemmDims::new(40, 36, 24);
    let a = vec_filled(1, dims.m * dims.k);
    let b = vec_filled(2, dims.k * dims.n);
    let mut c = vec_filled(3, dims.m * dims.n);
    gemm::gemm(
        cg,
        dims,
        Trans::No,
        Trans::No,
        0.5,
        Some(gemm::GemmOperands {
            a: &a,
            b: &b,
            c: &mut c,
        }),
    );
    let mut c2 = vec_filled(3, dims.m * dims.n);
    gemm::gemm_double_buffered(
        cg,
        dims,
        Trans::No,
        Trans::No,
        0.5,
        Some(gemm::GemmOperands {
            a: &a,
            b: &b,
            c: &mut c2,
        }),
    );
}

fn drive_conv_explicit(cg: &mut CoreGroup) {
    let shape = ConvShape {
        batch: 2,
        in_c: 3,
        in_h: 8,
        in_w: 8,
        out_c: 8,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let input = vec_filled(10, shape.input_len());
    let weights = vec_filled(11, shape.weight_len());
    let mut output = vec![0.0f32; shape.output_len()];
    conv_explicit::forward(
        cg,
        &shape,
        Some(conv_explicit::ConvFwdOperands {
            input: &input,
            weights: &weights,
            output: &mut output,
        }),
    );
    let out_grad = vec_filled(12, shape.output_len());
    let mut in_grad = vec![0.0f32; shape.input_len()];
    let mut w_grad = vec![0.0f32; shape.weight_len()];
    conv_explicit::backward(
        cg,
        &shape,
        Some(conv_explicit::ConvBwdOperands {
            input: &input,
            weights: &weights,
            out_grad: &out_grad,
            in_grad: Some(&mut in_grad),
            w_grad: Some(&mut w_grad),
        }),
    );
    // The explicit path's building blocks, standalone (one image).
    let image = vec_filled(13, shape.in_c * shape.in_h * shape.in_w);
    let mut cols = vec![0.0f32; shape.col_rows() * shape.col_cols()];
    im2col::im2col(
        cg,
        &shape,
        Some(im2col::Im2colOperands {
            image: &image,
            cols: &mut cols,
        }),
    );
    let mut image_grad = vec![0.0f32; image.len()];
    im2col::col2im(
        cg,
        &shape,
        Some(im2col::Col2imOperands {
            cols: &cols,
            image: &mut image_grad,
        }),
    );
}

fn drive_conv_implicit(cg: &mut CoreGroup) {
    // The implicit path only engages from 128 channels on each side.
    let shape = ConvShape {
        batch: 4,
        in_c: 128,
        in_h: 6,
        in_w: 6,
        out_c: 128,
        k: 3,
        stride: 1,
        pad: 1,
    };
    assert!(conv_implicit::supports_forward(&shape));
    assert!(conv_implicit::supports_backward(&shape));
    let input = vec_filled(20, shape.input_len());
    let weights = vec_filled(21, shape.weight_len());
    let mut output = vec![0.0f32; shape.output_len()];
    conv_implicit::forward(
        cg,
        &shape,
        Some(conv_implicit::ImplicitFwdOperands {
            input: &input,
            weights: &weights,
            output: &mut output,
        }),
    );
    let out_grad = vec_filled(22, shape.output_len());
    let mut in_grad = vec![0.0f32; shape.input_len()];
    let mut w_grad = vec![0.0f32; shape.weight_len()];
    conv_implicit::backward(
        cg,
        &shape,
        Some(conv_implicit::ImplicitBwdOperands {
            input: &input,
            weights: &weights,
            out_grad: &out_grad,
            in_grad: Some(&mut in_grad),
            w_grad: Some(&mut w_grad),
        }),
    );
}

fn drive_pool(cg: &mut CoreGroup) {
    for method in [PoolMethod::Max, PoolMethod::Average] {
        let shape = PoolShape {
            batch: 2,
            channels: 3,
            in_h: 8,
            in_w: 8,
            k: 2,
            stride: 2,
            pad: 0,
            method,
        };
        let input = vec_filled(30, shape.input_len());
        let mut output = vec![0.0f32; shape.output_len()];
        let mut argmax = vec![0.0f32; shape.output_len()];
        let is_max = matches!(method, PoolMethod::Max);
        pool::forward(
            cg,
            &shape,
            Some(pool::PoolFwdOperands {
                input: &input,
                output: &mut output,
                argmax: is_max.then_some(&mut argmax[..]),
            }),
        );
        let out_grad = vec_filled(31, shape.output_len());
        let mut in_grad = vec![0.0f32; shape.input_len()];
        pool::backward(
            cg,
            &shape,
            Some(pool::PoolBwdOperands {
                out_grad: &out_grad,
                argmax: is_max.then_some(&argmax[..]),
                in_grad: &mut in_grad,
            }),
        );
    }
}

fn drive_lrn(cg: &mut CoreGroup) {
    let (batch, channels, h, w) = (2, 8, 6, 6);
    let len = batch * channels * h * w;
    let x = vec_filled(40, len);
    let mut y = vec![0.0f32; len];
    let p = lrn::LrnParams::default();
    lrn::forward(cg, batch, channels, h, w, p, Some((&x, &mut y)));
    let dy = vec_filled(41, len);
    let mut dx = vec![0.0f32; len];
    lrn::backward(cg, batch, channels, h, w, p, Some((&x, &dy, &mut dx)));
}

fn drive_bn(cg: &mut CoreGroup) {
    let (batch, channels, spatial) = (2, 4, 16);
    let len = batch * channels * spatial;
    let input = vec_filled(50, len);
    let gamma = vec_filled(51, channels);
    let beta = vec_filled(52, channels);
    let mut output = vec![0.0f32; len];
    let mut save_mean = vec![0.0f32; channels];
    let mut save_istd = vec![0.0f32; channels];
    bn::forward(
        cg,
        batch,
        channels,
        spatial,
        1e-5,
        Some(bn::BnFwdOperands {
            input: &input,
            gamma: &gamma,
            beta: &beta,
            output: &mut output,
            save_mean: &mut save_mean,
            save_istd: &mut save_istd,
        }),
    );
    let out_grad = vec_filled(53, len);
    let mut in_grad = vec![0.0f32; len];
    let mut gamma_grad = vec![0.0f32; channels];
    let mut beta_grad = vec![0.0f32; channels];
    bn::backward(
        cg,
        batch,
        channels,
        spatial,
        Some(bn::BnBwdOperands {
            input: &input,
            gamma: &gamma,
            out_grad: &out_grad,
            save_mean: &save_mean,
            save_istd: &save_istd,
            in_grad: &mut in_grad,
            gamma_grad: &mut gamma_grad,
            beta_grad: &mut beta_grad,
        }),
    );
    let var: Vec<f32> = save_istd.iter().map(|s| 1.0 / (s * s) - 1e-5).collect();
    let mut inf_out = vec![0.0f32; len];
    bn::forward_inference(
        cg,
        batch,
        channels,
        spatial,
        1e-5,
        Some((
            &input[..],
            &gamma[..],
            &beta[..],
            &save_mean[..],
            &var[..],
            &mut inf_out[..],
        )),
    );
}

fn drive_softmax(cg: &mut CoreGroup) {
    let (batch, classes) = (8, 10);
    let logits = vec_filled(60, batch * classes);
    let labels: Vec<f32> = (0..batch).map(|i| (i % classes) as f32).collect();
    let mut probs = vec![0.0f32; batch * classes];
    let mut losses = vec![0.0f32; batch];
    softmax::forward(
        cg,
        batch,
        classes,
        Some(softmax::SoftmaxFwdOperands {
            logits: &logits,
            labels: &labels,
            probs: &mut probs,
            losses: &mut losses,
        }),
    );
    let mut in_grad = vec![0.0f32; batch * classes];
    softmax::backward(
        cg,
        batch,
        classes,
        1.0 / batch as f32,
        Some(softmax::SoftmaxBwdOperands {
            probs: &probs,
            labels: &labels,
            in_grad: &mut in_grad,
        }),
    );
}

fn drive_transform(cg: &mut CoreGroup) {
    let shape = TransShape {
        batch: 4,
        channels: 3,
        height: 4,
        width: 5,
    };
    let x = vec_filled(70, shape.len());
    let mut rcnb = vec![0.0f32; shape.len()];
    transform::nchw_to_rcnb(cg, &shape, Some((&x, &mut rcnb)));
    let mut back = vec![0.0f32; shape.len()];
    transform::rcnb_to_nchw(cg, &shape, Some((&rcnb, &mut back)));
}

fn drive_elementwise(cg: &mut CoreGroup) {
    let len = 2000;
    let x = vec_filled(80, len);
    let dy = vec_filled(81, len);
    let mut y = vec![0.0f32; len];
    elementwise::relu_forward(cg, len, Some((&x, &mut y)));
    let mut dx = vec![0.0f32; len];
    elementwise::relu_backward(cg, len, Some((&dy, &x, &mut dx)));
    let mut sum = vec![0.0f32; len];
    elementwise::add(cg, len, Some((&x, &dy, &mut sum)));
    let mask = vec_filled(82, len);
    let mut masked = vec![0.0f32; len];
    elementwise::apply_mask(cg, len, Some((&x, &mask, &mut masked)));
    let mut acc = vec_filled(83, len);
    elementwise::axpy(cg, len, 0.5, Some((&x, &mut acc)));

    let (batch, channels, spatial) = (2, 3, 20);
    let bias = vec_filled(84, channels);
    let mut data = vec_filled(85, batch * channels * spatial);
    elementwise::bias_forward(cg, batch, channels, spatial, Some((&bias, &mut data)));
    let mut db = vec![0.0f32; channels];
    elementwise::bias_backward(cg, batch, channels, spatial, Some((&data, &mut db)));

    let (rows, row_len) = (5, 33);
    let rbias = vec_filled(86, row_len);
    let mut rdata = vec_filled(87, rows * row_len);
    elementwise::bias_rows(cg, rows, row_len, Some((&rbias, &mut rdata)));

    // Crosses the 64-column chunk boundary so two CPEs own chunks.
    let (srows, scols) = (7, 130);
    let m = vec_filled(88, srows * scols);
    let mut colsum = vec![0.0f32; scols];
    elementwise::col_sums(cg, srows, scols, Some((&m, &mut colsum)));

    let (block_len, nblocks) = (10, 6);
    let src = vec_filled(89, nblocks * 12);
    let mut dst = vec![0.0f32; nblocks * 15];
    elementwise::copy_blocks(cg, block_len, nblocks, Some((&src, 0, 12, &mut dst, 2, 15)));

    let mut scaled = vec_filled(90, len);
    elementwise::scale(cg, len, 0.25, Some(&mut scaled));
    elementwise::sumsq(cg, len, Some(&x));
}

/// Run the whole swdnn kernel zoo functionally on `cg`. Identical work
/// regardless of the core group's [`CheckMode`], so checked and
/// unchecked runs are directly comparable.
pub fn drive_kernel_zoo(cg: &mut CoreGroup) {
    drive_gemm(cg);
    drive_conv_explicit(cg);
    drive_conv_implicit(cg);
    drive_pool(cg);
    drive_lrn(cg);
    drive_bn(cg);
    drive_softmax(cg);
    drive_transform(cg);
    drive_elementwise(cg);
}

/// Fold a batch of traces into a [`SuiteOutcome`] via the checker.
pub fn summarize(traces: &[KernelTrace]) -> SuiteOutcome {
    let mut kernels: Vec<String> = Vec::new();
    for t in traces {
        if !kernels.contains(&t.name) {
            kernels.push(t.name.clone());
        }
    }
    SuiteOutcome {
        kernels,
        launches: traces.len(),
        events: traces
            .iter()
            .flat_map(|t| &t.per_cpe)
            .map(|c| c.events.len())
            .sum(),
        violations: check_traces(traces),
    }
}

/// Drive the zoo on a recording core group and check every trace.
pub fn run_suite() -> SuiteOutcome {
    let mut cg = CoreGroup::new_checked(ExecMode::Functional);
    assert!(cg.check_mode().is_on());
    drive_kernel_zoo(&mut cg);
    let traces = cg.take_traces();
    summarize(&traces)
}

/// Make sure an unchecked run records nothing (the zero-cost-off claim).
pub fn run_unchecked_records_nothing() -> bool {
    let mut cg = CoreGroup::new(ExecMode::Functional);
    assert_eq!(cg.check_mode(), CheckMode::Off);
    drive_kernel_zoo(&mut cg);
    cg.take_traces().is_empty()
}
