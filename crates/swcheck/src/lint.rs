//! The static lint pass: collect the [`KernelPlan`] of every swdnn
//! kernel across a benchmark shape sweep and validate each one *before*
//! anything executes, so an LDM-overflowing shape is rejected with a
//! named-buffer diagnostic instead of corrupting a run.

use sw26010::{KernelPlan, PlanViolation};
use swdnn::shapes::PoolMethod;
use swdnn::transform::TransShape;
use swdnn::{
    bn, conv_implicit, elementwise, fused, gemm, im2col, lrn, pool, softmax, transform, ConvShape,
    GemmDims, PoolShape,
};
use swtune::shapes::vgg_conv_shapes;

/// Result of linting a set of plans.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Number of plans validated.
    pub checked: usize,
    /// Plans that failed validation, with the shape label they came from.
    pub rejected: Vec<(String, PlanViolation)>,
}

impl LintOutcome {
    pub fn is_clean(&self) -> bool {
        self.rejected.is_empty()
    }
}

/// Every kernel plan a convolution layer of this shape can reach during
/// training: the explicit path's im2col/GEMM/col2im plans plus (when the
/// strategy gate allows it) the implicit-GEMM plans and their layout
/// transforms.
pub fn conv_shape_plans(shape: &ConvShape) -> Vec<KernelPlan> {
    let mut plans = Vec::new();
    // Explicit path: forward GEMM is (out_c x col_rows) * (col_rows x
    // col_cols); the backward GEMMs transpose the same three extents, so
    // their tile plans are drawn from the same dimension set.
    let dims = GemmDims::new(shape.out_c, shape.col_cols(), shape.col_rows());
    let tile = gemm::TilePlan::choose(dims);
    plans.push(gemm::kernel_plan(tile));
    plans.push(gemm::kernel_plan_double_buffered(tile));
    plans.push(im2col::im2col_plan(shape));
    plans.push(im2col::col2im_plan(shape));
    // Implicit path, gated exactly like the strategy chooser.
    if conv_implicit::supports_forward(shape) {
        plans.push(conv_implicit::forward_plan(shape));
        let ts = TransShape {
            batch: shape.batch,
            channels: shape.in_c,
            height: shape.in_h,
            width: shape.in_w,
        };
        plans.push(transform::kernel_plan("swdnn.nchw_to_rcnb", &ts));
        plans.push(transform::kernel_plan("swdnn.rcnb_to_nchw", &ts));
    }
    if conv_implicit::supports_backward(shape) {
        plans.push(conv_implicit::backward_input_plan(shape));
        plans.push(conv_implicit::backward_weights_plan(shape));
    }
    plans
}

/// Representative plans for the non-convolution kernel zoo at the
/// largest extents the five benchmark networks reach.
pub fn auxiliary_plans() -> Vec<KernelPlan> {
    let pool_shape = PoolShape {
        batch: 128,
        channels: 64,
        in_h: 224,
        in_w: 224,
        k: 2,
        stride: 2,
        pad: 0,
        method: PoolMethod::Max,
    };
    vec![
        pool::forward_plan(&pool_shape),
        pool::backward_plan(&pool_shape),
        lrn::forward_plan(96, 55),
        lrn::backward_plan(96, 55),
        bn::forward_stats_plan(224 * 224),
        bn::forward_normalize_plan(512, 224 * 224),
        bn::backward_reduce_plan(224 * 224),
        bn::backward_normalize_plan(512, 224 * 224),
        bn::inference_plan(512, 224 * 224),
        fused::epilogue_plan(512, 224 * 224),
        softmax::forward_plan(1000),
        softmax::backward_plan(1000),
        elementwise::stream_plan("swdnn.unary_map", 1),
        elementwise::stream_plan("swdnn.binary_map", 2),
        elementwise::bias_forward_plan(512, 224 * 224),
        elementwise::bias_backward_plan(224 * 224),
        elementwise::bias_rows_plan(4096),
        elementwise::col_sums_plan(),
        elementwise::copy_blocks_plan(224 * 224),
    ]
}

/// Validate a list of labelled plans.
pub fn lint_plans<'a>(plans: impl IntoIterator<Item = (String, &'a KernelPlan)>) -> LintOutcome {
    let mut out = LintOutcome::default();
    for (label, plan) in plans {
        out.checked += 1;
        if let Err(v) = plan.validate() {
            out.rejected.push((label, v));
        }
    }
    out
}

/// The full static sweep: every VGG-16 conv layer of the Table II
/// benchmark (batch 128) contributes its reachable plans, plus the
/// auxiliary kernel zoo. A clean outcome proves no benchmark shape can
/// overflow the 64 KB LDM at run time.
pub fn lint_benchmark_sweep() -> LintOutcome {
    let mut labelled: Vec<(String, KernelPlan)> = Vec::new();
    for (layer, shape) in vgg_conv_shapes() {
        for plan in conv_shape_plans(&shape) {
            labelled.push((format!("conv{layer}/{}", plan.name), plan));
        }
    }
    for plan in auxiliary_plans() {
        labelled.push((format!("aux/{}", plan.name), plan));
    }
    lint_plans(labelled.iter().map(|(l, p)| (l.clone(), p)))
}

/// Lint the *searched* plan zoo: every kernel plan the `swtune`
/// candidate enumeration can emit for every Table II layer. A clean
/// outcome proves the tuner cannot hand the runtime an LDM-overflowing
/// plan, independent of which candidate wins.
pub fn lint_tuned_zoo() -> LintOutcome {
    let mut labelled: Vec<(String, KernelPlan)> = Vec::new();
    for (layer, shape) in vgg_conv_shapes() {
        for (label, plan) in swtune::space::zoo_plans(&shape) {
            labelled.push((format!("conv{layer}/{label}"), plan));
        }
    }
    lint_plans(labelled.iter().map(|(l, p)| (l.clone(), p)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_sweep_is_clean() {
        let outcome = lint_benchmark_sweep();
        assert!(
            outcome.checked > 100,
            "sweep too small: {}",
            outcome.checked
        );
        assert!(outcome.is_clean(), "rejected plans: {:?}", outcome.rejected);
    }

    #[test]
    fn searched_plan_zoo_is_clean() {
        let outcome = lint_tuned_zoo();
        assert!(
            outcome.checked > 10_000,
            "zoo too small: {}",
            outcome.checked
        );
        assert!(outcome.is_clean(), "rejected plans: {:?}", outcome.rejected);
    }

    #[test]
    fn overflowing_plan_is_rejected_with_buffer_names() {
        let bad = KernelPlan::new("swdnn.bogus", 64)
            .buffer("a_tile", 48 * 1024)
            .buffer("b_tile", 48 * 1024);
        let outcome = lint_plans([("bogus".to_string(), &bad)]);
        assert_eq!(outcome.rejected.len(), 1);
        let msg = outcome.rejected[0].1.to_string();
        assert!(msg.contains("overflows LDM"), "{msg}");
        assert!(msg.contains("a_tile"), "{msg}");
    }
}
