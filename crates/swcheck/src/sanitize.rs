//! The happens-before checker: replays recorded [`KernelTrace`]s and
//! reports every hazard as a typed [`Violation`].
//!
//! The analysis is a single forward pass per CPE over the program-order
//! event stream, tracking the set of in-flight DMA requests and the LDM
//! ranges they touch, followed by a mesh-wide pass that matches
//! register-communication send/recv counts and barrier arrivals. A
//! launch that was unwound by the stall detector is classified instead
//! of count-checked: all-barrier stalls are barrier divergence, anything
//! else is a deadlock, each reported with per-CPE blocked-on detail.

use sw26010::arch::MESH_DIM;
use sw26010::dma::DmaDir;
use sw26010::rlc::Axis;
use sw26010::{BlockedOn, CpeEvent, CpeTrace, KernelPlan, KernelTrace, MemRange};

/// Where and what went wrong in one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Kernel name from the launch (`run_named` / `run_planned`).
    pub kernel: String,
    /// `(row, col)` of the offending CPE; `None` for mesh-wide findings.
    pub cpe: Option<(usize, usize)>,
    pub kind: ViolationKind,
}

/// The typed hazard taxonomy of the sanitizer.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// An operation touched an LDM range that an un-waited DMA request
    /// is still reading or writing.
    UseBeforeWait { seq: u64, op: String },
    /// `dma_wait` was called with a handle that was already retired (or
    /// never issued).
    DoubleWait { seq: u64 },
    /// DMA requests still in flight when the kernel returned.
    LeakedDma { seqs: Vec<u64> },
    /// An LDM buffer was freed while a DMA request was still using it.
    FreeInFlight { seq: u64 },
    /// Register-communication counts disagree between two CPEs.
    /// `from`/`to` are mesh indices (`row * 8 + col`).
    SendRecvMismatch {
        axis: Axis,
        from: usize,
        to: usize,
        sent: usize,
        received: usize,
    },
    /// The mesh stopped making progress with CPEs blocked on RLC
    /// operations (cyclic waits or missing partners).
    Deadlock { waiting: Vec<String> },
    /// Some CPEs entered the mesh barrier while others exited the
    /// kernel (or the arrival counts differ).
    BarrierDivergence { detail: String },
    /// The recorded execution exceeded a claim its [`KernelPlan`] made.
    PlanExceeded {
        what: String,
        observed: usize,
        planned: usize,
    },
}

fn mesh_coord(idx: usize) -> (usize, usize) {
    (idx / MESH_DIM, idx % MESH_DIM)
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::UseBeforeWait { seq, op } => write!(
                f,
                "{op} overlaps the buffer of un-waited DMA request #{seq} \
                 (use before dma_wait)"
            ),
            ViolationKind::DoubleWait { seq } => write!(
                f,
                "dma_wait on stale handle #{seq} (already waited or never issued)"
            ),
            ViolationKind::LeakedDma { seqs } => {
                write!(f, "kernel returned with DMA requests still in flight:")?;
                for s in seqs {
                    write!(f, " #{s}")?;
                }
                Ok(())
            }
            ViolationKind::FreeInFlight { seq } => write!(
                f,
                "LDM buffer freed while DMA request #{seq} was still in flight"
            ),
            ViolationKind::SendRecvMismatch {
                axis,
                from,
                to,
                sent,
                received,
            } => {
                let (fr, fc) = mesh_coord(*from);
                let (tr, tc) = mesh_coord(*to);
                write!(
                    f,
                    "RLC {axis:?}-bus mismatch: CPE ({fr},{fc}) sent {sent} \
                     message(s) to CPE ({tr},{tc}) which received {received}"
                )
            }
            ViolationKind::Deadlock { waiting } => {
                write!(f, "mesh deadlocked: {}", waiting.join("; "))
            }
            ViolationKind::BarrierDivergence { detail } => {
                write!(f, "barrier divergence: {detail}")
            }
            ViolationKind::PlanExceeded {
                what,
                observed,
                planned,
            } => write!(
                f,
                "execution exceeded its kernel plan: {what} observed {observed} \
                 vs {planned} planned"
            ),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cpe {
            Some((r, c)) => write!(f, "kernel `{}` CPE ({r},{c}): {}", self.kernel, self.kind),
            None => write!(f, "kernel `{}`: {}", self.kernel, self.kind),
        }
    }
}

/// One in-flight DMA request on one CPE.
struct Inflight {
    seq: u64,
    dir: DmaDir,
    range: MemRange,
}

/// Check one CPE's event stream for intra-CPE hazards.
fn check_cpe(kernel: &str, cpe: &CpeTrace, trace_stalled: bool, out: &mut Vec<Violation>) {
    let here = Some((cpe.row, cpe.col));
    let push = |out: &mut Vec<Violation>, kind| {
        out.push(Violation {
            kernel: kernel.to_string(),
            cpe: here,
            kind,
        })
    };
    let mut inflight: Vec<Inflight> = Vec::new();
    for ev in &cpe.events {
        match ev {
            CpeEvent::DmaIssue {
                seq, dir, range, ..
            } => {
                for fl in &inflight {
                    // A get writes its LDM range, so it races any
                    // in-flight request touching the same bytes; a put
                    // only reads, so two overlapping puts are fine but
                    // reading a get's half-written destination is not.
                    let races = match dir {
                        DmaDir::Get => true,
                        DmaDir::Put => matches!(fl.dir, DmaDir::Get),
                    };
                    if races && range.overlaps(&fl.range) {
                        push(
                            out,
                            ViolationKind::UseBeforeWait {
                                seq: fl.seq,
                                op: format!("dma {dir:?} #{seq}"),
                            },
                        );
                    }
                }
                inflight.push(Inflight {
                    seq: *seq,
                    dir: *dir,
                    range: *range,
                });
            }
            CpeEvent::DmaWait { seq } => inflight.retain(|fl| fl.seq != *seq),
            CpeEvent::DmaWaitStale { seq } => push(out, ViolationKind::DoubleWait { seq: *seq }),
            CpeEvent::RlcSend { range, .. } => {
                // The send reads its source slice.
                for fl in &inflight {
                    if matches!(fl.dir, DmaDir::Get) && range.overlaps(&fl.range) {
                        push(
                            out,
                            ViolationKind::UseBeforeWait {
                                seq: fl.seq,
                                op: "RLC send".to_string(),
                            },
                        );
                    }
                }
            }
            CpeEvent::RlcRecv { range, .. } => {
                // The receive writes its destination slice.
                for fl in &inflight {
                    if range.overlaps(&fl.range) {
                        push(
                            out,
                            ViolationKind::UseBeforeWait {
                                seq: fl.seq,
                                op: "RLC receive".to_string(),
                            },
                        );
                    }
                }
            }
            CpeEvent::LdmFree { range, .. } => {
                // Freeing a buffer a DMA still uses is a hazard in its
                // own right; drop the stale entries afterwards so later
                // allocations reusing the address space don't cascade
                // into false use-before-wait reports.
                for fl in &inflight {
                    if range.overlaps(&fl.range) {
                        push(out, ViolationKind::FreeInFlight { seq: fl.seq });
                    }
                }
                inflight.retain(|fl| !range.overlaps(&fl.range));
            }
            CpeEvent::Barrier { .. } | CpeEvent::LdmAlloc { .. } => {}
        }
    }
    // A stalled launch unwinds kernels mid-flight; leak reports would be
    // collateral noise next to the deadlock diagnostic.
    if !cpe.leaked_dma.is_empty() && !trace_stalled {
        push(
            out,
            ViolationKind::LeakedDma {
                seqs: cpe.leaked_dma.clone(),
            },
        );
    }
}

fn axis_key(a: Axis) -> u8 {
    match a {
        Axis::Row => 0,
        Axis::Col => 1,
    }
}

/// Mesh-wide RLC send/recv count matching: for every directed pair
/// `(sender, receiver)` on each bus, the sender's send count must equal
/// the receiver's receive count.
fn check_rlc_matching(trace: &KernelTrace, out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    // (axis, from mesh idx, to mesh idx) -> (sent, received)
    let mut pairs: BTreeMap<(u8, usize, usize), (usize, usize)> = BTreeMap::new();
    for cpe in &trace.per_cpe {
        let me = cpe.row * MESH_DIM + cpe.col;
        for ev in &cpe.events {
            match ev {
                CpeEvent::RlcSend { axis, peer, .. } => {
                    pairs.entry((axis_key(*axis), me, *peer)).or_default().0 += 1;
                }
                CpeEvent::RlcRecv { axis, peer, .. } => {
                    pairs.entry((axis_key(*axis), *peer, me)).or_default().1 += 1;
                }
                _ => {}
            }
        }
    }
    for ((axis, from, to), (sent, received)) in pairs {
        if sent != received {
            out.push(Violation {
                kernel: trace.name.clone(),
                cpe: None,
                kind: ViolationKind::SendRecvMismatch {
                    axis: if axis == 0 { Axis::Row } else { Axis::Col },
                    from,
                    to,
                    sent,
                    received,
                },
            });
        }
    }
}

/// Barrier arrival counts must agree across the whole launch.
fn check_barriers(trace: &KernelTrace, out: &mut Vec<Violation>) {
    let count = |c: &CpeTrace| {
        c.events
            .iter()
            .filter(|e| matches!(e, CpeEvent::Barrier { .. }))
            .count()
    };
    let Some(first) = trace.per_cpe.first() else {
        return;
    };
    let expect = count(first);
    if trace.per_cpe.iter().any(|c| count(c) != expect) {
        let mut detail = String::new();
        for c in &trace.per_cpe {
            let n = count(c);
            if n != expect {
                if !detail.is_empty() {
                    detail.push_str(", ");
                }
                detail.push_str(&format!(
                    "CPE ({},{}) arrived {n} time(s) vs {expect}",
                    c.row, c.col
                ));
            }
        }
        out.push(Violation {
            kernel: trace.name.clone(),
            cpe: None,
            kind: ViolationKind::BarrierDivergence { detail },
        });
    }
}

/// Turn a stalled launch into a liveness diagnosis.
fn classify_stall(trace: &KernelTrace, out: &mut Vec<Violation>) {
    let stalled: Vec<&CpeTrace> = trace.per_cpe.iter().filter(|c| c.stall.is_some()).collect();
    let all_barrier = stalled
        .iter()
        .all(|c| matches!(c.stall, Some(BlockedOn::Barrier)));
    if all_barrier {
        let arrivals: Vec<String> = stalled
            .iter()
            .map(|c| format!("CPE ({},{})", c.row, c.col))
            .collect();
        out.push(Violation {
            kernel: trace.name.clone(),
            cpe: None,
            kind: ViolationKind::BarrierDivergence {
                detail: format!(
                    "{} of {} CPEs waited forever at the mesh barrier ({}) \
                     while the others exited the kernel",
                    stalled.len(),
                    trace.n_cpes,
                    arrivals.join(", ")
                ),
            },
        });
    } else {
        let waiting: Vec<String> = stalled
            .iter()
            .map(|c| {
                format!(
                    "CPE ({},{}) blocked on {}",
                    c.row,
                    c.col,
                    c.stall.expect("filtered on stall")
                )
            })
            .collect();
        out.push(Violation {
            kernel: trace.name.clone(),
            cpe: None,
            kind: ViolationKind::Deadlock { waiting },
        });
    }
}

/// Analyze one kernel launch trace. Returns every detected hazard, CPE
/// hazards first, mesh-wide findings after.
pub fn check_trace(trace: &KernelTrace) -> Vec<Violation> {
    let mut out = Vec::new();
    let stalled = trace.stalled();
    for cpe in &trace.per_cpe {
        check_cpe(&trace.name, cpe, stalled, &mut out);
    }
    if stalled {
        classify_stall(trace, &mut out);
    } else {
        check_rlc_matching(trace, &mut out);
        check_barriers(trace, &mut out);
    }
    out
}

/// [`check_trace`] plus cross-checking the execution against the claims
/// of its [`KernelPlan`]: the observed LDM high water must not exceed
/// the planned working set.
pub fn check_trace_against_plan(trace: &KernelTrace, plan: &KernelPlan) -> Vec<Violation> {
    let mut out = check_trace(trace);
    let observed = trace.ldm_high_water();
    let planned = plan.ldm_bytes();
    if observed > planned {
        out.push(Violation {
            kernel: trace.name.clone(),
            cpe: None,
            kind: ViolationKind::PlanExceeded {
                what: "LDM working set (bytes)".to_string(),
                observed,
                planned,
            },
        });
    }
    out
}

/// Analyze a batch of traces (the usual `take_traces()` result).
pub fn check_traces(traces: &[KernelTrace]) -> Vec<Violation> {
    traces.iter().flat_map(check_trace).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(events: Vec<CpeEvent>) -> KernelTrace {
        KernelTrace {
            name: "t".into(),
            n_cpes: 1,
            per_cpe: vec![CpeTrace {
                idx: 0,
                row: 0,
                col: 0,
                events,
                leaked_dma: vec![],
                stall: None,
                ldm_high_water: 0,
            }],
        }
    }

    fn issue(seq: u64, dir: DmaDir, lo: usize, hi: usize) -> CpeEvent {
        CpeEvent::DmaIssue {
            seq,
            dir,
            bytes: hi - lo,
            range: MemRange { lo, hi },
        }
    }

    #[test]
    fn overlapping_get_before_wait_is_flagged() {
        let t = trace_with(vec![
            issue(1, DmaDir::Get, 100, 200),
            issue(2, DmaDir::Put, 150, 250),
            CpeEvent::DmaWait { seq: 1 },
            CpeEvent::DmaWait { seq: 2 },
        ]);
        let v = check_trace(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].kind,
            ViolationKind::UseBeforeWait { seq: 1, .. }
        ));
    }

    #[test]
    fn disjoint_pipelining_is_clean() {
        let t = trace_with(vec![
            issue(1, DmaDir::Get, 100, 200),
            issue(2, DmaDir::Get, 200, 300),
            CpeEvent::DmaWait { seq: 1 },
            CpeEvent::DmaWait { seq: 2 },
        ]);
        assert!(check_trace(&t).is_empty());
    }

    #[test]
    fn overlapping_puts_both_read_no_violation() {
        let t = trace_with(vec![
            issue(1, DmaDir::Put, 100, 200),
            issue(2, DmaDir::Put, 100, 200),
            CpeEvent::DmaWait { seq: 1 },
            CpeEvent::DmaWait { seq: 2 },
        ]);
        assert!(check_trace(&t).is_empty());
    }

    #[test]
    fn free_in_flight_is_flagged_once_and_suppresses_cascades() {
        let t = trace_with(vec![
            issue(1, DmaDir::Get, 100, 200),
            CpeEvent::LdmFree {
                id: 7,
                range: MemRange { lo: 100, hi: 200 },
            },
            // Address reuse after the free must NOT re-report against
            // the dead request.
            issue(2, DmaDir::Get, 100, 200),
            CpeEvent::DmaWait { seq: 2 },
            CpeEvent::DmaWait { seq: 1 },
        ]);
        let v = check_trace(&t);
        // One FreeInFlight, one DoubleWait-free stale wait? No: seq 1
        // was dropped from inflight by the free, so its wait retires an
        // unknown-to-the-checker handle, which the runtime would have
        // recorded as DmaWait (it was live there). Only the free fires.
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(v[0].kind, ViolationKind::FreeInFlight { seq: 1 }));
    }

    #[test]
    fn send_recv_mismatch_across_cpes() {
        let t = KernelTrace {
            name: "pair".into(),
            n_cpes: 2,
            per_cpe: vec![
                CpeTrace {
                    idx: 0,
                    row: 0,
                    col: 0,
                    events: vec![
                        CpeEvent::RlcSend {
                            axis: Axis::Row,
                            peer: 1,
                            bytes: 8,
                            range: MemRange { lo: 0, hi: 8 },
                        },
                        CpeEvent::RlcSend {
                            axis: Axis::Row,
                            peer: 1,
                            bytes: 8,
                            range: MemRange { lo: 0, hi: 8 },
                        },
                    ],
                    ..Default::default()
                },
                CpeTrace {
                    idx: 1,
                    row: 0,
                    col: 1,
                    events: vec![CpeEvent::RlcRecv {
                        axis: Axis::Row,
                        peer: 0,
                        bytes: 8,
                        range: MemRange { lo: 16, hi: 24 },
                    }],
                    ..Default::default()
                },
            ],
        };
        let v = check_trace(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].kind,
            ViolationKind::SendRecvMismatch {
                from: 0,
                to: 1,
                sent: 2,
                received: 1,
                ..
            }
        ));
    }

    #[test]
    fn plan_high_water_cross_check() {
        let mut t = trace_with(vec![]);
        t.per_cpe[0].ldm_high_water = 4096;
        let plan = KernelPlan::new("t", 1).buffer("b", 1024);
        let v = check_trace_against_plan(&t, &plan);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].kind,
            ViolationKind::PlanExceeded {
                observed: 4096,
                planned: 1024,
                ..
            }
        ));
    }
}
