//! `swcheck` CLI — three passes over the simulated stack:
//!
//! * default: the dynamic sanitizer suite over the swdnn kernel zoo plus
//!   the static plan lint over the benchmark shape sweep, with an
//!   overhead measurement (checked vs unchecked wall clock);
//! * `--comm`: static verification of the collective schedules for all
//!   three all-reduce algorithms over power-of-two, partial-supernode,
//!   and post-shrink topologies (the `--ranks` flag scales the suite;
//!   the default is the TaihuLight full-machine 40,960);
//! * `--graph`: net-definition lint over the whole model zoo and the
//!   optimizer's post-fusion outputs.
//!
//! Exits non-zero when any violation or rejected plan is found.
//!
//! Usage: `swcheck [--comm [--ranks N] | --graph] [--json PATH]`

use std::io::Write as _;
use std::time::Instant;

use sw26010::{CoreGroup, ExecMode};
use swcheck::{
    check_model_zoo, check_spec, comm_report_json, graph_report_json, lint_benchmark_sweep,
    report_json, run_suite, suite, CommOutcome,
};
use swnet::{Algorithm, CommSpec, RankMap, Topology};

fn write_json(path: &str, doc: &swjson::Json) {
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("swcheck: cannot create {path}: {e}"));
    f.write_all(doc.to_pretty_string().as_bytes())
        .expect("write report");
    println!("swcheck: report written to {path}");
}

/// The `--comm` verification suite: every algorithm over a
/// power-of-two-complete topology, a topology with a partial trailing
/// supernode, and the configuration a `ShrinkAndContinue` recovery
/// produces (non-power-of-two survivor count, which sends the tree
/// algorithms back to the ring with the natural mapping — the
/// `allreduce_any` rule).
fn comm_cases(ranks: usize) -> Vec<(String, CommSpec)> {
    let ranks = ranks.max(8);
    let tree_ranks = ranks.next_power_of_two();
    let pow2_ring = if ranks.is_power_of_two() {
        ranks
    } else {
        tree_ranks / 2
    };
    let elems = 61 * 1024 * 1024 / 4; // VGG-16's ~61M params, in f32
    let mut cases = Vec::new();
    for algo in [
        Algorithm::RecursiveHalvingDoubling,
        Algorithm::Ring,
        Algorithm::Binomial,
    ] {
        let p = match algo {
            Algorithm::Ring => ranks,
            _ => tree_ranks,
        };
        let full = match algo {
            Algorithm::Ring => pow2_ring,
            _ => tree_ranks,
        };
        // Complete supernodes, round-robin mapping.
        cases.push((
            format!("{algo:?}/pow2/{full}"),
            CommSpec::monolithic(
                Topology::with_supernode(full, 256.min(full)),
                RankMap::RoundRobin,
                algo,
                elems,
            )
            .expect("power-of-two configuration schedules"),
        ));
        // Partial trailing supernode.
        let ss = if p > 384 { 384 } else { (p / 2).max(1) + 1 };
        cases.push((
            format!("{algo:?}/partial-supernode/{p}"),
            CommSpec::monolithic(
                Topology::with_supernode(p, ss),
                RankMap::RoundRobin,
                algo,
                elems,
            )
            .expect("partial-supernode configuration schedules"),
        ));
        // Post-shrink: a few ranks died; the survivor count is not a
        // power of two, so trees fall back to Ring/Natural exactly as
        // `ClusterTrainer::recover` reconfigures them.
        let survivors = full - 3;
        let (shrunk_algo, shrunk_map) = if survivors.is_power_of_two() {
            (algo, RankMap::RoundRobin)
        } else {
            match algo {
                Algorithm::Ring => (Algorithm::Ring, RankMap::RoundRobin),
                _ => (Algorithm::Ring, RankMap::Natural),
            }
        };
        cases.push((
            format!("{algo:?}/shrunk/{survivors}"),
            CommSpec::monolithic(
                Topology::with_supernode(survivors, 256.min(survivors)),
                shrunk_map,
                shrunk_algo,
                elems,
            )
            .expect("post-shrink configuration schedules"),
        ));
    }
    cases
}

fn run_comm(ranks: usize, json_path: Option<&str>) -> bool {
    let cases = comm_cases(ranks);
    let mut outcomes: Vec<(String, CommOutcome, f64)> = Vec::new();
    for (label, spec) in &cases {
        let t = Instant::now();
        let out = check_spec(spec);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "swcheck --comm: {label}: {} mode, {} steps, {} ops, {} violation(s) in {:.3}s",
            out.mode,
            out.steps,
            out.ops,
            out.violations.len(),
            secs
        );
        for v in &out.violations {
            println!("  VIOLATION: {v}");
        }
        outcomes.push((label.clone(), out, secs));
    }
    let clean = outcomes.iter().all(|(_, o, _)| o.is_clean());
    let total: f64 = outcomes.iter().map(|(_, _, s)| s).sum();
    println!(
        "swcheck --comm: {} configurations verified in {total:.3}s ({})",
        outcomes.len(),
        if clean {
            "all clean"
        } else {
            "VIOLATIONS FOUND"
        }
    );
    if let Some(path) = json_path {
        write_json(path, &comm_report_json(&outcomes));
    }
    clean
}

fn run_graph(json_path: Option<&str>) -> bool {
    let t = Instant::now();
    let outcomes = check_model_zoo();
    let secs = t.elapsed().as_secs_f64();
    for out in &outcomes {
        let status = if out.is_clean() {
            "clean".to_string()
        } else if let Some(e) = &out.error {
            format!("ERROR: {e}")
        } else {
            format!("{} violation(s)", out.violations.len())
        };
        println!(
            "swcheck --graph: {} ({} layers): {status}",
            out.name, out.layers
        );
        for v in &out.violations {
            println!("  VIOLATION: {v}");
        }
    }
    let clean = outcomes.iter().all(|o| o.is_clean());
    println!(
        "swcheck --graph: {} definitions linted in {secs:.3}s ({})",
        outcomes.len(),
        if clean {
            "all clean"
        } else {
            "VIOLATIONS FOUND"
        }
    );
    if let Some(path) = json_path {
        write_json(path, &graph_report_json(&outcomes));
    }
    clean
}

fn run_kernels(json_path: Option<&str>) -> bool {
    // Overhead: identical workload, recording off vs on.
    let t0 = Instant::now();
    let mut plain = CoreGroup::new(ExecMode::Functional);
    suite::drive_kernel_zoo(&mut plain);
    let unchecked_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let outcome = run_suite();
    let checked_s = t1.elapsed().as_secs_f64();
    let ratio = if unchecked_s > 0.0 {
        checked_s / unchecked_s
    } else {
        1.0
    };

    let lint = lint_benchmark_sweep();

    println!(
        "swcheck: traced {} launches of {} kernels ({} events); {} violation(s)",
        outcome.launches,
        outcome.kernels.len(),
        outcome.events,
        outcome.violations.len()
    );
    for v in &outcome.violations {
        println!("  VIOLATION: {v}");
    }
    println!(
        "swcheck: linted {} kernel plans across the benchmark sweep; {} rejected",
        lint.checked,
        lint.rejected.len()
    );
    for (label, v) in &lint.rejected {
        println!("  REJECTED {label}: {v}");
    }
    println!(
        "swcheck: sanitizer overhead {checked_s:.3}s checked vs {unchecked_s:.3}s \
         unchecked ({ratio:.2}x)"
    );

    if let Some(path) = json_path {
        write_json(path, &report_json(&outcome, &lint, Some(ratio)));
    }

    outcome.is_clean() && lint.is_clean()
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut comm = false;
    let mut graph = false;
    let mut ranks: usize = 40_960;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            "--comm" => comm = true,
            "--graph" => graph = true,
            "--ranks" => {
                ranks = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("swcheck: --ranks needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: swcheck [--comm [--ranks N] | --graph] [--json PATH]");
                return;
            }
            other => {
                eprintln!("swcheck: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let clean = match (comm, graph) {
        (true, true) => {
            // Both passes; a single --json path gets the comm report.
            let g = run_graph(None);
            run_comm(ranks, json_path.as_deref()) && g
        }
        (true, false) => run_comm(ranks, json_path.as_deref()),
        (false, true) => run_graph(json_path.as_deref()),
        (false, false) => run_kernels(json_path.as_deref()),
    };
    if !clean {
        std::process::exit(1);
    }
}
