//! `swcheck` CLI: run the dynamic sanitizer suite over the swdnn kernel
//! zoo, the static plan lint over the benchmark shape sweep, and an
//! overhead measurement (checked vs unchecked wall clock). Exits
//! non-zero when any violation or rejected plan is found.
//!
//! Usage: `swcheck [--json PATH]`

use std::io::Write as _;
use std::time::Instant;

use sw26010::{CoreGroup, ExecMode};
use swcheck::{lint_benchmark_sweep, report_json, run_suite, suite};

fn main() {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            "--help" | "-h" => {
                println!("usage: swcheck [--json PATH]");
                return;
            }
            other => {
                eprintln!("swcheck: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    // Overhead: identical workload, recording off vs on.
    let t0 = Instant::now();
    let mut plain = CoreGroup::new(ExecMode::Functional);
    suite::drive_kernel_zoo(&mut plain);
    let unchecked_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let outcome = run_suite();
    let checked_s = t1.elapsed().as_secs_f64();
    let ratio = if unchecked_s > 0.0 {
        checked_s / unchecked_s
    } else {
        1.0
    };

    let lint = lint_benchmark_sweep();

    println!(
        "swcheck: traced {} launches of {} kernels ({} events); {} violation(s)",
        outcome.launches,
        outcome.kernels.len(),
        outcome.events,
        outcome.violations.len()
    );
    for v in &outcome.violations {
        println!("  VIOLATION: {v}");
    }
    println!(
        "swcheck: linted {} kernel plans across the benchmark sweep; {} rejected",
        lint.checked,
        lint.rejected.len()
    );
    for (label, v) in &lint.rejected {
        println!("  REJECTED {label}: {v}");
    }
    println!(
        "swcheck: sanitizer overhead {checked_s:.3}s checked vs {unchecked_s:.3}s \
         unchecked ({ratio:.2}x)"
    );

    if let Some(path) = json_path {
        let doc = report_json(&outcome, &lint, Some(ratio));
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("swcheck: cannot create {path}: {e}"));
        f.write_all(doc.to_pretty_string().as_bytes())
            .expect("write report");
        println!("swcheck: report written to {path}");
    }

    if !outcome.is_clean() || !lint.is_clean() {
        std::process::exit(1);
    }
}
