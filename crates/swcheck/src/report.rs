//! Serialize sanitizer and lint results as `swjson` reports, matching
//! the deterministic on-disk conventions of the bench/CI pipeline.

use swjson::{obj, Json};

use crate::comm::{CommOutcome, CommViolation};
use crate::graph::GraphOutcome;
use crate::lint::LintOutcome;
use crate::sanitize::{Violation, ViolationKind};
use crate::suite::SuiteOutcome;

fn kind_slug(kind: &ViolationKind) -> &'static str {
    match kind {
        ViolationKind::UseBeforeWait { .. } => "use_before_wait",
        ViolationKind::DoubleWait { .. } => "double_wait",
        ViolationKind::LeakedDma { .. } => "leaked_dma",
        ViolationKind::FreeInFlight { .. } => "free_in_flight",
        ViolationKind::SendRecvMismatch { .. } => "send_recv_mismatch",
        ViolationKind::Deadlock { .. } => "deadlock",
        ViolationKind::BarrierDivergence { .. } => "barrier_divergence",
        ViolationKind::PlanExceeded { .. } => "plan_exceeded",
    }
}

/// One violation as a JSON object: machine-readable kind plus the full
/// human diagnostic.
pub fn violation_json(v: &Violation) -> Json {
    let mut b = obj()
        .field("kernel", v.kernel.as_str())
        .field("kind", kind_slug(&v.kind));
    if let Some((row, col)) = v.cpe {
        b = b.field("row", row as i64).field("col", col as i64);
    }
    b.field("message", v.kind.to_string()).build()
}

pub fn violations_json(violations: &[Violation]) -> Json {
    Json::Arr(violations.iter().map(violation_json).collect())
}

/// The complete `swcheck` run as one JSON document: dynamic-suite
/// summary, static-lint summary, and every violation.
pub fn report_json(suite: &SuiteOutcome, lint: &LintOutcome, overhead_ratio: Option<f64>) -> Json {
    let rejected = Json::Arr(
        lint.rejected
            .iter()
            .map(|(label, v)| {
                obj()
                    .field("plan", label.as_str())
                    .field("message", v.to_string())
                    .build()
            })
            .collect(),
    );
    let mut b = obj()
        .field("tool", "swcheck")
        .field(
            "suite",
            obj()
                .field("launches", suite.launches as i64)
                .field("events", suite.events as i64)
                .field(
                    "kernels",
                    Json::Arr(suite.kernels.iter().map(|k| Json::Str(k.clone())).collect()),
                )
                .field("violations", violations_json(&suite.violations))
                .build(),
        )
        .field(
            "lint",
            obj()
                .field("plans_checked", lint.checked as i64)
                .field("rejected", rejected)
                .build(),
        );
    if let Some(r) = overhead_ratio {
        b = b.field("sanitizer_overhead_ratio", r);
    }
    b.field(
        "clean",
        suite.violations.is_empty() && lint.rejected.is_empty(),
    )
    .build()
}

/// One collective-schedule violation as a JSON object.
pub fn comm_violation_json(v: &CommViolation) -> Json {
    obj()
        .field("kind", v.kind())
        .field("message", v.to_string())
        .build()
}

/// The `--comm` pass as one JSON document: one case per checked
/// configuration with its mode, size, and violations.
pub fn comm_report_json(outcomes: &[(String, CommOutcome, f64)]) -> Json {
    let cases = Json::Arr(
        outcomes
            .iter()
            .map(|(label, out, secs)| {
                obj()
                    .field("case", label.as_str())
                    .field("algorithm", format!("{:?}", out.algo))
                    .field("nodes", out.nodes as i64)
                    .field("supernode_size", out.supernode_size as i64)
                    .field("mode", out.mode.to_string())
                    .field("steps", out.steps as i64)
                    .field("ops", out.ops as i64)
                    .field("seconds", *secs)
                    .field(
                        "violations",
                        Json::Arr(out.violations.iter().map(comm_violation_json).collect()),
                    )
                    .field("clean", out.is_clean())
                    .build()
            })
            .collect(),
    );
    obj()
        .field("tool", "swcheck")
        .field("pass", "comm")
        .field("cases", cases)
        .field("clean", outcomes.iter().all(|(_, out, _)| out.is_clean()))
        .build()
}

/// The `--graph` pass as one JSON document: one case per linted net
/// definition (raw and post-fusion).
pub fn graph_report_json(outcomes: &[GraphOutcome]) -> Json {
    let cases = Json::Arr(
        outcomes
            .iter()
            .map(|out| {
                let mut b = obj()
                    .field("case", out.name.as_str())
                    .field("layers", out.layers as i64)
                    .field(
                        "violations",
                        Json::Arr(
                            out.violations
                                .iter()
                                .map(|v| {
                                    obj()
                                        .field("kind", v.kind())
                                        .field("layer", v.layer())
                                        .field("message", v.to_string())
                                        .build()
                                })
                                .collect(),
                        ),
                    );
                if let Some(e) = &out.error {
                    b = b.field("error", e.as_str());
                }
                b.field("clean", out.is_clean()).build()
            })
            .collect(),
    );
    obj()
        .field("tool", "swcheck")
        .field("pass", "graph")
        .field("cases", cases)
        .field("clean", outcomes.iter().all(GraphOutcome::is_clean))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::ViolationKind;

    #[test]
    fn violation_serializes_with_coordinates() {
        let v = Violation {
            kernel: "swdnn.gemm".into(),
            cpe: Some((3, 4)),
            kind: ViolationKind::DoubleWait { seq: 9 },
        };
        let j = violation_json(&v);
        let text = j.to_pretty_string();
        assert!(text.contains("\"kind\": \"double_wait\""), "{text}");
        assert!(text.contains("\"row\": 3"), "{text}");
        // Round-trips through the parser.
        assert!(swjson::Json::parse(&text).is_ok());
    }
}
