//! The `Layer` trait — swCaffe's algorithm-level extension point (one of
//! the three Caffe components the paper redesigns; Sec. II-C).

use sw26010::CoreGroup;

use crate::blob::Blob;

/// Training vs inference behaviour (Caffe's `phase`): dropout applies its
/// mask only in `Train`; batch normalisation uses batch statistics in
/// `Train` and the running averages in `Test`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    #[default]
    Train,
    Test,
}

/// A network layer. Implementations wrap one or more `swdnn` kernels and
/// own their learnable parameters.
pub trait Layer: Send {
    fn name(&self) -> &str;

    fn layer_type(&self) -> &'static str;

    /// Infer top shapes from bottom shapes and allocate parameters.
    /// Called exactly once before the first forward pass.
    fn setup(
        &mut self,
        bottom_shapes: &[Vec<usize>],
        materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String>;

    /// Forward pass: fill `tops` from `bottoms`, charging the core group.
    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]);

    /// Backward pass: fill `bottoms[i].diff` for every `i` with
    /// `propagate_down[i]` set, and accumulate parameter gradients.
    /// Top data/diff are read-only.
    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        propagate_down: &[bool],
    );

    /// Learnable parameter blobs (weights first, then biases), if any.
    fn params_mut(&mut self) -> Vec<&mut Blob> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Blob> {
        Vec::new()
    }

    /// True for loss-producing layers (their top seeds backpropagation).
    fn is_loss(&self) -> bool {
        false
    }

    /// Switch between training and inference behaviour. Layers without
    /// phase-dependent behaviour ignore this.
    fn set_phase(&mut self, _phase: Phase) {}

    /// Non-learnable persistent state (e.g. batch-norm running statistics),
    /// included in snapshots but never touched by the solver.
    fn state(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Mutable access to the persistent state, for snapshot restore.
    fn state_mut(&mut self) -> Vec<&mut Vec<f32>> {
        Vec::new()
    }

    /// Current private RNG stream, for layers that consume randomness
    /// during training (dropout). Checkpoints capture it so a restored
    /// run replays the exact mask sequence an uninterrupted run would
    /// have drawn.
    fn rng_state(&self) -> Option<u64> {
        None
    }

    /// Restore the private RNG stream captured by [`Layer::rng_state`].
    fn set_rng_state(&mut self, _state: u64) {}
}

/// Helper shared by layer implementations: 4-D shape destructuring with a
/// clear error.
pub fn expect_4d(shape: &[usize], who: &str) -> Result<(usize, usize, usize, usize), String> {
    if shape.len() == 4 {
        Ok((shape[0], shape[1], shape[2], shape[3]))
    } else {
        Err(format!("{who} expects a 4-D bottom, got {shape:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_4d_accepts_and_rejects() {
        assert_eq!(expect_4d(&[1, 2, 3, 4], "t").unwrap(), (1, 2, 3, 4));
        assert!(expect_4d(&[1, 2, 3], "t").is_err());
    }
}
