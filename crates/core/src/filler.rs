//! Weight initialisers (Caffe "fillers").

use crate::rng::SplitMix64;

/// Initialisation policy for a parameter blob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Filler {
    Constant(f32),
    /// Uniform in `[-scale, scale]` with `scale = sqrt(3 / fan_in)`.
    Xavier,
    /// Gaussian with `std = sqrt(2 / fan_in)` (He/MSRA, for ReLU nets).
    Msra,
    /// Gaussian with explicit standard deviation.
    Gaussian(f32),
}

impl Filler {
    /// Fill `data` in place. `fan_in` is the receptive-field size
    /// (`in_channels * k * k` for convolutions, input features for FC).
    pub fn fill(&self, data: &mut [f32], fan_in: usize, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        match self {
            Filler::Constant(v) => data.fill(*v),
            Filler::Xavier => {
                let scale = (3.0 / fan_in.max(1) as f64).sqrt();
                for v in data.iter_mut() {
                    *v = rng.uniform(-scale, scale) as f32;
                }
            }
            Filler::Msra => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                gaussian_fill(data, std, &mut rng);
            }
            Filler::Gaussian(std) => {
                gaussian_fill(data, *std as f64, &mut rng);
            }
        }
    }
}

fn gaussian_fill(data: &mut [f32], std: f64, rng: &mut SplitMix64) {
    // Box-Muller on (0, 1] deviates; u1 > 0 keeps ln() finite.
    let mut i = 0;
    while i < data.len() {
        let u1: f64 = rng.next_f64_open0();
        let u2: f64 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data[i] = (r * theta.cos() * std) as f32;
        if i + 1 < data.len() {
            data[i + 1] = (r * theta.sin() * std) as f32;
        }
        i += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fill() {
        let mut d = vec![0.0; 10];
        Filler::Constant(2.5).fill(&mut d, 1, 0);
        assert!(d.iter().all(|v| *v == 2.5));
    }

    #[test]
    fn xavier_bounds_and_determinism() {
        let mut a = vec![0.0; 1000];
        let mut b = vec![0.0; 1000];
        Filler::Xavier.fill(&mut a, 75, 42);
        Filler::Xavier.fill(&mut b, 75, 42);
        assert_eq!(a, b, "same seed must reproduce");
        let bound = (3.0f64 / 75.0).sqrt() as f32 + 1e-6;
        assert!(a.iter().all(|v| v.abs() <= bound));
        assert!(a.iter().any(|v| v.abs() > bound * 0.5), "spread too narrow");
    }

    #[test]
    fn msra_std_is_plausible() {
        let mut d = vec![0.0; 20_000];
        Filler::Msra.fill(&mut d, 200, 7);
        let mean: f64 = d.iter().map(|v| *v as f64).sum::<f64>() / d.len() as f64;
        let var: f64 = d.iter().map(|v| (*v as f64 - mean).powi(2)).sum::<f64>() / d.len() as f64;
        let want = 2.0 / 200.0;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var - want).abs() / want < 0.1, "var {var} vs {want}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        Filler::Gaussian(0.01).fill(&mut a, 1, 1);
        Filler::Gaussian(0.01).fill(&mut b, 1, 2);
        assert_ne!(a, b);
    }
}
