//! Declarative network definitions — the prototxt of swCaffe, as plain
//! JSON-serialisable Rust values (via the in-tree `swjson` crate).

use swjson::{obj, Json};

/// Pooling operator selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    Max,
    Average,
}

impl PoolKind {
    fn as_str(&self) -> &'static str {
        match self {
            PoolKind::Max => "max",
            PoolKind::Average => "average",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "max" => Ok(PoolKind::Max),
            "average" => Ok(PoolKind::Average),
            other => Err(format!("unknown pooling method '{other}'")),
        }
    }
}

/// Data layout a convolution runs in (Sec. IV-C): NCHW uses the explicit
/// plan, RCNB the implicit plan. Transform layers convert at region
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvFormat {
    #[default]
    Nchw,
    Rcnb,
}

impl ConvFormat {
    fn as_str(&self) -> &'static str {
        match self {
            ConvFormat::Nchw => "nchw",
            ConvFormat::Rcnb => "rcnb",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "nchw" => Ok(ConvFormat::Nchw),
            "rcnb" => Ok(ConvFormat::Rcnb),
            other => Err(format!("unknown conv format '{other}'")),
        }
    }
}

/// Direction of a tensor-transformation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransDir {
    NchwToRcnb,
    RcnbToNchw,
}

impl TransDir {
    fn as_str(&self) -> &'static str {
        match self {
            TransDir::NchwToRcnb => "nchw_to_rcnb",
            TransDir::RcnbToNchw => "rcnb_to_nchw",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "nchw_to_rcnb" => Ok(TransDir::NchwToRcnb),
            "rcnb_to_nchw" => Ok(TransDir::RcnbToNchw),
            other => Err(format!("unknown transform direction '{other}'")),
        }
    }
}

/// Layer kind plus its hyper-parameters.
#[derive(Debug, Clone)]
pub enum LayerKind {
    /// Produces a data blob of the given shape (and optionally a label
    /// blob of shape `[batch]` when `with_labels`).
    Input {
        shape: Vec<usize>,
        with_labels: bool,
    },
    Convolution {
        num_output: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        format: ConvFormat,
    },
    Pooling {
        kernel: usize,
        stride: usize,
        pad: usize,
        method: PoolKind,
    },
    InnerProduct {
        num_output: usize,
        bias: bool,
    },
    ReLU,
    BatchNorm {
        eps: f32,
        momentum: f32,
    },
    /// Inference-only fusion of Convolution → BatchNorm → ReLU (NCHW),
    /// emitted by `swserve`'s graph optimizer; never used for training.
    FusedConvBnRelu {
        num_output: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        eps: f32,
    },
    Lrn {
        local_size: usize,
        alpha: f32,
        beta: f32,
        k: f32,
    },
    Dropout {
        ratio: f32,
    },
    SoftmaxWithLoss,
    Accuracy {
        top_k: usize,
    },
    /// Channel-axis concatenation (GoogLeNet inception joins).
    Concat,
    /// Element-wise sum (ResNet shortcut joins).
    EltwiseSum,
    TensorTransform {
        dir: TransDir,
    },
}

impl LayerKind {
    fn to_json(&self) -> Json {
        match self {
            LayerKind::Input { shape, with_labels } => obj()
                .field("type", "input")
                .field(
                    "shape",
                    Json::Arr(shape.iter().map(|&d| Json::from(d)).collect()),
                )
                .field("with_labels", *with_labels)
                .build(),
            LayerKind::Convolution {
                num_output,
                kernel,
                stride,
                pad,
                bias,
                format,
            } => obj()
                .field("type", "convolution")
                .field("num_output", *num_output)
                .field("kernel", *kernel)
                .field("stride", *stride)
                .field("pad", *pad)
                .field("bias", *bias)
                .field("format", format.as_str())
                .build(),
            LayerKind::Pooling {
                kernel,
                stride,
                pad,
                method,
            } => obj()
                .field("type", "pooling")
                .field("kernel", *kernel)
                .field("stride", *stride)
                .field("pad", *pad)
                .field("method", method.as_str())
                .build(),
            LayerKind::InnerProduct { num_output, bias } => obj()
                .field("type", "inner_product")
                .field("num_output", *num_output)
                .field("bias", *bias)
                .build(),
            LayerKind::ReLU => obj().field("type", "relu").build(),
            LayerKind::BatchNorm { eps, momentum } => obj()
                .field("type", "batch_norm")
                .field("eps", *eps as f64)
                .field("momentum", *momentum as f64)
                .build(),
            LayerKind::FusedConvBnRelu {
                num_output,
                kernel,
                stride,
                pad,
                bias,
                eps,
            } => obj()
                .field("type", "fused_conv_bn_relu")
                .field("num_output", *num_output)
                .field("kernel", *kernel)
                .field("stride", *stride)
                .field("pad", *pad)
                .field("bias", *bias)
                .field("eps", *eps as f64)
                .build(),
            LayerKind::Lrn {
                local_size,
                alpha,
                beta,
                k,
            } => obj()
                .field("type", "lrn")
                .field("local_size", *local_size)
                .field("alpha", *alpha as f64)
                .field("beta", *beta as f64)
                .field("k", *k as f64)
                .build(),
            LayerKind::Dropout { ratio } => obj()
                .field("type", "dropout")
                .field("ratio", *ratio as f64)
                .build(),
            LayerKind::SoftmaxWithLoss => obj().field("type", "softmax_with_loss").build(),
            LayerKind::Accuracy { top_k } => obj()
                .field("type", "accuracy")
                .field("top_k", *top_k)
                .build(),
            LayerKind::Concat => obj().field("type", "concat").build(),
            LayerKind::EltwiseSum => obj().field("type", "eltwise_sum").build(),
            LayerKind::TensorTransform { dir } => obj()
                .field("type", "tensor_transform")
                .field("dir", dir.as_str())
                .build(),
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let ty = str_field(v, "type")?;
        Ok(match ty.as_str() {
            "input" => LayerKind::Input {
                shape: v
                    .get("shape")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "input layer missing 'shape'".to_string())?
                    .iter()
                    .map(|d| {
                        d.as_u64()
                            .map(|u| u as usize)
                            .ok_or_else(|| "shape entries must be integers".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                with_labels: bool_field(v, "with_labels")?,
            },
            "convolution" => LayerKind::Convolution {
                num_output: usize_field(v, "num_output")?,
                kernel: usize_field(v, "kernel")?,
                stride: usize_field(v, "stride")?,
                pad: usize_field(v, "pad")?,
                bias: bool_field(v, "bias")?,
                format: ConvFormat::parse(&str_field(v, "format")?)?,
            },
            "pooling" => LayerKind::Pooling {
                kernel: usize_field(v, "kernel")?,
                stride: usize_field(v, "stride")?,
                pad: usize_field(v, "pad")?,
                method: PoolKind::parse(&str_field(v, "method")?)?,
            },
            "inner_product" => LayerKind::InnerProduct {
                num_output: usize_field(v, "num_output")?,
                bias: bool_field(v, "bias")?,
            },
            "relu" => LayerKind::ReLU,
            "batch_norm" => LayerKind::BatchNorm {
                eps: f32_field(v, "eps")?,
                momentum: f32_field(v, "momentum")?,
            },
            "fused_conv_bn_relu" => LayerKind::FusedConvBnRelu {
                num_output: usize_field(v, "num_output")?,
                kernel: usize_field(v, "kernel")?,
                stride: usize_field(v, "stride")?,
                pad: usize_field(v, "pad")?,
                bias: bool_field(v, "bias")?,
                eps: f32_field(v, "eps")?,
            },
            "lrn" => LayerKind::Lrn {
                local_size: usize_field(v, "local_size")?,
                alpha: f32_field(v, "alpha")?,
                beta: f32_field(v, "beta")?,
                k: f32_field(v, "k")?,
            },
            "dropout" => LayerKind::Dropout {
                ratio: f32_field(v, "ratio")?,
            },
            "softmax_with_loss" => LayerKind::SoftmaxWithLoss,
            "accuracy" => LayerKind::Accuracy {
                top_k: usize_field(v, "top_k")?,
            },
            "concat" => LayerKind::Concat,
            "eltwise_sum" => LayerKind::EltwiseSum,
            "tensor_transform" => LayerKind::TensorTransform {
                dir: TransDir::parse(&str_field(v, "dir")?)?,
            },
            other => return Err(format!("unknown layer type '{other}'")),
        })
    }
}

/// One layer instance in a network definition.
#[derive(Debug, Clone)]
pub struct LayerDef {
    pub name: String,
    pub kind: LayerKind,
    pub bottoms: Vec<String>,
    pub tops: Vec<String>,
}

impl LayerDef {
    fn to_json(&self) -> Json {
        obj()
            .field("name", self.name.as_str())
            .field("kind", self.kind.to_json())
            .field("bottoms", str_arr(&self.bottoms))
            .field("tops", str_arr(&self.tops))
            .build()
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(LayerDef {
            name: str_field(v, "name")?,
            kind: LayerKind::from_json(
                v.get("kind")
                    .ok_or_else(|| "layer missing 'kind'".to_string())?,
            )?,
            bottoms: str_vec_field(v, "bottoms")?,
            tops: str_vec_field(v, "tops")?,
        })
    }
}

/// A whole network.
#[derive(Debug, Clone)]
pub struct NetDef {
    pub name: String,
    pub layers: Vec<LayerDef>,
}

impl NetDef {
    pub fn new(name: impl Into<String>) -> Self {
        NetDef {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Builder-style push.
    pub fn layer(
        mut self,
        name: impl Into<String>,
        kind: LayerKind,
        bottoms: &[&str],
        tops: &[&str],
    ) -> Self {
        self.layers.push(LayerDef {
            name: name.into(),
            kind,
            bottoms: bottoms.iter().map(|s| s.to_string()).collect(),
            tops: tops.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Serialise to JSON (the swCaffe interchange format in this repo).
    pub fn to_json(&self) -> String {
        obj()
            .field("name", self.name.as_str())
            .field(
                "layers",
                Json::Arr(self.layers.iter().map(|l| l.to_json()).collect()),
            )
            .build()
            .to_pretty_string()
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = Json::parse(s)?;
        Ok(NetDef {
            name: str_field(&v, "name")?,
            layers: v
                .get("layers")
                .and_then(Json::as_arr)
                .ok_or_else(|| "net definition missing 'layers'".to_string())?
                .iter()
                .map(LayerDef::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Structural validation: every bottom must be produced by an earlier
    /// layer, and top names must not collide (no in-place rewrites).
    pub fn validate(&self) -> Result<(), String> {
        let mut known = std::collections::HashSet::new();
        for l in &self.layers {
            for b in &l.bottoms {
                if !known.contains(b.as_str()) {
                    return Err(format!("layer '{}' consumes undefined blob '{b}'", l.name));
                }
            }
            for t in &l.tops {
                if !known.insert(t.as_str()) {
                    return Err(format!("layer '{}' redefines blob '{t}'", l.name));
                }
            }
        }
        Ok(())
    }
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn str_vec_field(v: &Json, key: &str) -> Result<Vec<String>, String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field '{key}'"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("'{key}' entries must be strings"))
        })
        .collect()
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .map(|u| u as usize)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field '{key}'"))
}

fn f32_field(v: &Json, key: &str) -> Result<f32, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .map(|f| f as f32)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetDef {
        NetDef::new("tiny")
            .layer(
                "data",
                LayerKind::Input {
                    shape: vec![2, 1, 4, 4],
                    with_labels: true,
                },
                &[],
                &["data", "label"],
            )
            .layer(
                "conv1",
                LayerKind::Convolution {
                    num_output: 3,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    bias: true,
                    format: ConvFormat::Nchw,
                },
                &["data"],
                &["conv1"],
            )
            .layer("relu1", LayerKind::ReLU, &["conv1"], &["relu1"])
            .layer(
                "loss",
                LayerKind::SoftmaxWithLoss,
                &["relu1", "label"],
                &["loss"],
            )
    }

    #[test]
    fn json_roundtrip() {
        let def = tiny();
        let json = def.to_json();
        let back = NetDef::from_json(&json).unwrap();
        assert_eq!(back.name, "tiny");
        assert_eq!(back.layers.len(), 4);
        assert_eq!(back.layers[1].bottoms, vec!["data"]);
        // Stable rendering: parse -> render reproduces the input.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn all_layer_kinds_roundtrip() {
        let def = NetDef::new("zoo")
            .layer(
                "in",
                LayerKind::Input {
                    shape: vec![1, 3, 8, 8],
                    with_labels: false,
                },
                &[],
                &["in"],
            )
            .layer(
                "pool",
                LayerKind::Pooling {
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                    method: PoolKind::Average,
                },
                &["in"],
                &["pool"],
            )
            .layer(
                "ip",
                LayerKind::InnerProduct {
                    num_output: 10,
                    bias: false,
                },
                &["pool"],
                &["ip"],
            )
            .layer(
                "bn",
                LayerKind::BatchNorm {
                    eps: 1e-5,
                    momentum: 0.9,
                },
                &["ip"],
                &["bn"],
            )
            .layer(
                "lrn",
                LayerKind::Lrn {
                    local_size: 5,
                    alpha: 1e-4,
                    beta: 0.75,
                    k: 1.0,
                },
                &["bn"],
                &["lrn"],
            )
            .layer(
                "drop",
                LayerKind::Dropout { ratio: 0.5 },
                &["lrn"],
                &["drop"],
            )
            .layer("acc", LayerKind::Accuracy { top_k: 5 }, &["drop"], &["acc"])
            .layer("cat", LayerKind::Concat, &["acc"], &["cat"])
            .layer("sum", LayerKind::EltwiseSum, &["cat"], &["sum"])
            .layer(
                "t",
                LayerKind::TensorTransform {
                    dir: TransDir::NchwToRcnb,
                },
                &["sum"],
                &["t"],
            );
        let back = NetDef::from_json(&def.to_json()).unwrap();
        assert_eq!(back.layers.len(), def.layers.len());
        match &back.layers[3].kind {
            LayerKind::BatchNorm { eps, momentum } => {
                assert_eq!(*eps, 1e-5);
                assert_eq!(*momentum, 0.9);
            }
            other => panic!("wrong kind {other:?}"),
        }
        match &back.layers[9].kind {
            LayerKind::TensorTransform { dir } => assert_eq!(*dir, TransDir::NchwToRcnb),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn unknown_layer_type_is_rejected() {
        let bad = r#"{"name": "x", "layers": [
            {"name": "l", "kind": {"type": "warp_drive"}, "bottoms": [], "tops": ["y"]}
        ]}"#;
        assert!(NetDef::from_json(bad).unwrap_err().contains("warp_drive"));
    }

    #[test]
    fn validate_accepts_well_formed() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_rejects_undefined_bottom() {
        let def = NetDef::new("bad").layer("relu", LayerKind::ReLU, &["ghost"], &["out"]);
        assert!(def.validate().is_err());
    }

    #[test]
    fn validate_rejects_redefined_top() {
        let def = NetDef::new("bad")
            .layer(
                "a",
                LayerKind::Input {
                    shape: vec![1],
                    with_labels: false,
                },
                &[],
                &["x"],
            )
            .layer("b", LayerKind::ReLU, &["x"], &["x"]);
        assert!(def.validate().is_err());
    }
}
