//! Declarative network definitions — the prototxt of swCaffe, as plain
//! serde-serialisable Rust values.

use serde::{Deserialize, Serialize};

/// Pooling operator selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolKind {
    Max,
    Average,
}

/// Data layout a convolution runs in (Sec. IV-C): NCHW uses the explicit
/// plan, RCNB the implicit plan. Transform layers convert at region
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ConvFormat {
    #[default]
    Nchw,
    Rcnb,
}

/// Direction of a tensor-transformation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransDir {
    NchwToRcnb,
    RcnbToNchw,
}

/// Layer kind plus its hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LayerKind {
    /// Produces a data blob of the given shape (and optionally a label
    /// blob of shape `[batch]` when `with_labels`).
    Input { shape: Vec<usize>, with_labels: bool },
    Convolution {
        num_output: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        format: ConvFormat,
    },
    Pooling { kernel: usize, stride: usize, pad: usize, method: PoolKind },
    InnerProduct { num_output: usize, bias: bool },
    ReLU,
    BatchNorm { eps: f32, momentum: f32 },
    Lrn { local_size: usize, alpha: f32, beta: f32, k: f32 },
    Dropout { ratio: f32 },
    SoftmaxWithLoss,
    Accuracy { top_k: usize },
    /// Channel-axis concatenation (GoogLeNet inception joins).
    Concat,
    /// Element-wise sum (ResNet shortcut joins).
    EltwiseSum,
    TensorTransform { dir: TransDir },
}

/// One layer instance in a network definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerDef {
    pub name: String,
    pub kind: LayerKind,
    pub bottoms: Vec<String>,
    pub tops: Vec<String>,
}

/// A whole network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetDef {
    pub name: String,
    pub layers: Vec<LayerDef>,
}

impl NetDef {
    pub fn new(name: impl Into<String>) -> Self {
        NetDef { name: name.into(), layers: Vec::new() }
    }

    /// Builder-style push.
    pub fn layer(
        mut self,
        name: impl Into<String>,
        kind: LayerKind,
        bottoms: &[&str],
        tops: &[&str],
    ) -> Self {
        self.layers.push(LayerDef {
            name: name.into(),
            kind,
            bottoms: bottoms.iter().map(|s| s.to_string()).collect(),
            tops: tops.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Serialise to JSON (the swCaffe interchange format in this repo).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("NetDef serialisation cannot fail")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Structural validation: every bottom must be produced by an earlier
    /// layer, and top names must not collide (no in-place rewrites).
    pub fn validate(&self) -> Result<(), String> {
        let mut known = std::collections::HashSet::new();
        for l in &self.layers {
            for b in &l.bottoms {
                if !known.contains(b.as_str()) {
                    return Err(format!("layer '{}' consumes undefined blob '{b}'", l.name));
                }
            }
            for t in &l.tops {
                if !known.insert(t.as_str()) {
                    return Err(format!("layer '{}' redefines blob '{t}'", l.name));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetDef {
        NetDef::new("tiny")
            .layer(
                "data",
                LayerKind::Input { shape: vec![2, 1, 4, 4], with_labels: true },
                &[],
                &["data", "label"],
            )
            .layer(
                "conv1",
                LayerKind::Convolution {
                    num_output: 3,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    bias: true,
                    format: ConvFormat::Nchw,
                },
                &["data"],
                &["conv1"],
            )
            .layer("relu1", LayerKind::ReLU, &["conv1"], &["relu1"], )
            .layer("loss", LayerKind::SoftmaxWithLoss, &["relu1", "label"], &["loss"])
    }

    #[test]
    fn json_roundtrip() {
        let def = tiny();
        let json = def.to_json();
        let back = NetDef::from_json(&json).unwrap();
        assert_eq!(back.name, "tiny");
        assert_eq!(back.layers.len(), 4);
        assert_eq!(back.layers[1].bottoms, vec!["data"]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_rejects_undefined_bottom() {
        let def = NetDef::new("bad").layer("relu", LayerKind::ReLU, &["ghost"], &["out"]);
        assert!(def.validate().is_err());
    }

    #[test]
    fn validate_rejects_redefined_top() {
        let def = NetDef::new("bad")
            .layer("a", LayerKind::Input { shape: vec![1], with_labels: false }, &[], &["x"])
            .layer("b", LayerKind::ReLU, &["x"], &["x"]);
        assert!(def.validate().is_err());
    }
}
