//! Pooling layer wrapper (Sec. IV-D).

use sw26010::CoreGroup;
use swdnn::pool::{self, PoolBwdOperands, PoolFwdOperands};
use swdnn::{PoolMethod, PoolShape};

use crate::blob::Blob;
use crate::layer::{expect_4d, Layer};
use crate::netdef::PoolKind;

pub struct PoolLayer {
    name: String,
    kernel: usize,
    stride: usize,
    pad: usize,
    method: PoolKind,
    shape: Option<PoolShape>,
    /// Max-pooling argmax (f32-encoded indices), kept for the backward pass.
    argmax: Vec<f32>,
}

impl PoolLayer {
    pub fn new(name: &str, kernel: usize, stride: usize, pad: usize, method: PoolKind) -> Self {
        PoolLayer {
            name: name.into(),
            kernel,
            stride,
            pad,
            method,
            shape: None,
            argmax: Vec::new(),
        }
    }

    fn pool_shape(&self) -> PoolShape {
        self.shape.expect("layer not set up")
    }
}

impl Layer for PoolLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Pooling"
    }

    fn setup(
        &mut self,
        bottoms: &[Vec<usize>],
        materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String> {
        let (b, c, h, w) = expect_4d(&bottoms[0], "Pooling")?;
        let shape = PoolShape {
            batch: b,
            channels: c,
            in_h: h,
            in_w: w,
            k: self.kernel,
            stride: self.stride,
            pad: self.pad,
            method: match self.method {
                PoolKind::Max => PoolMethod::Max,
                PoolKind::Average => PoolMethod::Average,
            },
        };
        self.shape = Some(shape);
        if materialize && matches!(shape.method, PoolMethod::Max) {
            self.argmax = vec![0.0; shape.output_len()];
        }
        Ok(vec![vec![b, c, shape.out_h(), shape.out_w()]])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let shape = self.pool_shape();
        if cg.mode().is_functional() {
            let is_max = matches!(shape.method, PoolMethod::Max);
            pool::forward(
                cg,
                &shape,
                Some(PoolFwdOperands {
                    input: bottoms[0].data(),
                    output: tops[0].data_mut(),
                    argmax: is_max.then_some(&mut self.argmax[..]),
                }),
            );
        } else {
            pool::forward(cg, &shape, None);
        }
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        if !pd[0] {
            return;
        }
        let shape = self.pool_shape();
        if cg.mode().is_functional() {
            let is_max = matches!(shape.method, PoolMethod::Max);
            pool::backward(
                cg,
                &shape,
                Some(PoolBwdOperands {
                    out_grad: tops[0].diff(),
                    argmax: is_max.then_some(&self.argmax[..]),
                    in_grad: bottoms[0].diff_mut(),
                }),
            );
        } else {
            pool::backward(cg, &shape, None);
        }
    }
}
