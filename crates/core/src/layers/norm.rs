//! Normalisation layers: BatchNorm (the paper's AlexNet refinement) and
//! across-channel LRN (GoogLeNet).

use sw26010::CoreGroup;
use swdnn::bn::{self, BnBwdOperands, BnFwdOperands};
use swdnn::lrn::{self, LrnParams};

use crate::blob::Blob;
use crate::layer::{expect_4d, Layer, Phase};

/// Batch normalisation with learnable scale/shift (gamma, beta) and
/// running statistics for inference.
pub struct BatchNormLayer {
    name: String,
    eps: f32,
    momentum: f32,
    dims: (usize, usize, usize), // (batch, channels, spatial)
    gamma: Blob,
    beta: Blob,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    save_mean: Vec<f32>,
    save_istd: Vec<f32>,
    phase: Phase,
}

impl BatchNormLayer {
    pub fn new(name: &str, eps: f32, momentum: f32) -> Self {
        BatchNormLayer {
            name: name.into(),
            eps,
            momentum,
            dims: (0, 0, 0),
            gamma: Blob::default(),
            beta: Blob::default(),
            running_mean: Vec::new(),
            running_var: Vec::new(),
            save_mean: Vec::new(),
            save_istd: Vec::new(),
            phase: Phase::Train,
        }
    }

    pub fn running_stats(&self) -> (&[f32], &[f32]) {
        (&self.running_mean, &self.running_var)
    }
}

impl Layer for BatchNormLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "BatchNorm"
    }

    fn setup(
        &mut self,
        bottoms: &[Vec<usize>],
        materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String> {
        let (b, c, h, w) = expect_4d(&bottoms[0], "BatchNorm")?;
        self.dims = (b, c, h * w);
        self.gamma = Blob::with_mode(&[c], materialize);
        self.beta = Blob::with_mode(&[c], materialize);
        if materialize {
            self.gamma.data_mut().fill(1.0);
            self.running_mean = vec![0.0; c];
            self.running_var = vec![1.0; c];
            self.save_mean = vec![0.0; c];
            self.save_istd = vec![0.0; c];
        }
        Ok(vec![bottoms[0].clone()])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let (b, c, s) = self.dims;
        if matches!(self.phase, Phase::Test) {
            // Inference: normalise with the running statistics.
            if cg.mode().is_functional() {
                bn::forward_inference(
                    cg,
                    b,
                    c,
                    s,
                    self.eps,
                    Some((
                        bottoms[0].data(),
                        self.gamma.data(),
                        self.beta.data(),
                        &self.running_mean,
                        &self.running_var,
                        tops[0].data_mut(),
                    )),
                );
            } else {
                bn::forward_inference(cg, b, c, s, self.eps, None);
            }
            return;
        }
        if cg.mode().is_functional() {
            bn::forward(
                cg,
                b,
                c,
                s,
                self.eps,
                Some(BnFwdOperands {
                    input: bottoms[0].data(),
                    gamma: self.gamma.data(),
                    beta: self.beta.data(),
                    output: tops[0].data_mut(),
                    save_mean: &mut self.save_mean,
                    save_istd: &mut self.save_istd,
                }),
            );
            // Host-side running-stat update (tiny; solver bookkeeping).
            for ch in 0..c {
                let mean = self.save_mean[ch];
                let istd = self.save_istd[ch] as f64;
                let var = (1.0 / (istd * istd) - self.eps as f64) as f32;
                self.running_mean[ch] =
                    self.momentum * self.running_mean[ch] + (1.0 - self.momentum) * mean;
                self.running_var[ch] =
                    self.momentum * self.running_var[ch] + (1.0 - self.momentum) * var;
            }
        } else {
            bn::forward(cg, b, c, s, self.eps, None);
        }
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        let (b, c, s) = self.dims;
        if cg.mode().is_functional() {
            let (x, dx) = bottoms[0].data_and_diff_mut();
            let (g_data, g_diff) = self.gamma.data_and_diff_mut();
            bn::backward(
                cg,
                b,
                c,
                s,
                Some(BnBwdOperands {
                    input: x,
                    gamma: g_data,
                    out_grad: tops[0].diff(),
                    save_mean: &self.save_mean,
                    save_istd: &self.save_istd,
                    in_grad: dx,
                    gamma_grad: g_diff,
                    beta_grad: self.beta.diff_mut(),
                }),
            );
            let _ = pd;
        } else {
            bn::backward(cg, b, c, s, None);
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Blob> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Blob> {
        vec![&self.gamma, &self.beta]
    }

    fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    fn state(&self) -> Vec<&[f32]> {
        vec![&self.running_mean, &self.running_var]
    }

    fn state_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }
}

/// Across-channel local response normalisation.
pub struct LrnLayer {
    name: String,
    params: LrnParams,
    dims: (usize, usize, usize, usize),
}

impl LrnLayer {
    pub fn new(name: &str, local_size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        LrnLayer {
            name: name.into(),
            params: LrnParams {
                local_size,
                alpha,
                beta,
                k,
            },
            dims: (0, 0, 0, 0),
        }
    }
}

impl Layer for LrnLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "LRN"
    }

    fn setup(&mut self, bottoms: &[Vec<usize>], _m: bool) -> Result<Vec<Vec<usize>>, String> {
        let (b, c, h, w) = expect_4d(&bottoms[0], "LRN")?;
        self.dims = (b, c, h, w);
        Ok(vec![bottoms[0].clone()])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let (b, c, h, w) = self.dims;
        let io = cg
            .mode()
            .is_functional()
            .then(|| (bottoms[0].data(), tops[0].data_mut()));
        lrn::forward(cg, b, c, h, w, self.params, io);
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        if !pd[0] {
            return;
        }
        let (b, c, h, w) = self.dims;
        if cg.mode().is_functional() {
            let (x, dx) = bottoms[0].data_and_diff_mut();
            lrn::backward(cg, b, c, h, w, self.params, Some((x, tops[0].diff(), dx)));
        } else {
            lrn::backward(cg, b, c, h, w, self.params, None);
        }
    }
}
