//! Layer implementations and the `LayerKind` -> `Box<dyn Layer>` factory.

pub mod conv;
pub mod fused;
pub mod ip;
pub mod loss;
pub mod norm;
pub mod pool;
pub mod simple;

pub use conv::ConvLayer;
pub use fused::FusedConvBnReluLayer;
pub use ip::InnerProductLayer;
pub use loss::{AccuracyLayer, SoftmaxLossLayer};
pub use norm::{BatchNormLayer, LrnLayer};
pub use pool::PoolLayer;
pub use simple::{
    ConcatLayer, DropoutLayer, EltwiseSumLayer, InputLayer, ReluLayer, TransformLayer,
};

use crate::layer::Layer;
use crate::netdef::{LayerDef, LayerKind};

/// Instantiate a layer from its definition with the default base seed.
pub fn build(def: &LayerDef) -> Box<dyn Layer> {
    build_seeded(def, 0)
}

/// Instantiate a layer from its definition; `base_seed` parameterises
/// every filler-initialised layer (convolution, inner product) so a whole
/// network's weights are reproducible from one explicit seed.
pub fn build_seeded(def: &LayerDef, base_seed: u64) -> Box<dyn Layer> {
    let name = def.name.as_str();
    match &def.kind {
        LayerKind::Input { shape, with_labels } => {
            Box::new(InputLayer::new(name, shape.clone(), *with_labels))
        }
        LayerKind::Convolution {
            num_output,
            kernel,
            stride,
            pad,
            bias,
            format,
        } => Box::new(
            ConvLayer::new(name, *num_output, *kernel, *stride, *pad, *bias, *format)
                .with_base_seed(base_seed),
        ),
        LayerKind::Pooling {
            kernel,
            stride,
            pad,
            method,
        } => Box::new(PoolLayer::new(name, *kernel, *stride, *pad, *method)),
        LayerKind::InnerProduct { num_output, bias } => {
            Box::new(InnerProductLayer::new(name, *num_output, *bias).with_base_seed(base_seed))
        }
        LayerKind::ReLU => Box::new(ReluLayer::new(name)),
        LayerKind::BatchNorm { eps, momentum } => {
            Box::new(BatchNormLayer::new(name, *eps, *momentum))
        }
        LayerKind::FusedConvBnRelu {
            num_output,
            kernel,
            stride,
            pad,
            bias,
            eps,
        } => Box::new(
            FusedConvBnReluLayer::new(name, *num_output, *kernel, *stride, *pad, *bias, *eps)
                .with_base_seed(base_seed),
        ),
        LayerKind::Lrn {
            local_size,
            alpha,
            beta,
            k,
        } => Box::new(LrnLayer::new(name, *local_size, *alpha, *beta, *k)),
        LayerKind::Dropout { ratio } => Box::new(DropoutLayer::new(name, *ratio)),
        LayerKind::SoftmaxWithLoss => Box::new(SoftmaxLossLayer::new(name)),
        LayerKind::Accuracy { top_k } => Box::new(AccuracyLayer::new(name, *top_k)),
        LayerKind::Concat => Box::new(ConcatLayer::new(name)),
        LayerKind::EltwiseSum => Box::new(EltwiseSumLayer::new(name)),
        LayerKind::TensorTransform { dir } => Box::new(TransformLayer::new(name, *dir)),
    }
}
