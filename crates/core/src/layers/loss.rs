//! Loss and metric layers: SoftmaxWithLoss and Accuracy.

use sw26010::CoreGroup;
use swdnn::softmax::{self, SoftmaxBwdOperands, SoftmaxFwdOperands};

use crate::blob::Blob;
use crate::layer::Layer;

/// Softmax + multinomial cross-entropy (Caffe's `SoftmaxWithLoss`).
/// Bottoms: `[logits (B, C), labels (B)]`; top: `[loss (1)]`.
pub struct SoftmaxLossLayer {
    name: String,
    batch: usize,
    classes: usize,
    probs: Vec<f32>,
    losses: Vec<f32>,
}

impl SoftmaxLossLayer {
    pub fn new(name: &str) -> Self {
        SoftmaxLossLayer {
            name: name.into(),
            batch: 0,
            classes: 0,
            probs: Vec::new(),
            losses: Vec::new(),
        }
    }

    /// Class probabilities of the last forward pass (for inspection).
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }
}

impl Layer for SoftmaxLossLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "SoftmaxWithLoss"
    }

    fn is_loss(&self) -> bool {
        true
    }

    fn setup(
        &mut self,
        bottoms: &[Vec<usize>],
        materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String> {
        if bottoms.len() != 2 {
            return Err("SoftmaxWithLoss needs [logits, labels]".into());
        }
        self.batch = bottoms[0][0];
        self.classes = bottoms[0][1..].iter().product();
        if bottoms[1] != vec![self.batch] {
            return Err(format!("label blob must be [batch], got {:?}", bottoms[1]));
        }
        if materialize {
            self.probs = vec![0.0; self.batch * self.classes];
            self.losses = vec![0.0; self.batch];
        }
        Ok(vec![vec![1]])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        if cg.mode().is_functional() {
            softmax::forward(
                cg,
                self.batch,
                self.classes,
                Some(SoftmaxFwdOperands {
                    logits: bottoms[0].data(),
                    labels: bottoms[1].data(),
                    probs: &mut self.probs,
                    losses: &mut self.losses,
                }),
            );
            // Final scalar reduction runs on the MPE (tiny).
            cg.mpe_compute(self.batch as u64);
            let mean = self.losses.iter().map(|v| *v as f64).sum::<f64>() / self.batch as f64;
            tops[0].data_mut()[0] = mean as f32;
        } else {
            softmax::forward(cg, self.batch, self.classes, None);
            cg.mpe_compute(self.batch as u64);
        }
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        _tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        if !pd[0] {
            return;
        }
        let w = 1.0 / self.batch as f32;
        if cg.mode().is_functional() {
            // Labels blob precedes logits diff in the borrow order.
            let labels: Vec<f32> = bottoms[1].data().to_vec();
            softmax::backward(
                cg,
                self.batch,
                self.classes,
                w,
                Some(SoftmaxBwdOperands {
                    probs: &self.probs,
                    labels: &labels,
                    in_grad: bottoms[0].diff_mut(),
                }),
            );
        } else {
            softmax::backward(cg, self.batch, self.classes, w, None);
        }
    }
}

/// Top-k accuracy metric (host-evaluated; no backward).
pub struct AccuracyLayer {
    name: String,
    top_k: usize,
    batch: usize,
    classes: usize,
}

impl AccuracyLayer {
    pub fn new(name: &str, top_k: usize) -> Self {
        AccuracyLayer {
            name: name.into(),
            top_k: top_k.max(1),
            batch: 0,
            classes: 0,
        }
    }
}

impl Layer for AccuracyLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Accuracy"
    }

    fn setup(&mut self, bottoms: &[Vec<usize>], _m: bool) -> Result<Vec<Vec<usize>>, String> {
        if bottoms.len() != 2 {
            return Err("Accuracy needs [scores, labels]".into());
        }
        self.batch = bottoms[0][0];
        self.classes = bottoms[0][1..].iter().product();
        Ok(vec![vec![1]])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        // Metric bookkeeping runs on the MPE.
        cg.mpe_compute((self.batch * self.classes) as u64);
        if !cg.mode().is_functional() {
            return;
        }
        let scores = bottoms[0].data();
        let labels = bottoms[1].data();
        let mut hits = 0usize;
        for b in 0..self.batch {
            let row = &scores[b * self.classes..][..self.classes];
            let label = labels[b] as usize;
            let target = row[label];
            let better = row.iter().filter(|v| **v > target).count();
            if better < self.top_k {
                hits += 1;
            }
        }
        tops[0].data_mut()[0] = hits as f32 / self.batch as f32;
    }

    fn backward(&mut self, _cg: &mut CoreGroup, _t: &[&Blob], _b: &mut [&mut Blob], _p: &[bool]) {}
}
