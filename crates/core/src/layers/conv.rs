//! Convolution layer: wraps the explicit (NCHW) or implicit (RCNB) plan,
//! chosen per layer by the model builders via `swdnn::conv`'s strategy
//! chooser (Sec. IV-B / VI-A).

use sw26010::CoreGroup;
use swdnn::conv_explicit::{ConvBwdOperands, ConvFwdOperands};
use swdnn::conv_implicit::{ImplicitBwdOperands, ImplicitFwdOperands};
use swdnn::elementwise as ew;
use swdnn::{conv_explicit, conv_implicit, ConvShape};

use crate::blob::Blob;
use crate::filler::Filler;
use crate::layer::{expect_4d, Layer};
use crate::netdef::ConvFormat;

/// Convolution layer parameters and state.
pub struct ConvLayer {
    name: String,
    num_output: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    format: ConvFormat,
    shape: Option<ConvShape>,
    /// `(N_o, N_i, K, K)` for NCHW, `(K, K, N_o, N_i)` for RCNB.
    weights: Blob,
    bias: Option<Blob>,
    seed: u64,
}

impl ConvLayer {
    pub fn new(
        name: &str,
        num_output: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        format: ConvFormat,
    ) -> Self {
        ConvLayer {
            name: name.into(),
            num_output,
            kernel,
            stride,
            pad,
            format,
            shape: None,
            weights: Blob::default(),
            bias: bias.then(Blob::default),
            seed: crate::rng::layer_seed(0, name),
        }
    }

    /// Re-derive the filler seed from an explicit run-level base seed
    /// (see [`crate::rng::layer_seed`]). Must be called before `setup`.
    pub fn with_base_seed(mut self, base: u64) -> Self {
        self.seed = crate::rng::layer_seed(base, &self.name);
        self
    }

    pub fn conv_shape(&self) -> ConvShape {
        self.shape.expect("layer not set up")
    }

    pub fn format(&self) -> ConvFormat {
        self.format
    }
}

impl Layer for ConvLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Convolution"
    }

    fn setup(
        &mut self,
        bottoms: &[Vec<usize>],
        materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String> {
        let (b, c, h, w) = expect_4d(&bottoms[0], "Convolution")?;
        let shape = ConvShape {
            batch: b,
            in_c: c,
            in_h: h,
            in_w: w,
            out_c: self.num_output,
            k: self.kernel,
            stride: self.stride,
            pad: self.pad,
        };
        shape.validate()?;
        self.shape = Some(shape);
        self.weights = Blob::with_mode(
            &match self.format {
                ConvFormat::Nchw => vec![shape.out_c, shape.in_c, shape.k, shape.k],
                ConvFormat::Rcnb => vec![shape.k, shape.k, shape.out_c, shape.in_c],
            },
            materialize,
        );
        if materialize {
            let fan_in = shape.in_c * shape.k * shape.k;
            Filler::Msra.fill(self.weights.data_mut(), fan_in, self.seed);
        }
        if let Some(bias) = &mut self.bias {
            *bias = Blob::with_mode(&[shape.out_c], materialize);
        }
        Ok(vec![vec![b, shape.out_c, shape.out_h(), shape.out_w()]])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let shape = self.conv_shape();
        let functional = cg.mode().is_functional();
        match self.format {
            ConvFormat::Nchw => {
                let ops = functional.then(|| ConvFwdOperands {
                    input: bottoms[0].data(),
                    weights: self.weights.data(),
                    output: tops[0].data_mut(),
                });
                conv_explicit::forward(cg, &shape, ops);
            }
            ConvFormat::Rcnb => {
                let ops = functional.then(|| ImplicitFwdOperands {
                    input: bottoms[0].data(),
                    weights: self.weights.data(),
                    output: tops[0].data_mut(),
                });
                conv_implicit::forward(cg, &shape, ops);
            }
        }
        if let Some(bias) = &self.bias {
            let spatial = shape.out_h() * shape.out_w();
            match self.format {
                // NCHW rows are (b, c) x spatial; RCNB rows are (yx, c) x batch.
                ConvFormat::Nchw => {
                    let io = functional.then(|| (bias.data(), tops[0].data_mut()));
                    ew::bias_forward(cg, shape.batch, shape.out_c, spatial, io);
                }
                ConvFormat::Rcnb => {
                    let io = functional.then(|| (bias.data(), tops[0].data_mut()));
                    ew::bias_forward(cg, spatial, shape.out_c, shape.batch, io);
                }
            }
        }
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        let shape = self.conv_shape();
        let functional = cg.mode().is_functional();
        let spatial = shape.out_h() * shape.out_w();
        if let Some(bias) = &mut self.bias {
            match self.format {
                ConvFormat::Nchw => {
                    let io = functional.then(|| (tops[0].diff(), bias.diff_mut()));
                    ew::bias_backward(cg, shape.batch, shape.out_c, spatial, io);
                }
                ConvFormat::Rcnb => {
                    let io = functional.then(|| (tops[0].diff(), bias.diff_mut()));
                    ew::bias_backward(cg, spatial, shape.out_c, shape.batch, io);
                }
            }
        }
        match self.format {
            ConvFormat::Nchw => {
                if functional {
                    let (w_data, w_diff) = self.weights.data_and_diff_mut();
                    let (data, diff) = bottoms[0].data_and_diff_mut();
                    conv_explicit::backward(
                        cg,
                        &shape,
                        Some(ConvBwdOperands {
                            input: data,
                            weights: w_data,
                            out_grad: tops[0].diff(),
                            in_grad: pd[0].then_some(diff),
                            w_grad: Some(w_diff),
                        }),
                    );
                } else {
                    // Charge exactly the passes that would run.
                    cg.charge(conv_explicit::backward_weights_time(&shape));
                    if pd[0] {
                        cg.charge(conv_explicit::backward_input_time(&shape));
                    }
                }
            }
            ConvFormat::Rcnb => {
                if functional {
                    let (w_data, w_diff) = self.weights.data_and_diff_mut();
                    let (data, diff) = bottoms[0].data_and_diff_mut();
                    conv_implicit::backward(
                        cg,
                        &shape,
                        Some(ImplicitBwdOperands {
                            input: data,
                            weights: w_data,
                            out_grad: tops[0].diff(),
                            in_grad: pd[0].then_some(diff),
                            w_grad: Some(w_diff),
                        }),
                    );
                } else {
                    cg.charge(conv_implicit::backward_weights_time(&shape));
                    if pd[0] {
                        cg.charge(conv_implicit::backward_input_time(&shape));
                    }
                }
            }
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Blob> {
        let mut out = vec![&mut self.weights];
        if let Some(b) = &mut self.bias {
            out.push(b);
        }
        out
    }

    fn params(&self) -> Vec<&Blob> {
        let mut out = vec![&self.weights];
        if let Some(b) = &self.bias {
            out.push(b);
        }
        out
    }
}
