//! Structural and element-wise layers: Input, ReLU, Dropout, EltwiseSum,
//! Concat, TensorTransform.

use sw26010::CoreGroup;
use swdnn::elementwise as ew;
use swdnn::transform::{self, TransShape};

use crate::blob::Blob;
use crate::layer::{expect_4d, Layer, Phase};
use crate::netdef::TransDir;

// ---------------------------------------------------------------------

/// Source layer: produces the data blob (and optionally a label blob);
/// contents are injected by the trainer.
pub struct InputLayer {
    name: String,
    shape: Vec<usize>,
    with_labels: bool,
}

impl InputLayer {
    pub fn new(name: &str, shape: Vec<usize>, with_labels: bool) -> Self {
        InputLayer {
            name: name.into(),
            shape,
            with_labels,
        }
    }
}

impl Layer for InputLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Input"
    }

    fn setup(
        &mut self,
        bottoms: &[Vec<usize>],
        _materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String> {
        if !bottoms.is_empty() {
            return Err("Input layer takes no bottoms".into());
        }
        let mut tops = vec![self.shape.clone()];
        if self.with_labels {
            tops.push(vec![self.shape[0]]);
        }
        Ok(tops)
    }

    fn forward(&mut self, _cg: &mut CoreGroup, _bottoms: &[&Blob], _tops: &mut [&mut Blob]) {}

    fn backward(&mut self, _cg: &mut CoreGroup, _t: &[&Blob], _b: &mut [&mut Blob], _p: &[bool]) {}
}

// ---------------------------------------------------------------------

/// Rectified linear unit.
pub struct ReluLayer {
    name: String,
    len: usize,
}

impl ReluLayer {
    pub fn new(name: &str) -> Self {
        ReluLayer {
            name: name.into(),
            len: 0,
        }
    }
}

impl Layer for ReluLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "ReLU"
    }

    fn setup(&mut self, bottoms: &[Vec<usize>], _m: bool) -> Result<Vec<Vec<usize>>, String> {
        self.len = bottoms[0].iter().product();
        Ok(vec![bottoms[0].clone()])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let io = cg
            .mode()
            .is_functional()
            .then(|| (bottoms[0].data(), tops[0].data_mut()));
        ew::relu_forward(cg, self.len, io);
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        if !pd[0] {
            return;
        }
        if cg.mode().is_functional() {
            let (x, dx) = bottoms[0].data_and_diff_mut();
            ew::relu_backward(cg, self.len, Some((tops[0].diff(), x, dx)));
        } else {
            ew::relu_backward(cg, self.len, None);
        }
    }
}

// ---------------------------------------------------------------------

/// Dropout: the mask is drawn host-side each forward pass (Bernoulli,
/// scaled by `1/(1-ratio)`), applied on the CPE cluster.
pub struct DropoutLayer {
    name: String,
    ratio: f32,
    len: usize,
    mask: Vec<f32>,
    rng_state: u64,
    phase: Phase,
}

impl DropoutLayer {
    pub fn new(name: &str, ratio: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&ratio),
            "dropout ratio must be in [0, 1)"
        );
        DropoutLayer {
            name: name.into(),
            ratio,
            len: 0,
            mask: Vec::new(),
            rng_state: 0x1234_5678,
            phase: Phase::Train,
        }
    }

    fn draw_mask(&mut self) {
        let scale = 1.0 / (1.0 - self.ratio);
        let mut s = self.rng_state;
        for m in self.mask.iter_mut() {
            // xorshift64*
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let u = (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32;
            *m = if u < self.ratio { 0.0 } else { scale };
        }
        self.rng_state = s;
    }
}

impl Layer for DropoutLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Dropout"
    }

    fn setup(
        &mut self,
        bottoms: &[Vec<usize>],
        materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String> {
        self.len = bottoms[0].iter().product();
        if materialize {
            self.mask = vec![0.0; self.len];
        }
        Ok(vec![bottoms[0].clone()])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        match self.phase {
            Phase::Train => {
                if cg.mode().is_functional() {
                    self.draw_mask();
                    ew::apply_mask(
                        cg,
                        self.len,
                        Some((bottoms[0].data(), &self.mask, tops[0].data_mut())),
                    );
                } else {
                    ew::apply_mask(cg, self.len, None);
                }
            }
            // Inverted dropout: inference is the identity.
            Phase::Test => {
                if cg.mode().is_functional() {
                    ew::copy_blocks(
                        cg,
                        self.len,
                        1,
                        Some((bottoms[0].data(), 0, 0, tops[0].data_mut(), 0, 0)),
                    );
                } else {
                    ew::copy_blocks(cg, self.len, 1, None);
                }
            }
        }
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        if !pd[0] {
            return;
        }
        if cg.mode().is_functional() {
            ew::apply_mask(
                cg,
                self.len,
                Some((tops[0].diff(), &self.mask, bottoms[0].diff_mut())),
            );
        } else {
            ew::apply_mask(cg, self.len, None);
        }
    }

    fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    fn rng_state(&self) -> Option<u64> {
        Some(self.rng_state)
    }

    fn set_rng_state(&mut self, state: u64) {
        self.rng_state = state;
    }
}

// ---------------------------------------------------------------------

/// Element-wise sum of two bottoms (ResNet shortcut join).
pub struct EltwiseSumLayer {
    name: String,
    len: usize,
}

impl EltwiseSumLayer {
    pub fn new(name: &str) -> Self {
        EltwiseSumLayer {
            name: name.into(),
            len: 0,
        }
    }
}

impl Layer for EltwiseSumLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "EltwiseSum"
    }

    fn setup(&mut self, bottoms: &[Vec<usize>], _m: bool) -> Result<Vec<Vec<usize>>, String> {
        if bottoms.len() != 2 || bottoms[0] != bottoms[1] {
            return Err(format!(
                "EltwiseSum needs two equal-shaped bottoms, got {bottoms:?}"
            ));
        }
        self.len = bottoms[0].iter().product();
        Ok(vec![bottoms[0].clone()])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let io = cg
            .mode()
            .is_functional()
            .then(|| (bottoms[0].data(), bottoms[1].data(), tops[0].data_mut()));
        ew::add(cg, self.len, io);
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        // d/d(a) = d/d(b) = dy: plain copies.
        for i in 0..2 {
            if !pd[i] {
                continue;
            }
            if cg.mode().is_functional() {
                ew::copy_blocks(
                    cg,
                    self.len,
                    1,
                    Some((tops[0].diff(), 0, 0, bottoms[i].diff_mut(), 0, 0)),
                );
            } else {
                ew::copy_blocks(cg, self.len, 1, None);
            }
        }
    }
}

// ---------------------------------------------------------------------

/// Channel-axis concatenation (GoogLeNet inception joins).
pub struct ConcatLayer {
    name: String,
    batch: usize,
    spatial: usize,
    channels: Vec<usize>,
}

impl ConcatLayer {
    pub fn new(name: &str) -> Self {
        ConcatLayer {
            name: name.into(),
            batch: 0,
            spatial: 0,
            channels: Vec::new(),
        }
    }
}

impl Layer for ConcatLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Concat"
    }

    fn setup(&mut self, bottoms: &[Vec<usize>], _m: bool) -> Result<Vec<Vec<usize>>, String> {
        if bottoms.is_empty() {
            return Err("Concat needs at least one bottom".into());
        }
        let (b, _, h, w) = expect_4d(&bottoms[0], "Concat")?;
        self.batch = b;
        self.spatial = h * w;
        self.channels.clear();
        for shape in bottoms {
            let (bb, c, hh, ww) = expect_4d(shape, "Concat")?;
            if bb != b || hh * ww != self.spatial {
                return Err(format!("Concat bottoms disagree: {bottoms:?}"));
            }
            self.channels.push(c);
        }
        let total: usize = self.channels.iter().sum();
        Ok(vec![vec![b, total, bottoms[0][2], bottoms[0][3]]])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let total: usize = self.channels.iter().sum();
        let mut c_off = 0;
        for (i, &c) in self.channels.iter().enumerate() {
            let block = c * self.spatial;
            if cg.mode().is_functional() {
                ew::copy_blocks(
                    cg,
                    block,
                    self.batch,
                    Some((
                        bottoms[i].data(),
                        0,
                        block,
                        tops[0].data_mut(),
                        c_off * self.spatial,
                        total * self.spatial,
                    )),
                );
            } else {
                ew::copy_blocks(cg, block, self.batch, None);
            }
            c_off += c;
        }
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        let total: usize = self.channels.iter().sum();
        let mut c_off = 0;
        for (i, &c) in self.channels.iter().enumerate() {
            let block = c * self.spatial;
            if pd[i] {
                if cg.mode().is_functional() {
                    ew::copy_blocks(
                        cg,
                        block,
                        self.batch,
                        Some((
                            tops[0].diff(),
                            c_off * self.spatial,
                            total * self.spatial,
                            bottoms[i].diff_mut(),
                            0,
                            block,
                        )),
                    );
                } else {
                    ew::copy_blocks(cg, block, self.batch, None);
                }
            }
            c_off += c;
        }
    }
}

// ---------------------------------------------------------------------

/// Tensor-transformation layer (Sec. IV-C): NCHW <-> RCNB around implicit
/// convolution regions. Shapes are carried in NCHW terms regardless of
/// the physical layout.
pub struct TransformLayer {
    name: String,
    dir: TransDir,
    shape: TransShape,
}

impl TransformLayer {
    pub fn new(name: &str, dir: TransDir) -> Self {
        TransformLayer {
            name: name.into(),
            dir,
            shape: TransShape {
                batch: 0,
                channels: 0,
                height: 0,
                width: 0,
            },
        }
    }
}

impl Layer for TransformLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "TensorTransform"
    }

    fn setup(&mut self, bottoms: &[Vec<usize>], _m: bool) -> Result<Vec<Vec<usize>>, String> {
        let (b, c, h, w) = expect_4d(&bottoms[0], "TensorTransform")?;
        self.shape = TransShape {
            batch: b,
            channels: c,
            height: h,
            width: w,
        };
        Ok(vec![bottoms[0].clone()])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let io = cg
            .mode()
            .is_functional()
            .then(|| (bottoms[0].data(), tops[0].data_mut()));
        match self.dir {
            TransDir::NchwToRcnb => transform::nchw_to_rcnb(cg, &self.shape, io),
            TransDir::RcnbToNchw => transform::rcnb_to_nchw(cg, &self.shape, io),
        };
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        if !pd[0] {
            return;
        }
        let io = cg
            .mode()
            .is_functional()
            .then(|| (tops[0].diff(), bottoms[0].diff_mut()));
        // The adjoint of a permutation is its inverse.
        match self.dir {
            TransDir::NchwToRcnb => transform::rcnb_to_nchw(cg, &self.shape, io),
            TransDir::RcnbToNchw => transform::nchw_to_rcnb(cg, &self.shape, io),
        };
    }
}
