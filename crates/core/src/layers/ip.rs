//! Inner-product (fully-connected) layer: the register-communication GEMM
//! applied to `(batch, features)` matrices (Sec. IV-A).

use sw26010::CoreGroup;
use swdnn::elementwise as ew;
use swdnn::gemm::{self, GemmOperands};
use swdnn::{GemmDims, Trans};

use crate::blob::Blob;
use crate::filler::Filler;
use crate::layer::Layer;

/// Fully-connected layer: `Y (B x out) = X (B x D) * W^T + bias`.
pub struct InnerProductLayer {
    name: String,
    num_output: usize,
    in_features: usize,
    batch: usize,
    /// `(num_output, in_features)` row-major, Caffe's layout.
    weights: Blob,
    bias: Option<Blob>,
    seed: u64,
}

impl InnerProductLayer {
    pub fn new(name: &str, num_output: usize, bias: bool) -> Self {
        InnerProductLayer {
            name: name.into(),
            num_output,
            in_features: 0,
            batch: 0,
            weights: Blob::default(),
            bias: bias.then(Blob::default),
            seed: crate::rng::layer_seed(0, name),
        }
    }

    /// Re-derive the filler seed from an explicit run-level base seed
    /// (see [`crate::rng::layer_seed`]). Must be called before `setup`.
    pub fn with_base_seed(mut self, base: u64) -> Self {
        self.seed = crate::rng::layer_seed(base, &self.name);
        self
    }
}

impl Layer for InnerProductLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "InnerProduct"
    }

    fn setup(
        &mut self,
        bottoms: &[Vec<usize>],
        materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String> {
        let shape = &bottoms[0];
        if shape.is_empty() {
            return Err("InnerProduct bottom must have at least one axis".into());
        }
        self.batch = shape[0];
        self.in_features = shape[1..].iter().product();
        self.weights = Blob::with_mode(&[self.num_output, self.in_features], materialize);
        if materialize {
            Filler::Xavier.fill(self.weights.data_mut(), self.in_features, self.seed);
        }
        if let Some(bias) = &mut self.bias {
            *bias = Blob::with_mode(&[self.num_output], materialize);
        }
        Ok(vec![vec![self.batch, self.num_output]])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let functional = cg.mode().is_functional();
        let dims = GemmDims::new(self.batch, self.num_output, self.in_features);
        if functional {
            gemm::gemm(
                cg,
                dims,
                Trans::No,
                Trans::Yes,
                0.0,
                Some(GemmOperands {
                    a: bottoms[0].data(),
                    b: self.weights.data(),
                    c: tops[0].data_mut(),
                }),
            );
        } else {
            gemm::gemm(cg, dims, Trans::No, Trans::Yes, 0.0, None);
        }
        if let Some(bias) = &self.bias {
            let io = functional.then(|| (bias.data(), tops[0].data_mut()));
            ew::bias_rows(cg, self.batch, self.num_output, io);
        }
    }

    fn backward(
        &mut self,
        cg: &mut CoreGroup,
        tops: &[&Blob],
        bottoms: &mut [&mut Blob],
        pd: &[bool],
    ) {
        let functional = cg.mode().is_functional();
        if let Some(bias) = &mut self.bias {
            let io = functional.then(|| (tops[0].diff(), bias.diff_mut()));
            ew::col_sums(cg, self.batch, self.num_output, io);
        }
        // dW (out x D) = dY^T (out x B) x X (B x D).
        let dw_dims = GemmDims::new(self.num_output, self.in_features, self.batch);
        if functional {
            let (x_data, x_diff) = bottoms[0].data_and_diff_mut();
            let (w_data, w_diff) = self.weights.data_and_diff_mut();
            gemm::gemm(
                cg,
                dw_dims,
                Trans::Yes,
                Trans::No,
                0.0,
                Some(GemmOperands {
                    a: tops[0].diff(),
                    b: x_data,
                    c: w_diff,
                }),
            );
            if pd[0] {
                // dX (B x D) = dY (B x out) x W (out x D).
                gemm::gemm(
                    cg,
                    GemmDims::new(self.batch, self.in_features, self.num_output),
                    Trans::No,
                    Trans::No,
                    0.0,
                    Some(GemmOperands {
                        a: tops[0].diff(),
                        b: w_data,
                        c: x_diff,
                    }),
                );
            }
        } else {
            gemm::gemm(cg, dw_dims, Trans::Yes, Trans::No, 0.0, None);
            if pd[0] {
                gemm::gemm(
                    cg,
                    GemmDims::new(self.batch, self.in_features, self.num_output),
                    Trans::No,
                    Trans::No,
                    0.0,
                    None,
                );
            }
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Blob> {
        let mut out = vec![&mut self.weights];
        if let Some(b) = &mut self.bias {
            out.push(b);
        }
        out
    }

    fn params(&self) -> Vec<&Blob> {
        let mut out = vec![&self.weights];
        if let Some(b) = &self.bias {
            out.push(b);
        }
        out
    }
}
