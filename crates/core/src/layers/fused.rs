//! Fused conv+BN+ReLU layer — the inference-only layer `swserve`'s graph
//! optimizer emits when it collapses a Convolution → BatchNorm → ReLU
//! chain. Parameters keep the unfused layers' order (conv weights, conv
//! bias, BN gamma, BN beta) and the BN running statistics live in
//! `state()`, so frozen weights transfer mechanically from the source
//! layers.

use sw26010::CoreGroup;
use swdnn::fused::{self, ConvBnReluOperands};
use swdnn::ConvShape;

use crate::blob::Blob;
use crate::filler::Filler;
use crate::layer::{expect_4d, Layer};

pub struct FusedConvBnReluLayer {
    name: String,
    num_output: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    eps: f32,
    shape: Option<ConvShape>,
    /// `(N_o, N_i, K, K)` — the fused path always runs the explicit
    /// (NCHW) conv plan.
    weights: Blob,
    bias: Option<Blob>,
    gamma: Blob,
    beta: Blob,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    seed: u64,
}

impl FusedConvBnReluLayer {
    pub fn new(
        name: &str,
        num_output: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        eps: f32,
    ) -> Self {
        FusedConvBnReluLayer {
            name: name.into(),
            num_output,
            kernel,
            stride,
            pad,
            eps,
            shape: None,
            weights: Blob::default(),
            bias: bias.then(Blob::default),
            gamma: Blob::default(),
            beta: Blob::default(),
            running_mean: Vec::new(),
            running_var: Vec::new(),
            seed: crate::rng::layer_seed(0, name),
        }
    }

    pub fn with_base_seed(mut self, base: u64) -> Self {
        self.seed = crate::rng::layer_seed(base, &self.name);
        self
    }
}

impl Layer for FusedConvBnReluLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "FusedConvBnRelu"
    }

    fn setup(
        &mut self,
        bottoms: &[Vec<usize>],
        materialize: bool,
    ) -> Result<Vec<Vec<usize>>, String> {
        let (b, c, h, w) = expect_4d(&bottoms[0], "FusedConvBnRelu")?;
        let shape = ConvShape {
            batch: b,
            in_c: c,
            in_h: h,
            in_w: w,
            out_c: self.num_output,
            k: self.kernel,
            stride: self.stride,
            pad: self.pad,
        };
        shape.validate()?;
        self.shape = Some(shape);
        self.weights = Blob::with_mode(&[shape.out_c, shape.in_c, shape.k, shape.k], materialize);
        if materialize {
            let fan_in = shape.in_c * shape.k * shape.k;
            Filler::Msra.fill(self.weights.data_mut(), fan_in, self.seed);
        }
        if let Some(bias) = &mut self.bias {
            *bias = Blob::with_mode(&[shape.out_c], materialize);
        }
        self.gamma = Blob::with_mode(&[shape.out_c], materialize);
        self.beta = Blob::with_mode(&[shape.out_c], materialize);
        if materialize {
            self.gamma.data_mut().fill(1.0);
            self.running_mean = vec![0.0; shape.out_c];
            self.running_var = vec![1.0; shape.out_c];
        }
        Ok(vec![vec![b, shape.out_c, shape.out_h(), shape.out_w()]])
    }

    fn forward(&mut self, cg: &mut CoreGroup, bottoms: &[&Blob], tops: &mut [&mut Blob]) {
        let shape = self.shape.expect("layer not set up");
        let ops = cg.mode().is_functional().then(|| ConvBnReluOperands {
            input: bottoms[0].data(),
            weights: self.weights.data(),
            bias: self.bias.as_ref().map(|b| b.data()),
            gamma: self.gamma.data(),
            beta: self.beta.data(),
            mean: &self.running_mean,
            var: &self.running_var,
            output: tops[0].data_mut(),
        });
        fused::forward(cg, &shape, self.eps, ops);
    }

    fn backward(&mut self, _cg: &mut CoreGroup, _t: &[&Blob], _b: &mut [&mut Blob], _p: &[bool]) {
        panic!(
            "FusedConvBnRelu '{}' is inference-only; it has no backward pass",
            self.name
        );
    }

    fn params_mut(&mut self) -> Vec<&mut Blob> {
        let mut out = vec![&mut self.weights];
        if let Some(b) = &mut self.bias {
            out.push(b);
        }
        out.push(&mut self.gamma);
        out.push(&mut self.beta);
        out
    }

    fn params(&self) -> Vec<&Blob> {
        let mut out = vec![&self.weights];
        if let Some(b) = &self.bias {
            out.push(b);
        }
        out.push(&self.gamma);
        out.push(&self.beta);
        out
    }

    fn state(&self) -> Vec<&[f32]> {
        vec![&self.running_mean, &self.running_var]
    }

    fn state_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }
}
