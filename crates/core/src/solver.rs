//! SGD solver — the third Caffe component (Sec. II-C), where the paper
//! hooks its distributed-training extensions: the solver exposes a
//! gradient-reduction callback that the multi-node trainer (crate
//! `swtrain`) fills with the packed all-reduce.

use sw26010::CoreGroup;
use swdnn::elementwise as ew;

use crate::net::Net;

/// Learning-rate schedule (Caffe's `lr_policy`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrPolicy {
    Fixed,
    /// `base * gamma^(iter / step)`.
    Step {
        gamma: f32,
        step: usize,
    },
    /// `base * (1 + gamma * iter)^(-power)`.
    Inv {
        gamma: f32,
        power: f32,
    },
    /// `base * (1 - iter/max_iter)^power`.
    Poly {
        power: f32,
        max_iter: usize,
    },
}

/// Solver hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    pub base_lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    pub policy: LrPolicy,
    /// Layer-wise adaptive rate scaling (You et al. \[12\], the large-batch
    /// method the paper points to for scaling beyond 32K): when set, each
    /// parameter blob's learning rate is multiplied by
    /// `trust * ||w|| / (||g|| + decay * ||w||)`.
    pub lars_trust: Option<f32>,
    /// Nesterov momentum (Sutskever formulation): the update applies
    /// `momentum * v + lr * grad` instead of `v`.
    pub nesterov: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            base_lr: 0.01,
            momentum: 0.9,
            weight_decay: 5e-4,
            policy: LrPolicy::Fixed,
            lars_trust: None,
            nesterov: false,
        }
    }
}

impl SolverConfig {
    /// Learning rate at an iteration.
    pub fn lr_at(&self, iter: usize) -> f32 {
        match self.policy {
            LrPolicy::Fixed => self.base_lr,
            LrPolicy::Step { gamma, step } => {
                self.base_lr * gamma.powi((iter / step.max(1)) as i32)
            }
            LrPolicy::Inv { gamma, power } => {
                self.base_lr * (1.0 + gamma * iter as f32).powf(-power)
            }
            LrPolicy::Poly { power, max_iter } => {
                let frac = 1.0 - (iter as f32 / max_iter.max(1) as f32).min(1.0);
                self.base_lr * frac.powf(power)
            }
        }
    }
}

/// SGD with momentum and L2 weight decay.
pub struct SgdSolver {
    config: SolverConfig,
    iter: usize,
    /// Momentum buffers, one per parameter blob (host-resident optimizer
    /// state, as in Caffe).
    history: Vec<Vec<f32>>,
}

impl SgdSolver {
    pub fn new(config: SolverConfig) -> Self {
        SgdSolver {
            config,
            iter: 0,
            history: Vec::new(),
        }
    }

    pub fn iter(&self) -> usize {
        self.iter
    }

    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Momentum buffers, one per parameter blob — empty until the first
    /// [`step`](Self::step). Checkpoint payload.
    pub fn history(&self) -> &[Vec<f32>] {
        &self.history
    }

    /// Restore optimiser state captured from another solver: the
    /// iteration counter (which also positions the LR schedule, since
    /// every policy is a pure function of it) and the momentum buffers.
    pub fn restore(&mut self, iter: usize, history: Vec<Vec<f32>>) {
        self.iter = iter;
        self.history = history;
    }

    /// One optimisation step over the net's current gradients:
    /// `v = momentum*v + lr*(grad + decay*w); w -= v`.
    ///
    /// The vector arithmetic runs on the CPE cluster (charged through
    /// `cg`); the momentum state is host-managed.
    pub fn step(&mut self, cg: &mut CoreGroup, net: &mut Net) {
        let lr = self.config.lr_at(self.iter);
        let momentum = self.config.momentum;
        let decay = self.config.weight_decay;
        let mut params = net.params_mut();
        if self.history.is_empty() {
            self.history = params
                .iter()
                .map(|p| {
                    if p.materialized() {
                        vec![0.0; p.len()]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
        }
        assert_eq!(self.history.len(), params.len(), "parameter set changed");
        for (p, hist) in params.iter_mut().zip(&mut self.history) {
            let len = p.len();
            if p.materialized() {
                // LARS local rate (computed before decay folds into grad).
                let local = match self.config.lars_trust {
                    Some(trust) => {
                        let (w_sq, _) = ew::sumsq(cg, len, Some(p.data()));
                        let (g_sq, _) = ew::sumsq(cg, len, Some(p.diff()));
                        let (wn, gn) = (w_sq.sqrt(), g_sq.sqrt());
                        if wn > 0.0 && gn > 0.0 {
                            (trust as f64 * wn / (gn + decay as f64 * wn)) as f32
                        } else {
                            1.0
                        }
                    }
                    None => 1.0,
                };
                // Decay: grad += decay * w.
                {
                    let (data, diff) = p.data_and_diff_mut();
                    ew::axpy(cg, len, decay, Some((data, diff)));
                }
                // Momentum: v = momentum * v + local_lr * grad.
                ew::scale(cg, len, momentum, Some(hist));
                ew::axpy(cg, len, lr * local, Some((p.diff(), hist)));
                if self.config.nesterov {
                    // w -= momentum * v + lr * grad (look-ahead step).
                    let hist_ref: &[f32] = hist;
                    ew::axpy(cg, len, -momentum, Some((hist_ref, p.data_mut())));
                    // axpy reads x (= diff) and updates y (= data).
                    let (diff, data) = p.diff_and_data_mut();
                    ew::axpy(cg, len, -(lr * local), Some((diff, data)));
                } else {
                    // Update: w -= v.
                    let hist_ref: &[f32] = hist;
                    ew::axpy(cg, len, -1.0, Some((hist_ref, p.data_mut())));
                }
            } else {
                if self.config.lars_trust.is_some() {
                    ew::sumsq(cg, len, None);
                    ew::sumsq(cg, len, None);
                }
                ew::axpy(cg, len, decay, None);
                ew::scale(cg, len, momentum, None);
                ew::axpy(cg, len, lr, None);
                ew::axpy(cg, len, -1.0, None);
                if self.config.nesterov {
                    ew::axpy(cg, len, -1.0, None);
                }
            }
        }
        self.iter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::net::Net;
    use sw26010::{CoreGroup, ExecMode};

    #[test]
    fn lars_scales_updates_by_layer_norms() {
        // Two iterations of the same gradients, one with LARS: blobs with
        // large weight/gradient norm ratios must move further relative to
        // plain SGD.
        let def = models::tiny_cnn(2, 3);
        let run = |lars: Option<f32>| -> Vec<f32> {
            let mut net = Net::from_def(&def, true).unwrap();
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut solver = SgdSolver::new(SolverConfig {
                base_lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
                lars_trust: lars,
                ..Default::default()
            });
            for p in net.params_mut() {
                for (i, g) in p.diff_mut().iter_mut().enumerate() {
                    *g = ((i % 5) as f32 - 2.0) * 0.01;
                }
            }
            solver.step(&mut cg, &mut net);
            net.params()
                .iter()
                .flat_map(|p| p.data().to_vec().into_iter())
                .collect()
        };
        let plain = run(None);
        let lars = run(Some(0.01));
        assert_ne!(plain, lars, "LARS must change the update");
        assert!(lars.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nesterov_differs_from_plain_momentum() {
        let def = models::tiny_cnn(2, 3);
        let run = |nesterov: bool| -> Vec<f32> {
            let mut net = Net::from_def(&def, true).unwrap();
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut solver = SgdSolver::new(SolverConfig {
                base_lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov,
                ..Default::default()
            });
            for _ in 0..2 {
                for p in net.params_mut() {
                    for (i, g) in p.diff_mut().iter_mut().enumerate() {
                        *g = ((i % 3) as f32 - 1.0) * 0.05;
                    }
                }
                solver.step(&mut cg, &mut net);
            }
            net.params()
                .iter()
                .flat_map(|p| p.data().to_vec().into_iter())
                .collect()
        };
        let plain = run(false);
        let nest = run(true);
        assert_ne!(plain, nest);
        assert!(nest.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lr_policies() {
        let mut c = SolverConfig {
            base_lr: 1.0,
            ..Default::default()
        };
        c.policy = LrPolicy::Fixed;
        assert_eq!(c.lr_at(100), 1.0);
        c.policy = LrPolicy::Step {
            gamma: 0.1,
            step: 10,
        };
        assert!((c.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((c.lr_at(10) - 0.1).abs() < 1e-6);
        assert!((c.lr_at(25) - 0.01).abs() < 1e-6);
        c.policy = LrPolicy::Poly {
            power: 1.0,
            max_iter: 100,
        };
        assert!((c.lr_at(50) - 0.5).abs() < 1e-6);
        assert!((c.lr_at(200) - 0.0).abs() < 1e-6);
        c.policy = LrPolicy::Inv {
            gamma: 1.0,
            power: 1.0,
        };
        assert!((c.lr_at(1) - 0.5).abs() < 1e-6);
    }
}
