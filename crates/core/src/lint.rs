//! Static net-graph lint: shape inference and structural analysis over a
//! [`NetDef`], *before* any layer is instantiated.
//!
//! Layer `setup()` discovers geometry errors one layer at a time, at net
//! build, and some (pooling windows larger than the padded input) used
//! to surface as `usize` underflow panics deep in the shape arithmetic.
//! This module re-derives every layer's output shape from the same rules
//! the layers themselves apply, so a malformed definition is rejected
//! with a typed [`GraphViolation`] naming the layer and the rule — at
//! def-load time via [`infer_shapes`] (wired into `Net::from_def*`), and
//! exhaustively via [`lint_def`], which additionally reports dangling
//! and dead blobs, in-place aliasing, NCHW/RCNB layout mismatches across
//! transform boundaries, and fusion-legality preconditions. The
//! `swserve` graph optimizer runs [`lint_def`] before and after its
//! passes, and `swcheck --graph` sweeps the model zoo with it.

use crate::netdef::{ConvFormat, LayerDef, LayerKind, NetDef, TransDir};
use swdnn::{ConvShape, PoolMethod, PoolShape};

/// One defect found in a net definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphViolation {
    /// A bottom no earlier layer produced.
    UndefinedBlob { layer: String, blob: String },
    /// A top that collides with an already-defined blob.
    RedefinedBlob { layer: String, blob: String },
    /// A layer naming one of its own bottoms as a top (in-place
    /// rewrite): the scheduler assumes write-once blobs, so aliasing
    /// would silently corrupt every other consumer of the bottom.
    InPlaceAlias { layer: String, blob: String },
    /// Wrong number of bottoms for the layer kind.
    BottomArity {
        layer: String,
        expected: &'static str,
        got: usize,
    },
    /// Wrong number of tops for the layer kind.
    TopArity {
        layer: String,
        expected: usize,
        got: usize,
    },
    /// Shape rule violated (dimension counts, window geometry,
    /// mismatched operands).
    ShapeMismatch { layer: String, detail: String },
    /// A produced blob no layer consumes and that is not a recognised
    /// network output.
    DanglingBlob { layer: String, blob: String },
    /// A layer whose outputs cannot reach any output or loss head.
    DeadLayer { layer: String },
    /// A blob produced in one data layout consumed by a kernel expecting
    /// the other (missing or mismatched TensorTransform).
    LayoutMismatch {
        layer: String,
        blob: String,
        expected: ConvFormat,
        got: ConvFormat,
    },
    /// An inference-only fused layer in a graph that still carries
    /// training machinery.
    FusionPrecondition { layer: String, detail: String },
}

impl GraphViolation {
    /// Layer the violation anchors to.
    pub fn layer(&self) -> &str {
        match self {
            GraphViolation::UndefinedBlob { layer, .. }
            | GraphViolation::RedefinedBlob { layer, .. }
            | GraphViolation::InPlaceAlias { layer, .. }
            | GraphViolation::BottomArity { layer, .. }
            | GraphViolation::TopArity { layer, .. }
            | GraphViolation::ShapeMismatch { layer, .. }
            | GraphViolation::DanglingBlob { layer, .. }
            | GraphViolation::DeadLayer { layer }
            | GraphViolation::LayoutMismatch { layer, .. }
            | GraphViolation::FusionPrecondition { layer, .. } => layer,
        }
    }

    /// Short machine-readable kind tag (report/JSON key).
    pub fn kind(&self) -> &'static str {
        match self {
            GraphViolation::UndefinedBlob { .. } => "undefined_blob",
            GraphViolation::RedefinedBlob { .. } => "redefined_blob",
            GraphViolation::InPlaceAlias { .. } => "in_place_alias",
            GraphViolation::BottomArity { .. } => "bottom_arity",
            GraphViolation::TopArity { .. } => "top_arity",
            GraphViolation::ShapeMismatch { .. } => "shape_mismatch",
            GraphViolation::DanglingBlob { .. } => "dangling_blob",
            GraphViolation::DeadLayer { .. } => "dead_layer",
            GraphViolation::LayoutMismatch { .. } => "layout_mismatch",
            GraphViolation::FusionPrecondition { .. } => "fusion_precondition",
        }
    }
}

impl std::fmt::Display for GraphViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphViolation::UndefinedBlob { layer, blob } => {
                write!(f, "layer '{layer}' consumes undefined blob '{blob}'")
            }
            GraphViolation::RedefinedBlob { layer, blob } => {
                write!(f, "layer '{layer}' redefines blob '{blob}'")
            }
            GraphViolation::InPlaceAlias { layer, blob } => {
                write!(
                    f,
                    "layer '{layer}' rewrites its own bottom '{blob}' in place"
                )
            }
            GraphViolation::BottomArity {
                layer,
                expected,
                got,
            } => write!(f, "layer '{layer}' expects {expected} bottoms, got {got}"),
            GraphViolation::TopArity {
                layer,
                expected,
                got,
            } => write!(
                f,
                "layer '{layer}' must declare {expected} top(s), got {got}"
            ),
            GraphViolation::ShapeMismatch { layer, detail } => {
                write!(f, "layer '{layer}': {detail}")
            }
            GraphViolation::DanglingBlob { layer, blob } => {
                write!(f, "blob '{blob}' (from layer '{layer}') is never consumed")
            }
            GraphViolation::DeadLayer { layer } => {
                write!(f, "layer '{layer}' cannot reach any network output")
            }
            GraphViolation::LayoutMismatch {
                layer,
                blob,
                expected,
                got,
            } => write!(
                f,
                "layer '{layer}' needs blob '{blob}' in {expected:?} layout, got {got:?}"
            ),
            GraphViolation::FusionPrecondition { layer, detail } => {
                write!(f, "fused layer '{layer}': {detail}")
            }
        }
    }
}

impl std::error::Error for GraphViolation {}

/// Is this layer a training/metric head whose scalar top is read by the
/// harness rather than by downstream layers?
fn is_head(kind: &LayerKind) -> bool {
    matches!(
        kind,
        LayerKind::SoftmaxWithLoss | LayerKind::Accuracy { .. }
    )
}

/// Expected top count for a layer kind.
fn expected_tops(kind: &LayerKind) -> usize {
    match kind {
        LayerKind::Input { with_labels, .. } => 1 + usize::from(*with_labels),
        _ => 1,
    }
}

fn expect_4d(layer: &str, shape: &[usize], what: &str) -> Result<[usize; 4], GraphViolation> {
    if shape.len() != 4 {
        return Err(GraphViolation::ShapeMismatch {
            layer: layer.to_string(),
            detail: format!("{what} requires a 4-d NCHW blob, got {shape:?}"),
        });
    }
    Ok([shape[0], shape[1], shape[2], shape[3]])
}

/// Output shapes of one layer given its bottom shapes — the same rules
/// each layer's `setup()` applies, with the panic paths (pooling window
/// underflow, empty input shapes) converted into typed violations.
fn layer_out_shapes(l: &LayerDef, bottoms: &[&[usize]]) -> Result<Vec<Vec<usize>>, GraphViolation> {
    let name = l.name.as_str();
    let arity = |expected: &'static str, want: usize| -> Result<(), GraphViolation> {
        if bottoms.len() != want {
            Err(GraphViolation::BottomArity {
                layer: name.to_string(),
                expected,
                got: bottoms.len(),
            })
        } else {
            Ok(())
        }
    };
    let shape_err = |detail: String| GraphViolation::ShapeMismatch {
        layer: name.to_string(),
        detail,
    };
    match &l.kind {
        LayerKind::Input { shape, with_labels } => {
            arity("0", 0)?;
            if shape.is_empty() || shape.contains(&0) {
                return Err(shape_err(format!(
                    "Input shape must be non-empty: {shape:?}"
                )));
            }
            let mut tops = vec![shape.clone()];
            if *with_labels {
                tops.push(vec![shape[0]]);
            }
            Ok(tops)
        }
        LayerKind::Convolution {
            num_output,
            kernel,
            stride,
            pad,
            ..
        }
        | LayerKind::FusedConvBnRelu {
            num_output,
            kernel,
            stride,
            pad,
            ..
        } => {
            arity("1", 1)?;
            let [b, c, h, w] = expect_4d(name, bottoms[0], "Convolution")?;
            let shape = ConvShape {
                batch: b,
                in_c: c,
                in_h: h,
                in_w: w,
                out_c: *num_output,
                k: *kernel,
                stride: *stride,
                pad: *pad,
            };
            shape.validate().map_err(|e| shape_err(e.to_string()))?;
            Ok(vec![vec![b, *num_output, shape.out_h(), shape.out_w()]])
        }
        LayerKind::Pooling {
            kernel,
            stride,
            pad,
            ..
        } => {
            arity("1", 1)?;
            let [b, c, h, w] = expect_4d(name, bottoms[0], "Pooling")?;
            let shape = PoolShape {
                batch: b,
                channels: c,
                in_h: h,
                in_w: w,
                k: *kernel,
                stride: *stride,
                pad: *pad,
                method: PoolMethod::Max,
            };
            shape.validate().map_err(|e| shape_err(e.to_string()))?;
            Ok(vec![vec![b, c, shape.out_h(), shape.out_w()]])
        }
        LayerKind::InnerProduct { num_output, .. } => {
            arity("1", 1)?;
            if bottoms[0].is_empty() {
                return Err(shape_err(
                    "InnerProduct bottom must have at least one axis".into(),
                ));
            }
            Ok(vec![vec![bottoms[0][0], *num_output]])
        }
        LayerKind::ReLU | LayerKind::Dropout { .. } => {
            arity("1", 1)?;
            Ok(vec![bottoms[0].to_vec()])
        }
        LayerKind::BatchNorm { .. } => {
            arity("1", 1)?;
            expect_4d(name, bottoms[0], "BatchNorm")?;
            Ok(vec![bottoms[0].to_vec()])
        }
        LayerKind::Lrn { .. } => {
            arity("1", 1)?;
            expect_4d(name, bottoms[0], "LRN")?;
            Ok(vec![bottoms[0].to_vec()])
        }
        LayerKind::TensorTransform { .. } => {
            arity("1", 1)?;
            expect_4d(name, bottoms[0], "TensorTransform")?;
            Ok(vec![bottoms[0].to_vec()])
        }
        LayerKind::SoftmaxWithLoss => {
            arity("2 ([logits, labels])", 2)?;
            if bottoms[0].is_empty() {
                return Err(shape_err("logits blob must have a batch axis".into()));
            }
            let batch = bottoms[0][0];
            if bottoms[1] != [batch] {
                return Err(shape_err(format!(
                    "label blob must be [batch={batch}], got {:?}",
                    bottoms[1]
                )));
            }
            Ok(vec![vec![1]])
        }
        LayerKind::Accuracy { .. } => {
            arity("2 ([scores, labels])", 2)?;
            if bottoms[0].is_empty() {
                return Err(shape_err("score blob must have a batch axis".into()));
            }
            Ok(vec![vec![1]])
        }
        LayerKind::Concat => {
            if bottoms.is_empty() {
                return Err(GraphViolation::BottomArity {
                    layer: name.to_string(),
                    expected: "at least 1",
                    got: 0,
                });
            }
            let [b, _, h, w] = expect_4d(name, bottoms[0], "Concat")?;
            let spatial = h * w;
            let mut total_c = 0;
            for shape in bottoms {
                let [bb, c, hh, ww] = expect_4d(name, shape, "Concat")?;
                if bb != b || hh * ww != spatial {
                    return Err(shape_err(format!("Concat bottoms disagree: {bottoms:?}")));
                }
                total_c += c;
            }
            Ok(vec![vec![b, total_c, h, w]])
        }
        LayerKind::EltwiseSum => {
            arity("2", 2)?;
            if bottoms[0] != bottoms[1] {
                return Err(shape_err(format!(
                    "EltwiseSum needs two equal-shaped bottoms, got {bottoms:?}"
                )));
            }
            Ok(vec![bottoms[0].to_vec()])
        }
    }
}

/// Structure + shape pass. Returns the first violation, or every blob's
/// inferred shape in definition order. This is the `Net::from_def*`
/// pre-flight: any definition it rejects would have panicked or errored
/// inside layer setup.
pub fn infer_shapes(def: &NetDef) -> Result<Vec<(String, Vec<usize>)>, GraphViolation> {
    let mut out = Vec::new();
    let mut first_err = None;
    analyze_structure(def, &mut |v| {
        if first_err.is_none() {
            first_err = Some(v);
        }
    })
    .into_iter()
    .for_each(|(blob, shape)| {
        if let Some(s) = shape {
            out.push((blob, s));
        }
    });
    match first_err {
        Some(v) => Err(v),
        None => Ok(out),
    }
}

/// Shared structure+shape walk. Reports violations through `report` and
/// returns the blob table (shape `None` where inference was poisoned by
/// an earlier violation).
#[allow(clippy::type_complexity)]
fn analyze_structure(
    def: &NetDef,
    report: &mut dyn FnMut(GraphViolation),
) -> Vec<(String, Option<Vec<usize>>)> {
    use std::collections::HashMap;
    let mut blob_shapes: HashMap<&str, Option<Vec<usize>>> = HashMap::new();
    let mut order: Vec<(String, Option<Vec<usize>>)> = Vec::new();
    for l in &def.layers {
        let mut bottoms: Vec<&[usize]> = Vec::with_capacity(l.bottoms.len());
        let mut poisoned = false;
        for b in &l.bottoms {
            match blob_shapes.get(b.as_str()) {
                Some(Some(s)) => bottoms.push(s.as_slice()),
                Some(None) => poisoned = true,
                None => {
                    report(GraphViolation::UndefinedBlob {
                        layer: l.name.clone(),
                        blob: b.clone(),
                    });
                    poisoned = true;
                }
            }
        }
        let expected = expected_tops(&l.kind);
        if l.tops.len() != expected {
            report(GraphViolation::TopArity {
                layer: l.name.clone(),
                expected,
                got: l.tops.len(),
            });
            poisoned = true;
        }
        let tops = if poisoned {
            None
        } else {
            match layer_out_shapes(l, &bottoms) {
                Ok(t) => Some(t),
                Err(v) => {
                    report(v);
                    None
                }
            }
        };
        for (i, t) in l.tops.iter().enumerate() {
            if l.bottoms.contains(t) {
                report(GraphViolation::InPlaceAlias {
                    layer: l.name.clone(),
                    blob: t.clone(),
                });
            } else if blob_shapes.contains_key(t.as_str()) {
                report(GraphViolation::RedefinedBlob {
                    layer: l.name.clone(),
                    blob: t.clone(),
                });
            }
            let shape = tops.as_ref().and_then(|ts| ts.get(i).cloned());
            blob_shapes.insert(t.as_str(), shape.clone());
            order.push((t.clone(), shape));
        }
    }
    order
}

/// Layout each blob is produced in, for the NCHW/RCNB transform lint.
fn track_layouts(def: &NetDef, violations: &mut Vec<GraphViolation>) {
    use std::collections::HashMap;
    let mut layout: HashMap<&str, ConvFormat> = HashMap::new();
    for l in &def.layers {
        let got = |b: &String| layout.get(b.as_str()).copied();
        let require = |b: &String, want: ConvFormat, out: &mut Vec<GraphViolation>| {
            if let Some(g) = got(b) {
                if g != want {
                    out.push(GraphViolation::LayoutMismatch {
                        layer: l.name.clone(),
                        blob: b.clone(),
                        expected: want,
                        got: g,
                    });
                }
            }
        };
        let produced: ConvFormat = match &l.kind {
            LayerKind::TensorTransform { dir } => match dir {
                TransDir::NchwToRcnb => {
                    require(&l.bottoms[0], ConvFormat::Nchw, violations);
                    ConvFormat::Rcnb
                }
                TransDir::RcnbToNchw => {
                    require(&l.bottoms[0], ConvFormat::Rcnb, violations);
                    ConvFormat::Nchw
                }
            },
            LayerKind::Convolution { format, .. } => {
                require(&l.bottoms[0], *format, violations);
                *format
            }
            // Element-wise layers are layout-agnostic and propagate
            // whatever layout they are fed.
            LayerKind::ReLU | LayerKind::Dropout { .. } => {
                got(&l.bottoms[0]).unwrap_or(ConvFormat::Nchw)
            }
            // Everything else (including the fused inference kernel)
            // addresses tensors as NCHW.
            _ => {
                for b in &l.bottoms {
                    require(b, ConvFormat::Nchw, violations);
                }
                ConvFormat::Nchw
            }
        };
        for t in &l.tops {
            layout.insert(t.as_str(), produced);
        }
    }
}

/// Full lint: the structure+shape pass plus dangling/dead-blob analysis,
/// layout tracking across TensorTransform boundaries, and
/// fusion-legality preconditions. Returns *all* violations (empty for a
/// clean definition).
pub fn lint_def(def: &NetDef) -> Vec<GraphViolation> {
    let mut violations = Vec::new();
    analyze_structure(def, &mut |v| violations.push(v));

    // --- Consumption analysis: dangling blobs and dead layers. -------
    use std::collections::{HashMap, HashSet};
    let mut consumed: HashSet<&str> = HashSet::new();
    let mut producer: HashMap<&str, usize> = HashMap::new();
    for (li, l) in def.layers.iter().enumerate() {
        for b in &l.bottoms {
            consumed.insert(b.as_str());
        }
        for t in &l.tops {
            producer.entry(t.as_str()).or_insert(li);
        }
    }
    let has_heads = def.layers.iter().any(|l| is_head(&l.kind));
    // Tops exempt from the dangling rule: Input products (a label can
    // legitimately go unused in a head-less graph), head scalars (read
    // by the harness), and — in a head-less inference graph — a *unique*
    // unconsumed top, which is the network output. Two or more
    // unconsumed interior tops always mean something was wired wrong.
    let mut exempt: HashSet<&str> = HashSet::new();
    for l in &def.layers {
        if matches!(l.kind, LayerKind::Input { .. }) || is_head(&l.kind) {
            for t in &l.tops {
                exempt.insert(t.as_str());
            }
        }
    }
    if !has_heads {
        let unconsumed: Vec<&str> = def
            .layers
            .iter()
            .flat_map(|l| l.tops.iter())
            .map(String::as_str)
            .filter(|t| !consumed.contains(t) && !exempt.contains(t))
            .collect();
        if let [output] = unconsumed.as_slice() {
            exempt.insert(output);
        }
    }
    for l in &def.layers {
        for t in &l.tops {
            if !consumed.contains(t.as_str()) && !exempt.contains(t.as_str()) {
                violations.push(GraphViolation::DanglingBlob {
                    layer: l.name.clone(),
                    blob: t.clone(),
                });
            }
        }
    }
    // Reverse-reachability: a layer is live if it is an Input or head,
    // or if one of its tops feeds a live layer or is a recognised
    // output. Definition order is topological (validated above), so one
    // reverse sweep suffices.
    let mut needed: HashSet<&str> = HashSet::new();
    for l in &def.layers {
        for t in &l.tops {
            if exempt.contains(t.as_str()) && !consumed.contains(t.as_str()) {
                needed.insert(t.as_str());
            }
        }
    }
    for l in def.layers.iter().rev() {
        let live = matches!(l.kind, LayerKind::Input { .. })
            || is_head(&l.kind)
            || l.tops.iter().any(|t| needed.contains(t.as_str()));
        if live {
            for b in &l.bottoms {
                needed.insert(b.as_str());
            }
        } else {
            violations.push(GraphViolation::DeadLayer {
                layer: l.name.clone(),
            });
        }
    }

    // --- Layout tracking across transform boundaries. -----------------
    track_layouts(def, &mut violations);

    // --- Fusion preconditions. ----------------------------------------
    // FusedConvBnRelu bakes BN statistics into the conv weights and is
    // only legal in a frozen inference graph: coexisting with training
    // heads or train-time stochastic layers means the optimizer fused
    // too early (or the def was assembled by hand incorrectly).
    for l in &def.layers {
        if matches!(l.kind, LayerKind::FusedConvBnRelu { .. }) {
            if let Some(t) = def
                .layers
                .iter()
                .find(|o| is_head(&o.kind) || matches!(o.kind, LayerKind::Dropout { .. }))
            {
                violations.push(GraphViolation::FusionPrecondition {
                    layer: l.name.clone(),
                    detail: format!(
                        "inference-only fusion in a graph that still carries training layer '{}'",
                        t.name
                    ),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn zoo_defs_infer_cleanly() {
        for def in [
            models::tiny_cnn(4, 10),
            models::tiny_dropout_cnn(4, 10),
            models::alexnet_bn(8),
            models::vgg16(4),
        ] {
            let shapes = infer_shapes(&def).unwrap_or_else(|v| panic!("{}: {v}", def.name));
            assert!(!shapes.is_empty());
            assert!(lint_def(&def).is_empty(), "{} must lint clean", def.name);
        }
    }

    #[test]
    fn pooling_window_underflow_is_a_typed_error_not_a_panic() {
        let def = NetDef::new("bad_pool")
            .layer(
                "data",
                LayerKind::Input {
                    shape: vec![2, 3, 4, 4],
                    with_labels: false,
                },
                &[],
                &["data"],
            )
            .layer(
                "pool",
                LayerKind::Pooling {
                    kernel: 9,
                    stride: 1,
                    pad: 0,
                    method: crate::netdef::PoolKind::Max,
                },
                &["data"],
                &["pool"],
            );
        let err = infer_shapes(&def).unwrap_err();
        assert!(matches!(err, GraphViolation::ShapeMismatch { .. }), "{err}");
        assert_eq!(err.layer(), "pool");
    }

    #[test]
    fn shape_inference_matches_builder_tracking() {
        let def = models::tiny_cnn(4, 10);
        let shapes = infer_shapes(&def).unwrap();
        let lookup =
            |name: &str| -> &[usize] { &shapes.iter().find(|(n, _)| n == name).unwrap().1 };
        assert_eq!(lookup("data"), &[4, 3, 16, 16]);
        assert_eq!(lookup("pool1"), &[4, 8, 8, 8]);
        assert_eq!(lookup("fc"), &[4, 10]);
        assert_eq!(lookup("loss"), &[1]);
    }
}
