//! Weight snapshots — the `.caffemodel` of this framework.
//!
//! A deliberately simple, versioned little-endian binary format:
//! magic, format version, parameter-blob count, then for each blob its
//! element count and raw f32 data. The network structure itself travels
//! as the JSON `NetDef` (the "prototxt"); loading checks that the blob
//! layout matches the target network.

use std::io::{self, Read, Write};

use crate::net::Net;

const MAGIC: &[u8; 8] = b"SWCAFFE2";

/// Serialise all parameter blobs and persistent layer state (batch-norm
/// running statistics) of a (materialised) net.
pub fn write_weights<W: Write>(net: &Net, mut w: W) -> io::Result<()> {
    let params = net.params();
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in &params {
        w.write_all(&(p.len() as u64).to_le_bytes())?;
        for v in p.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    let state = net.state();
    w.write_all(&(state.len() as u64).to_le_bytes())?;
    for s in &state {
        w.write_all(&(s.len() as u64).to_le_bytes())?;
        for v in s.iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Load parameter blobs into a (materialised) net. Fails when the blob
/// layout does not match.
pub fn read_weights<R: Read>(net: &mut Net, mut r: R) -> Result<(), String> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|e| e.to_string())?;
    if &magic != MAGIC {
        return Err("not a swcaffe weight file".into());
    }
    let count = read_u64(&mut r)? as usize;
    let mut params = net.params_mut();
    if count != params.len() {
        return Err(format!(
            "snapshot has {count} blobs, network has {}",
            params.len()
        ));
    }
    for (i, p) in params.iter_mut().enumerate() {
        let len = read_u64(&mut r)? as usize;
        if len != p.len() {
            return Err(format!(
                "blob {i}: snapshot {len} elements, network {}",
                p.len()
            ));
        }
        let mut bytes = vec![0u8; len * 4];
        r.read_exact(&mut bytes).map_err(|e| e.to_string())?;
        for (dst, chunk) in p.data_mut().iter_mut().zip(bytes.chunks_exact(4)) {
            *dst = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    drop(params);
    let state_count = read_u64(&mut r)? as usize;
    let mut state = net.state_mut();
    if state_count != state.len() {
        return Err(format!(
            "snapshot has {state_count} state vectors, network has {}",
            state.len()
        ));
    }
    for (i, sv) in state.iter_mut().enumerate() {
        let len = read_u64(&mut r)? as usize;
        if len != sv.len() {
            return Err(format!(
                "state {i}: snapshot {len} elements, network {}",
                sv.len()
            ));
        }
        let mut bytes = vec![0u8; len * 4];
        r.read_exact(&mut bytes).map_err(|e| e.to_string())?;
        for (dst, chunk) in sv.iter_mut().zip(bytes.chunks_exact(4)) {
            *dst = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, String> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|e| e.to_string())?;
    Ok(u64::from_le_bytes(b))
}

/// Convenience: snapshot to / restore from a file path.
pub fn save(net: &Net, path: &std::path::Path) -> io::Result<()> {
    write_weights(net, std::io::BufWriter::new(std::fs::File::create(path)?))
}

pub fn load(net: &mut Net, path: &std::path::Path) -> Result<(), String> {
    let f = std::fs::File::open(path).map_err(|e| e.to_string())?;
    read_weights(net, std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn roundtrip_restores_weights_exactly() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();
        let mut bytes = Vec::new();
        write_weights(&net, &mut bytes).unwrap();

        // A differently-seeded net... actually identical seeds, so scribble
        // on it first to prove the load really overwrites.
        let mut other = Net::from_def(&def, true).unwrap();
        for p in other.params_mut() {
            p.data_mut().fill(9.9);
        }
        read_weights(&mut other, &bytes[..]).unwrap();
        for (a, b) in net.params().iter().zip(other.params()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn rejects_wrong_magic_and_shape() {
        let def = models::tiny_cnn(2, 3);
        let mut net = Net::from_def(&def, true).unwrap();
        assert!(read_weights(&mut net, &b"NOTAFILE"[..]).is_err());

        // Snapshot of a structurally different network must be rejected.
        let other_def = models::tiny_cnn(2, 7);
        let other = Net::from_def(&other_def, true).unwrap();
        let mut bytes = Vec::new();
        write_weights(&other, &mut bytes).unwrap();
        assert!(read_weights(&mut net, &bytes[..]).is_err());
    }

    #[test]
    fn state_roundtrips_too() {
        use sw26010::{CoreGroup, ExecMode};
        let def = models::tiny_cnn(2, 3);
        let mut net = Net::from_def(&def, true).unwrap();
        // Run a forward pass so the BN running stats move off their init.
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let data: Vec<f32> = (0..2 * 3 * 16 * 16)
            .map(|i| (i % 11) as f32 * 0.3)
            .collect();
        net.set_input("data", &data);
        net.set_input("label", &[0.0, 1.0]);
        net.forward(&mut cg);
        let state_before: Vec<Vec<f32>> = net.state().iter().map(|s| s.to_vec()).collect();
        assert!(state_before
            .iter()
            .any(|s| s.iter().any(|v| *v != 0.0 && *v != 1.0)));

        let mut bytes = Vec::new();
        write_weights(&net, &mut bytes).unwrap();
        let mut other = Net::from_def(&def, true).unwrap();
        read_weights(&mut other, &bytes[..]).unwrap();
        let state_after: Vec<Vec<f32>> = other.state().iter().map(|s| s.to_vec()).collect();
        assert_eq!(state_before, state_after);
    }

    #[test]
    fn file_roundtrip() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();
        let path = std::env::temp_dir().join("swcaffe_snapshot_test.bin");
        save(&net, &path).unwrap();
        let mut loaded = Net::from_def(&def, true).unwrap();
        for p in loaded.params_mut() {
            p.data_mut().fill(0.0);
        }
        load(&mut loaded, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(net.params()[0].data(), loaded.params()[0].data());
    }
}
