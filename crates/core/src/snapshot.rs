//! Weight snapshots and full-solver checkpoints — the `.caffemodel` and
//! `.solverstate` of this framework.
//!
//! A deliberately simple, versioned little-endian binary format: magic,
//! parameter-blob count, then for each blob its element count and raw
//! f32 data, then the persistent layer state (batch-norm running
//! statistics), and finally a CRC32 of everything after the magic. The
//! network structure itself travels as the JSON `NetDef` (the
//! "prototxt"); loading checks that the blob layout matches the target
//! network, bounds-checks every length-prefixed read, and verifies the
//! trailing checksum. Files written by the previous format revision
//! (`SWCAFFE2`, no checksum) still load.
//!
//! A checkpoint ([`write_checkpoint`]/[`read_checkpoint`]) extends the
//! weight snapshot with the [`SolverState`]: the iteration counter
//! (which also positions the LR schedule — every policy is a pure
//! function of it), the momentum buffers, and the private RNG streams of
//! randomness-consuming layers. Restoring all of it makes a replayed run
//! bit-identical to one that never stopped.

use std::io::{self, Read, Write};

use crate::net::Net;

/// Legacy format: no trailing checksum.
const MAGIC_V2: &[u8; 8] = b"SWCAFFE2";
/// Current weight-snapshot format: trailing CRC32 over the body.
const MAGIC_V3: &[u8; 8] = b"SWCAFFE3";
/// Full-solver checkpoint: weight body + solver section + CRC32.
const CKPT_MAGIC: &[u8; 8] = b"SWCKPT01";

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — table generated at compile time.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC32.
#[derive(Clone, Copy)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xffff_ffff)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    fn finish(self) -> u32 {
        self.0 ^ 0xffff_ffff
    }
}

/// CRC32 of a byte slice (exposed for tests and tooling).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: Crc32::new(),
        }
    }

    fn into_parts(self) -> (W, u32) {
        (self.inner, self.crc.finish())
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        CrcReader {
            inner,
            crc: Crc32::new(),
        }
    }

    /// Read the stored trailing checksum (NOT hashed) and compare.
    fn verify_trailer(mut self, what: &str) -> Result<(), String> {
        let computed = self.crc.finish();
        let mut b = [0u8; 4];
        self.inner
            .read_exact(&mut b)
            .map_err(|e| format!("{what}: truncated before checksum trailer: {e}"))?;
        let stored = u32::from_le_bytes(b);
        if stored != computed {
            return Err(format!(
                "{what}: checksum mismatch (stored {stored:#010x}, computed {computed:#010x}) — \
                 file is corrupt"
            ));
        }
        Ok(())
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Primitive readers: every length-prefixed read is bounds-checked
// against what the target network expects *before* any allocation, so a
// truncated or hostile file fails with a message instead of an OOM or a
// partial, silently-wrong load.

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, String> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|e| format!("truncated reading {what}: {e}"))?;
    Ok(u64::from_le_bytes(b))
}

/// Read `len` f32s after checking the declared length equals `expect`.
fn read_f32s_into<R: Read>(r: &mut R, dst: &mut [f32], what: &str) -> Result<(), String> {
    let len = read_u64(r, &format!("{what} length"))? as usize;
    if len != dst.len() {
        return Err(format!(
            "{what}: snapshot declares {len} elements, network expects {}",
            dst.len()
        ));
    }
    let bytes = len
        .checked_mul(4)
        .ok_or_else(|| format!("{what}: length {len} overflows"))?;
    let mut buf = vec![0u8; bytes];
    r.read_exact(&mut buf)
        .map_err(|e| format!("truncated reading {what} ({len} elements): {e}"))?;
    for (dst, chunk) in dst.iter_mut().zip(buf.chunks_exact(4)) {
        *dst = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    Ok(())
}

fn write_f32s<W: Write>(w: &mut W, data: &[f32]) -> io::Result<()> {
    w.write_all(&(data.len() as u64).to_le_bytes())?;
    for v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Weight body: parameter blobs, then persistent layer state.

fn write_body<W: Write>(net: &Net, w: &mut W) -> io::Result<()> {
    let params = net.params();
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in &params {
        write_f32s(w, p.data())?;
    }
    let state = net.state();
    w.write_all(&(state.len() as u64).to_le_bytes())?;
    for s in &state {
        write_f32s(w, s)?;
    }
    Ok(())
}

fn read_body<R: Read>(net: &mut Net, r: &mut R) -> Result<(), String> {
    let count = read_u64(r, "parameter blob count")? as usize;
    let mut params = net.params_mut();
    if count != params.len() {
        return Err(format!(
            "snapshot has {count} blobs, network has {}",
            params.len()
        ));
    }
    for (i, p) in params.iter_mut().enumerate() {
        read_f32s_into(r, p.data_mut(), &format!("blob {i}"))?;
    }
    drop(params);
    let state_count = read_u64(r, "state vector count")? as usize;
    let mut state = net.state_mut();
    if state_count != state.len() {
        return Err(format!(
            "snapshot has {state_count} state vectors, network has {}",
            state.len()
        ));
    }
    for (i, sv) in state.iter_mut().enumerate() {
        read_f32s_into(r, sv, &format!("state vector {i}"))?;
    }
    Ok(())
}

/// Serialise all parameter blobs and persistent layer state (batch-norm
/// running statistics) of a (materialised) net, with a trailing CRC32.
pub fn write_weights<W: Write>(net: &Net, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC_V3)?;
    let mut cw = CrcWriter::new(w);
    write_body(net, &mut cw)?;
    let (mut w, crc) = cw.into_parts();
    w.write_all(&crc.to_le_bytes())
}

/// Load parameter blobs into a (materialised) net. Fails when the blob
/// layout does not match, any section is truncated, or (for
/// current-format files) the trailing checksum does not verify. Legacy
/// `SWCAFFE2` files — written before the checksum existed — still load.
pub fn read_weights<R: Read>(net: &mut Net, mut r: R) -> Result<(), String> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| format!("truncated reading magic: {e}"))?;
    if &magic == MAGIC_V2 {
        // Legacy format: no checksum trailer.
        return read_body(net, &mut r);
    }
    if &magic != MAGIC_V3 {
        return Err("not a swcaffe weight file".into());
    }
    let mut cr = CrcReader::new(r);
    read_body(net, &mut cr)?;
    cr.verify_trailer("weight snapshot")
}

// ---------------------------------------------------------------------
// Full-solver checkpoints.

/// Everything beyond the weights that a bit-identical resume needs:
/// the iteration counter (which also positions the LR schedule), the
/// solver's momentum buffers, and the private RNG streams of
/// randomness-consuming layers (dropout mask sequences).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverState {
    pub iteration: u64,
    /// Momentum buffers, one per parameter blob; empty if the solver
    /// never stepped.
    pub momentum: Vec<Vec<f32>>,
    /// One stream per randomness-consuming layer, in layer order.
    pub rng_streams: Vec<u64>,
}

/// Write a full checkpoint: weights + persistent state + solver state,
/// with a trailing CRC32.
pub fn write_checkpoint<W: Write>(net: &Net, state: &SolverState, mut w: W) -> io::Result<()> {
    w.write_all(CKPT_MAGIC)?;
    let mut cw = CrcWriter::new(w);
    write_body(net, &mut cw)?;
    cw.write_all(&state.iteration.to_le_bytes())?;
    cw.write_all(&(state.momentum.len() as u64).to_le_bytes())?;
    for m in &state.momentum {
        write_f32s(&mut cw, m)?;
    }
    cw.write_all(&(state.rng_streams.len() as u64).to_le_bytes())?;
    for s in &state.rng_streams {
        cw.write_all(&s.to_le_bytes())?;
    }
    let (mut w, crc) = cw.into_parts();
    w.write_all(&crc.to_le_bytes())
}

/// Restore a full checkpoint into `net` (weights, persistent state, RNG
/// streams) and return the [`SolverState`] for the caller to hand to its
/// solver. Every section is bounds-checked against the network and the
/// trailing CRC32 must verify.
pub fn read_checkpoint<R: Read>(net: &mut Net, mut r: R) -> Result<SolverState, String> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| format!("truncated reading magic: {e}"))?;
    if &magic != CKPT_MAGIC {
        return Err("not a swcaffe checkpoint file".into());
    }
    let mut cr = CrcReader::new(r);
    read_body(net, &mut cr)?;
    let iteration = read_u64(&mut cr, "iteration")?;
    let momentum_count = read_u64(&mut cr, "momentum blob count")? as usize;
    let param_lens: Vec<usize> = net.params().iter().map(|p| p.len()).collect();
    if momentum_count != 0 && momentum_count != param_lens.len() {
        return Err(format!(
            "checkpoint has {momentum_count} momentum blobs, network has {} parameter blobs",
            param_lens.len()
        ));
    }
    let mut momentum = Vec::with_capacity(momentum_count);
    for (i, &plen) in param_lens.iter().take(momentum_count).enumerate() {
        let mut m = vec![0.0f32; plen];
        read_f32s_into(&mut cr, &mut m, &format!("momentum blob {i}"))?;
        momentum.push(m);
    }
    let stream_count = read_u64(&mut cr, "rng stream count")? as usize;
    let expected_streams = net.rng_streams().len();
    if stream_count != expected_streams {
        return Err(format!(
            "checkpoint has {stream_count} rng streams, network has {expected_streams} \
             randomness-consuming layers"
        ));
    }
    let mut rng_streams = Vec::with_capacity(stream_count);
    for i in 0..stream_count {
        let mut b = [0u8; 8];
        cr.read_exact(&mut b)
            .map_err(|e| format!("truncated reading rng stream {i}: {e}"))?;
        rng_streams.push(u64::from_le_bytes(b));
    }
    cr.verify_trailer("checkpoint")?;
    net.set_rng_streams(&rng_streams)?;
    Ok(SolverState {
        iteration,
        momentum,
        rng_streams,
    })
}

// ---------------------------------------------------------------------
// Convenience: snapshot to / restore from a file path.

pub fn save(net: &Net, path: &std::path::Path) -> io::Result<()> {
    write_weights(net, std::io::BufWriter::new(std::fs::File::create(path)?))
}

pub fn load(net: &mut Net, path: &std::path::Path) -> Result<(), String> {
    let f = std::fs::File::open(path).map_err(|e| e.to_string())?;
    read_weights(net, std::io::BufReader::new(f))
}

pub fn save_checkpoint(net: &Net, state: &SolverState, path: &std::path::Path) -> io::Result<()> {
    write_checkpoint(
        net,
        state,
        std::io::BufWriter::new(std::fs::File::create(path)?),
    )
}

pub fn load_checkpoint(net: &mut Net, path: &std::path::Path) -> Result<SolverState, String> {
    let f = std::fs::File::open(path).map_err(|e| e.to_string())?;
    read_checkpoint(net, std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn roundtrip_restores_weights_exactly() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();
        let mut bytes = Vec::new();
        write_weights(&net, &mut bytes).unwrap();

        // A differently-seeded net... actually identical seeds, so scribble
        // on it first to prove the load really overwrites.
        let mut other = Net::from_def(&def, true).unwrap();
        for p in other.params_mut() {
            p.data_mut().fill(9.9);
        }
        read_weights(&mut other, &bytes[..]).unwrap();
        for (a, b) in net.params().iter().zip(other.params()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn rejects_wrong_magic_and_shape() {
        let def = models::tiny_cnn(2, 3);
        let mut net = Net::from_def(&def, true).unwrap();
        assert!(read_weights(&mut net, &b"NOTAFILE"[..]).is_err());

        // Snapshot of a structurally different network must be rejected.
        let other_def = models::tiny_cnn(2, 7);
        let other = Net::from_def(&other_def, true).unwrap();
        let mut bytes = Vec::new();
        write_weights(&other, &mut bytes).unwrap();
        assert!(read_weights(&mut net, &bytes[..]).is_err());
    }

    #[test]
    fn state_roundtrips_too() {
        use sw26010::{CoreGroup, ExecMode};
        let def = models::tiny_cnn(2, 3);
        let mut net = Net::from_def(&def, true).unwrap();
        // Run a forward pass so the BN running stats move off their init.
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let data: Vec<f32> = (0..2 * 3 * 16 * 16)
            .map(|i| (i % 11) as f32 * 0.3)
            .collect();
        net.set_input("data", &data);
        net.set_input("label", &[0.0, 1.0]);
        net.forward(&mut cg);
        let state_before: Vec<Vec<f32>> = net.state().iter().map(|s| s.to_vec()).collect();
        assert!(state_before
            .iter()
            .any(|s| s.iter().any(|v| *v != 0.0 && *v != 1.0)));

        let mut bytes = Vec::new();
        write_weights(&net, &mut bytes).unwrap();
        let mut other = Net::from_def(&def, true).unwrap();
        read_weights(&mut other, &bytes[..]).unwrap();
        let state_after: Vec<Vec<f32>> = other.state().iter().map(|s| s.to_vec()).collect();
        assert_eq!(state_before, state_after);
    }

    #[test]
    fn file_roundtrip() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();
        let path = std::env::temp_dir().join("swcaffe_snapshot_test.bin");
        save(&net, &path).unwrap();
        let mut loaded = Net::from_def(&def, true).unwrap();
        for p in loaded.params_mut() {
            p.data_mut().fill(0.0);
        }
        load(&mut loaded, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(net.params()[0].data(), loaded.params()[0].data());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn legacy_v2_files_still_load() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();

        // Hand-assemble a legacy file: old magic, same body, no trailer.
        let mut legacy = Vec::new();
        legacy.extend_from_slice(MAGIC_V2);
        write_body(&net, &mut legacy).unwrap();

        let mut loaded = Net::from_def(&def, true).unwrap();
        for p in loaded.params_mut() {
            p.data_mut().fill(0.0);
        }
        read_weights(&mut loaded, &legacy[..]).unwrap();
        for (a, b) in net.params().iter().zip(loaded.params()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn truncated_files_fail_with_context() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();
        let mut bytes = Vec::new();
        write_weights(&net, &mut bytes).unwrap();

        // Cut the file at several depths: inside the magic, inside a
        // length prefix, inside blob data, inside the trailer.
        for cut in [4, 10, 20, bytes.len() / 2, bytes.len() - 2] {
            let mut net2 = Net::from_def(&def, true).unwrap();
            let err = read_weights(&mut net2, &bytes[..cut]).unwrap_err();
            assert!(
                err.contains("truncated"),
                "cut at {cut}: error should mention truncation, got: {err}"
            );
        }
    }

    #[test]
    fn corrupt_payload_fails_the_checksum() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();
        let mut bytes = Vec::new();
        write_weights(&net, &mut bytes).unwrap();

        // Flip one bit in the middle of a parameter blob: the layout
        // still parses, so only the CRC can catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let mut net2 = Net::from_def(&def, true).unwrap();
        let err = read_weights(&mut net2, &bytes[..]).unwrap_err();
        assert!(
            err.contains("checksum mismatch"),
            "expected checksum failure, got: {err}"
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();
        let mut bytes = Vec::new();
        write_weights(&net, &mut bytes).unwrap();

        // Overwrite the first blob's length prefix (right after magic +
        // blob count) with a huge value: the reader must reject it from
        // the layout check, never allocating.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut net2 = Net::from_def(&def, true).unwrap();
        let err = read_weights(&mut net2, &bytes[..]).unwrap_err();
        assert!(err.contains("network expects"), "got: {err}");
    }

    #[test]
    fn checkpoint_roundtrips_solver_state() {
        use crate::solver::{SgdSolver, SolverConfig};
        use sw26010::{CoreGroup, ExecMode};

        // A net with dropout so an RNG stream is in play.
        let def = models::tiny_dropout_cnn(2, 3);
        let mut net = Net::from_def(&def, true).unwrap();
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mut solver = SgdSolver::new(SolverConfig::default());

        // Train a couple of iterations so every piece of state is warm.
        let data: Vec<f32> = (0..2 * 3 * 8 * 8).map(|i| (i % 13) as f32 * 0.1).collect();
        for it in 0..3 {
            net.set_input("data", &data);
            net.set_input("label", &[(it % 3) as f32, ((it + 1) % 3) as f32]);
            net.zero_param_diffs();
            net.forward(&mut cg);
            net.backward(&mut cg);
            solver.step(&mut cg, &mut net);
        }
        assert_eq!(net.rng_streams().len(), 1, "dropout stream must be visible");
        assert_ne!(
            net.rng_streams()[0],
            0x1234_5678,
            "stream must have advanced"
        );
        let state = SolverState {
            iteration: solver.iter() as u64,
            momentum: solver.history().to_vec(),
            rng_streams: net.rng_streams(),
        };
        let mut bytes = Vec::new();
        write_checkpoint(&net, &state, &mut bytes).unwrap();

        let mut restored_net = Net::from_def(&def, true).unwrap();
        let restored = read_checkpoint(&mut restored_net, &bytes[..]).unwrap();
        assert_eq!(restored, state);
        assert_eq!(restored_net.rng_streams(), net.rng_streams());
        for (a, b) in net.params().iter().zip(restored_net.params()) {
            assert_eq!(a.data(), b.data());
        }

        // Corrupt one byte anywhere: checksum must catch it.
        let mut dirty = bytes.clone();
        let mid = dirty.len() / 3;
        dirty[mid] ^= 0x01;
        let mut net3 = Net::from_def(&def, true).unwrap();
        assert!(read_checkpoint(&mut net3, &dirty[..]).is_err());
    }
}
