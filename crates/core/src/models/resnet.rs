//! ResNet-50 (He et al.) — the harder scaling workload of Figs. 10/11
//! (97.7 MB of parameters vs AlexNet's 232.6 MB, far more compute).
//!
//! DAG wiring (bottleneck blocks with shortcut joins) is written directly
//! against `NetDef`; all convolutions use the explicit/NCHW plan — the
//! 1x1-dominated blocks are exactly the small-channel-resolution shapes
//! the paper identifies as memory-bound on SW26010 (Table III).

use crate::netdef::{ConvFormat, LayerKind, NetDef, PoolKind};

use super::IMAGENET_CLASSES;

#[allow(clippy::too_many_arguments)]
fn conv_bn_relu(
    def: NetDef,
    name: &str,
    bottom: &str,
    out: usize,
    k: usize,
    stride: usize,
    pad: usize,
    relu: bool,
) -> (NetDef, String) {
    let conv = name.to_string();
    let bn = format!("{name}/bn");
    let mut def = def
        .layer(
            &conv,
            LayerKind::Convolution {
                num_output: out,
                kernel: k,
                stride,
                pad,
                bias: false,
                format: ConvFormat::Nchw,
            },
            &[bottom],
            &[&conv],
        )
        .layer(
            &bn,
            LayerKind::BatchNorm {
                eps: 1e-5,
                momentum: 0.9,
            },
            &[&conv],
            &[&bn],
        );
    let mut top = bn.clone();
    if relu {
        let r = format!("{name}/relu");
        def = def.layer(&r, LayerKind::ReLU, &[&top], &[&r]);
        top = r;
    }
    (def, top)
}

/// One bottleneck block: 1x1 (stride) -> 3x3 -> 1x1 (4x), with an identity
/// or projection shortcut.
fn bottleneck(
    def: NetDef,
    name: &str,
    bottom: &str,
    mid: usize,
    out: usize,
    stride: usize,
    project: bool,
) -> (NetDef, String) {
    let (def, a) = conv_bn_relu(
        def,
        &format!("{name}/conv1"),
        bottom,
        mid,
        1,
        stride,
        0,
        true,
    );
    let (def, b) = conv_bn_relu(def, &format!("{name}/conv2"), &a, mid, 3, 1, 1, true);
    let (def, c) = conv_bn_relu(def, &format!("{name}/conv3"), &b, out, 1, 1, 0, false);
    let (def, shortcut) = if project {
        conv_bn_relu(
            def,
            &format!("{name}/proj"),
            bottom,
            out,
            1,
            stride,
            0,
            false,
        )
    } else {
        (def, bottom.to_string())
    };
    let sum = format!("{name}/sum");
    let relu = format!("{name}/out");
    let def = def
        .layer(&sum, LayerKind::EltwiseSum, &[&c, &shortcut], &[&sum])
        .layer(&relu, LayerKind::ReLU, &[&sum], &[&relu]);
    (def, relu)
}

/// ResNet-50 at the given batch size (paper: 32).
pub fn resnet50(batch: usize) -> NetDef {
    let def = NetDef::new("resnet50").layer(
        "data",
        LayerKind::Input {
            shape: vec![batch, 3, 224, 224],
            with_labels: true,
        },
        &[],
        &["data", "label"],
    );
    let (def, top) = conv_bn_relu(def, "conv1", "data", 64, 7, 2, 3, true);
    let def = def.layer(
        "pool1",
        LayerKind::Pooling {
            kernel: 3,
            stride: 2,
            pad: 0,
            method: PoolKind::Max,
        },
        &[&top],
        &["pool1"],
    );
    let mut top = "pool1".to_string();
    let mut def = def;
    // (blocks, mid, out, stride of first block)
    let stages: [(usize, usize, usize, usize); 4] = [
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    for (si, &(blocks, mid, out, stride)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let name = format!("res{}{}", si + 2, (b'a' + b as u8) as char);
            let (d, t) = bottleneck(
                def,
                &name,
                &top,
                mid,
                out,
                if b == 0 { stride } else { 1 },
                b == 0,
            );
            def = d;
            top = t;
        }
    }
    def.layer(
        "pool5",
        LayerKind::Pooling {
            kernel: 7,
            stride: 1,
            pad: 0,
            method: PoolKind::Average,
        },
        &[&top],
        &["pool5"],
    )
    .layer(
        "fc1000",
        LayerKind::InnerProduct {
            num_output: IMAGENET_CLASSES,
            bias: true,
        },
        &["pool5"],
        &["fc1000"],
    )
    .layer(
        "loss",
        LayerKind::SoftmaxWithLoss,
        &["fc1000", "label"],
        &["loss"],
    )
    .layer(
        "accuracy",
        LayerKind::Accuracy { top_k: 1 },
        &["fc1000", "label"],
        &["accuracy"],
    )
    .layer(
        "accuracy_top5",
        LayerKind::Accuracy { top_k: 5 },
        &["fc1000", "label"],
        &["accuracy_top5"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Net;

    #[test]
    fn resnet50_is_valid() {
        resnet50(32).validate().unwrap();
    }

    #[test]
    fn resnet50_parameter_count_matches_paper() {
        // Paper Sec. VI-C: ResNet-50's parameters total 97.7 MB (~25.5M).
        let net = Net::from_def(&resnet50(32), false).unwrap();
        let mb = net.param_len() as f64 * 4.0 / 1e6;
        assert!(
            (90.0..110.0).contains(&mb),
            "ResNet-50 parameters = {mb:.1} MB"
        );
    }

    #[test]
    fn resnet50_geometry() {
        let net = Net::from_def(&resnet50(2), false).unwrap();
        assert_eq!(net.blob("pool1").shape(), &[2, 64, 56, 56]);
        assert_eq!(net.blob("res2c/out").shape(), &[2, 256, 56, 56]);
        assert_eq!(net.blob("res3d/out").shape(), &[2, 512, 28, 28]);
        assert_eq!(net.blob("res4f/out").shape(), &[2, 1024, 14, 14]);
        assert_eq!(net.blob("res5c/out").shape(), &[2, 2048, 7, 7]);
        assert_eq!(net.blob("pool5").shape(), &[2, 2048, 1, 1]);
    }

    #[test]
    fn resnet50_has_53_convolutions() {
        let n = resnet50(32)
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Convolution { .. }))
            .count();
        // 1 stem + 3*(3+1) + 4*3+1 + 6*3+1 + 3*3+1 = 53.
        assert_eq!(n, 53);
    }
}
