//! AlexNet with the paper's refinement: local response normalisation
//! replaced by batch normalisation (Sec. VI-A, Fig. 8's "conv/bn" bars).
//!
//! Single-tower formulation (no grouped convolutions), 227x227 inputs.

use crate::netdef::{NetDef, PoolKind};

use super::{NetBuilder, IMAGENET_CLASSES};

/// AlexNet-BN at the given batch size (paper: 256).
pub fn alexnet_bn(batch: usize) -> NetDef {
    NetBuilder::new("alexnet_bn", batch, 3, 227)
        .conv("conv1", 96, 11, 4, 0)
        .bn("conv1/bn")
        .relu("relu1")
        .pool("pool1", 3, 2, 0, PoolKind::Max)
        .conv("conv2", 256, 5, 1, 2)
        .bn("conv2/bn")
        .relu("relu2")
        .pool("pool2", 3, 2, 0, PoolKind::Max)
        .conv("conv3", 384, 3, 1, 1)
        .bn("conv3/bn")
        .relu("relu3")
        .conv("conv4", 384, 3, 1, 1)
        .bn("conv4/bn")
        .relu("relu4")
        .conv("conv5", 256, 3, 1, 1)
        .bn("conv5/bn")
        .relu("relu5")
        .pool("pool5", 3, 2, 0, PoolKind::Max)
        .fc("fc6", 4096)
        .relu("relu6")
        .dropout("drop6", 0.5)
        .fc("fc7", 4096)
        .relu("relu7")
        .dropout("drop7", 0.5)
        .fc("fc8", IMAGENET_CLASSES)
        .loss()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_is_valid() {
        alexnet_bn(256).validate().unwrap();
    }

    #[test]
    fn alexnet_parameter_count_matches_paper() {
        // The paper quotes 232.6 MB of parameters (~58M floats with the
        // single-tower/BN variant; the classic grouped AlexNet is 61M).
        let net = crate::net::Net::from_def(&alexnet_bn(256), false).unwrap();
        let params = net.param_len();
        let mb = params as f64 * 4.0 / 1e6;
        assert!(
            (200.0..280.0).contains(&mb),
            "AlexNet parameters = {mb:.1} MB, expected ~232.6 MB"
        );
    }

    #[test]
    fn alexnet_geometry() {
        // conv1: 227 -> 55; pool1 -> 27; conv2 same; pool2 -> 13;
        // pool5 -> 6; fc6 sees 256*6*6 = 9216.
        let net = crate::net::Net::from_def(&alexnet_bn(8), false).unwrap();
        assert_eq!(net.blob("conv1").shape(), &[8, 96, 55, 55]);
        assert_eq!(net.blob("pool2").shape(), &[8, 256, 13, 13]);
        assert_eq!(net.blob("pool5").shape(), &[8, 256, 6, 6]);
        assert_eq!(net.blob("fc8").shape(), &[8, 1000]);
    }
}
