//! GoogLeNet (Szegedy et al.) — inception modules with channel concat
//! joins. The two auxiliary classifiers of the original are omitted (they
//! only matter for convergence of long training runs, not for the
//! throughput evaluation the paper reports).

use crate::netdef::{ConvFormat, LayerKind, NetDef, PoolKind};

use super::IMAGENET_CLASSES;

fn conv_relu(
    def: NetDef,
    name: &str,
    bottom: &str,
    out: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (NetDef, String) {
    let relu = format!("{name}/relu");
    let def = def
        .layer(
            name,
            LayerKind::Convolution {
                num_output: out,
                kernel: k,
                stride,
                pad,
                bias: true,
                format: ConvFormat::Nchw,
            },
            &[bottom],
            &[name],
        )
        .layer(&relu, LayerKind::ReLU, &[name], &[&relu]);
    (def, relu)
}

/// One inception module: 1x1 / 1x1->3x3 / 1x1->5x5 / pool->1x1, concat.
#[allow(clippy::too_many_arguments)]
fn inception(
    def: NetDef,
    name: &str,
    bottom: &str,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    cp: usize,
) -> (NetDef, String) {
    let (def, b1) = conv_relu(def, &format!("{name}/1x1"), bottom, c1, 1, 1, 0);
    let (def, b3r) = conv_relu(def, &format!("{name}/3x3_reduce"), bottom, c3r, 1, 1, 0);
    let (def, b3) = conv_relu(def, &format!("{name}/3x3"), &b3r, c3, 3, 1, 1);
    let (def, b5r) = conv_relu(def, &format!("{name}/5x5_reduce"), bottom, c5r, 1, 1, 0);
    let (def, b5) = conv_relu(def, &format!("{name}/5x5"), &b5r, c5, 5, 1, 2);
    let pool = format!("{name}/pool");
    let def = def.layer(
        &pool,
        LayerKind::Pooling {
            kernel: 3,
            stride: 1,
            pad: 1,
            method: PoolKind::Max,
        },
        &[bottom],
        &[&pool],
    );
    let (def, bp) = conv_relu(def, &format!("{name}/pool_proj"), &pool, cp, 1, 1, 0);
    let out = format!("{name}/output");
    let def = def.layer(&out, LayerKind::Concat, &[&b1, &b3, &b5, &bp], &[&out]);
    (def, out)
}

/// GoogLeNet at the given batch size (paper: 128).
pub fn googlenet(batch: usize) -> NetDef {
    let def = NetDef::new("googlenet").layer(
        "data",
        LayerKind::Input {
            shape: vec![batch, 3, 224, 224],
            with_labels: true,
        },
        &[],
        &["data", "label"],
    );
    let (def, top) = conv_relu(def, "conv1/7x7_s2", "data", 64, 7, 2, 3);
    let def = def
        .layer(
            "pool1/3x3_s2",
            LayerKind::Pooling {
                kernel: 3,
                stride: 2,
                pad: 0,
                method: PoolKind::Max,
            },
            &[&top],
            &["pool1/3x3_s2"],
        )
        .layer(
            "pool1/norm1",
            LayerKind::Lrn {
                local_size: 5,
                alpha: 1e-4,
                beta: 0.75,
                k: 1.0,
            },
            &["pool1/3x3_s2"],
            &["pool1/norm1"],
        );
    let (def, top) = conv_relu(def, "conv2/3x3_reduce", "pool1/norm1", 64, 1, 1, 0);
    let (def, top) = conv_relu(def, "conv2/3x3", &top, 192, 3, 1, 1);
    let def = def
        .layer(
            "conv2/norm2",
            LayerKind::Lrn {
                local_size: 5,
                alpha: 1e-4,
                beta: 0.75,
                k: 1.0,
            },
            &[&top],
            &["conv2/norm2"],
        )
        .layer(
            "pool2/3x3_s2",
            LayerKind::Pooling {
                kernel: 3,
                stride: 2,
                pad: 0,
                method: PoolKind::Max,
            },
            &["conv2/norm2"],
            &["pool2/3x3_s2"],
        );

    let (def, top) = inception(def, "inception_3a", "pool2/3x3_s2", 64, 96, 128, 16, 32, 32);
    let (def, top) = inception(def, "inception_3b", &top, 128, 128, 192, 32, 96, 64);
    let def = def.layer(
        "pool3/3x3_s2",
        LayerKind::Pooling {
            kernel: 3,
            stride: 2,
            pad: 0,
            method: PoolKind::Max,
        },
        &[&top],
        &["pool3/3x3_s2"],
    );
    let (def, top) = inception(
        def,
        "inception_4a",
        "pool3/3x3_s2",
        192,
        96,
        208,
        16,
        48,
        64,
    );
    let (def, top) = inception(def, "inception_4b", &top, 160, 112, 224, 24, 64, 64);
    let (def, top) = inception(def, "inception_4c", &top, 128, 128, 256, 24, 64, 64);
    let (def, top) = inception(def, "inception_4d", &top, 112, 144, 288, 32, 64, 64);
    let (def, top) = inception(def, "inception_4e", &top, 256, 160, 320, 32, 128, 128);
    let def = def.layer(
        "pool4/3x3_s2",
        LayerKind::Pooling {
            kernel: 3,
            stride: 2,
            pad: 0,
            method: PoolKind::Max,
        },
        &[&top],
        &["pool4/3x3_s2"],
    );
    let (def, top) = inception(
        def,
        "inception_5a",
        "pool4/3x3_s2",
        256,
        160,
        320,
        32,
        128,
        128,
    );
    let (def, top) = inception(def, "inception_5b", &top, 384, 192, 384, 48, 128, 128);
    def.layer(
        "pool5/7x7_s1",
        LayerKind::Pooling {
            kernel: 7,
            stride: 1,
            pad: 0,
            method: PoolKind::Average,
        },
        &[&top],
        &["pool5/7x7_s1"],
    )
    .layer(
        "pool5/drop",
        LayerKind::Dropout { ratio: 0.4 },
        &["pool5/7x7_s1"],
        &["pool5/drop"],
    )
    .layer(
        "loss3/classifier",
        LayerKind::InnerProduct {
            num_output: IMAGENET_CLASSES,
            bias: true,
        },
        &["pool5/drop"],
        &["loss3/classifier"],
    )
    .layer(
        "loss",
        LayerKind::SoftmaxWithLoss,
        &["loss3/classifier", "label"],
        &["loss"],
    )
    .layer(
        "accuracy",
        LayerKind::Accuracy { top_k: 1 },
        &["loss3/classifier", "label"],
        &["accuracy"],
    )
    .layer(
        "accuracy_top5",
        LayerKind::Accuracy { top_k: 5 },
        &["loss3/classifier", "label"],
        &["accuracy_top5"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Net;

    #[test]
    fn googlenet_is_valid() {
        googlenet(128).validate().unwrap();
    }

    #[test]
    fn googlenet_parameter_count_matches_literature() {
        // ~7M parameters (without auxiliary classifiers).
        let net = Net::from_def(&googlenet(128), false).unwrap();
        let m = net.param_len() as f64 / 1e6;
        assert!((5.5..8.0).contains(&m), "GoogLeNet has {m:.1}M params");
    }

    #[test]
    fn googlenet_geometry() {
        let net = Net::from_def(&googlenet(2), false).unwrap();
        assert_eq!(net.blob("pool2/3x3_s2").shape(), &[2, 192, 28, 28]);
        assert_eq!(net.blob("inception_3a/output").shape(), &[2, 256, 28, 28]);
        assert_eq!(net.blob("inception_3b/output").shape(), &[2, 480, 28, 28]);
        assert_eq!(net.blob("inception_4e/output").shape(), &[2, 832, 14, 14]);
        assert_eq!(net.blob("inception_5b/output").shape(), &[2, 1024, 7, 7]);
        assert_eq!(net.blob("pool5/7x7_s1").shape(), &[2, 1024, 1, 1]);
    }
}
