//! VGG-16 and VGG-19 (Simonyan & Zisserman), the networks of Table II and
//! Fig. 9. The builder decides per convolution whether the implicit
//! (RCNB) plan plus its transforms beats the explicit plan — the paper's
//! "gathered" implicit regions fall out of the greedy decision because
//! chained RCNB convolutions only pay the boundary transforms once.

use crate::netdef::{NetDef, PoolKind};

use super::{NetBuilder, IMAGENET_CLASSES};

fn vgg_block(mut b: NetBuilder, stage: usize, convs: usize, channels: usize) -> NetBuilder {
    for i in 1..=convs {
        let name = format!("conv{stage}_{i}");
        b = b
            .conv(&name, channels, 3, 1, 1)
            .relu(&format!("relu{stage}_{i}"));
    }
    b.pool(&format!("pool{stage}"), 2, 2, 0, PoolKind::Max)
}

fn vgg(name: &str, batch: usize, convs_per_stage: [usize; 5]) -> NetDef {
    let mut b = NetBuilder::new(name, batch, 3, 224);
    let channels = [64, 128, 256, 512, 512];
    for (stage, (&n, &c)) in convs_per_stage.iter().zip(&channels).enumerate() {
        b = vgg_block(b, stage + 1, n, c);
    }
    b.fc("fc6", 4096)
        .relu("relu6")
        .dropout("drop6", 0.5)
        .fc("fc7", 4096)
        .relu("relu7")
        .dropout("drop7", 0.5)
        .fc("fc8", IMAGENET_CLASSES)
        .loss()
}

/// VGG-16: stages of [2, 2, 3, 3, 3] convolutions (paper batch 64;
/// Table II uses 128).
pub fn vgg16(batch: usize) -> NetDef {
    vgg("vgg16", batch, [2, 2, 3, 3, 3])
}

/// VGG-19: stages of [2, 2, 4, 4, 4] convolutions (paper batch 64).
pub fn vgg19(batch: usize) -> NetDef {
    vgg("vgg19", batch, [2, 2, 4, 4, 4])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Net;

    #[test]
    fn vgg16_is_valid() {
        vgg16(64).validate().unwrap();
    }

    #[test]
    fn vgg19_is_valid() {
        vgg19(64).validate().unwrap();
    }

    #[test]
    fn vgg16_parameter_count_matches_literature() {
        // ~138M parameters, 102 MB of them in fc6 alone (paper Sec. V-A).
        let net = Net::from_def(&vgg16(64), false).unwrap();
        let m = net.param_len() as f64 / 1e6;
        assert!((130.0..145.0).contains(&m), "VGG-16 has {m:.1}M params");
    }

    #[test]
    fn vgg16_geometry() {
        let net = Net::from_def(&vgg16(4), false).unwrap();
        assert_eq!(net.blob("conv1_1").shape(), &[4, 64, 224, 224]);
        assert_eq!(net.blob("pool5").shape(), &[4, 512, 7, 7]);
        assert_eq!(net.blob("fc6").shape(), &[4, 4096]);
    }

    #[test]
    fn vgg19_has_three_extra_convs() {
        let d16 = vgg16(64);
        let d19 = vgg19(64);
        let count = |d: &NetDef| {
            d.layers
                .iter()
                .filter(|l| matches!(l.kind, crate::netdef::LayerKind::Convolution { .. }))
                .count()
        };
        assert_eq!(count(&d16), 13);
        assert_eq!(count(&d19), 16);
    }
}
