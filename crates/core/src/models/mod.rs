//! Model zoo: the five networks of the paper's evaluation (Table III),
//! with their published batch sizes — AlexNet(-BN) 256, VGG-16 64,
//! VGG-19 64, ResNet-50 32, GoogLeNet 128.

mod alexnet;
mod googlenet;
mod resnet;
mod vgg;

pub use alexnet::alexnet_bn;
pub use googlenet::googlenet;
pub use resnet::resnet50;
pub use vgg::{vgg16, vgg19};

use swdnn::transform::TransShape;
use swdnn::{conv_explicit, conv_implicit, transform, ConvShape};

use crate::netdef::{ConvFormat, LayerKind, NetDef, PoolKind, TransDir};

/// Paper batch sizes (Table III).
pub const ALEXNET_BATCH: usize = 256;
pub const VGG_BATCH: usize = 64;
pub const RESNET50_BATCH: usize = 32;
pub const GOOGLENET_BATCH: usize = 128;

/// Number of ImageNet classes.
pub const IMAGENET_CLASSES: usize = 1000;

/// Network builder that tracks the current activation layout and inserts
/// tensor-transformation layers around implicit-convolution regions, the
/// way swCaffe gathers implicit layers (Sec. IV-C).
pub struct NetBuilder {
    def: NetDef,
    top: String,
    /// Current activation shape in NCHW terms.
    shape: Vec<usize>,
    format: ConvFormat,
    /// When true, convolutions always use the explicit plan (used for the
    /// DAG-structured networks whose joins need NCHW).
    force_nchw: bool,
    counter: usize,
}

impl NetBuilder {
    /// Start a classification network: data + label inputs.
    pub fn new(name: &str, batch: usize, channels: usize, hw: usize) -> Self {
        let def = NetDef::new(name).layer(
            "data",
            LayerKind::Input {
                shape: vec![batch, channels, hw, hw],
                with_labels: true,
            },
            &[],
            &["data", "label"],
        );
        NetBuilder {
            def,
            top: "data".into(),
            shape: vec![batch, channels, hw, hw],
            format: ConvFormat::Nchw,
            force_nchw: false,
            counter: 0,
        }
    }

    pub fn force_nchw(mut self) -> Self {
        self.force_nchw = true;
        self
    }

    /// Current top blob name.
    pub fn top(&self) -> &str {
        &self.top
    }

    /// Current activation shape (NCHW bookkeeping).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    fn push(&mut self, name: &str, kind: LayerKind, bottoms: Vec<String>, top: &str) {
        let def = std::mem::replace(&mut self.def, NetDef::new(""));
        let b: Vec<&str> = bottoms.iter().map(|s| s.as_str()).collect();
        self.def = def.layer(name, kind, &b, &[top]);
        self.top = top.to_string();
    }

    fn conv_shape(&self, num_output: usize, k: usize, stride: usize, pad: usize) -> ConvShape {
        ConvShape {
            batch: self.shape[0],
            in_c: self.shape[1],
            in_h: self.shape[2],
            in_w: self.shape[3],
            out_c: num_output,
            k,
            stride,
            pad,
        }
    }

    /// Should this convolution run in the implicit (RCNB) layout, given
    /// the transforms the switch would cost from the current format?
    fn wants_rcnb(&self, shape: &ConvShape) -> bool {
        if self.force_nchw
            || !conv_implicit::supports_forward(shape)
            || !conv_implicit::supports_backward(shape)
        {
            return false;
        }
        let implicit = conv_implicit::forward_time(shape).seconds()
            + conv_implicit::backward_input_time(shape).seconds()
            + conv_implicit::backward_weights_time(shape).seconds();
        let explicit = conv_explicit::forward_time(shape).seconds()
            + conv_explicit::backward_input_time(shape).seconds()
            + conv_explicit::backward_weights_time(shape).seconds();
        // Transform cost: forward + backward for each boundary crossing.
        let tin = TransShape {
            batch: shape.batch,
            channels: shape.in_c,
            height: shape.in_h,
            width: shape.in_w,
        };
        let tout = TransShape {
            batch: shape.batch,
            channels: shape.out_c,
            height: shape.out_h(),
            width: shape.out_w(),
        };
        let mut trans = 2.0 * transform::time_model(&tout).seconds();
        if matches!(self.format, ConvFormat::Nchw) {
            trans += 2.0 * transform::time_model(&tin).seconds();
        }
        implicit + trans < explicit
    }

    /// Insert a transform back to NCHW if the current region is RCNB.
    pub fn ensure_nchw(&mut self) {
        if matches!(self.format, ConvFormat::Rcnb) {
            self.counter += 1;
            let name = format!("trans{}_to_nchw", self.counter);
            let bottom = self.top.clone();
            self.push(
                &name.clone(),
                LayerKind::TensorTransform {
                    dir: TransDir::RcnbToNchw,
                },
                vec![bottom],
                &name,
            );
            self.format = ConvFormat::Nchw;
        }
    }

    fn ensure_rcnb(&mut self) {
        if matches!(self.format, ConvFormat::Nchw) {
            self.counter += 1;
            let name = format!("trans{}_to_rcnb", self.counter);
            let bottom = self.top.clone();
            self.push(
                &name.clone(),
                LayerKind::TensorTransform {
                    dir: TransDir::NchwToRcnb,
                },
                vec![bottom],
                &name,
            );
            self.format = ConvFormat::Rcnb;
        }
    }

    /// Convolution (+ bias), layout chosen automatically.
    pub fn conv(
        mut self,
        name: &str,
        num_output: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let shape = self.conv_shape(num_output, k, stride, pad);
        let format = if self.wants_rcnb(&shape) {
            ConvFormat::Rcnb
        } else {
            ConvFormat::Nchw
        };
        match format {
            ConvFormat::Rcnb => self.ensure_rcnb(),
            ConvFormat::Nchw => self.ensure_nchw(),
        }
        let bottom = self.top.clone();
        self.push(
            name,
            LayerKind::Convolution {
                num_output,
                kernel: k,
                stride,
                pad,
                bias: true,
                format,
            },
            vec![bottom],
            name,
        );
        self.shape = vec![shape.batch, num_output, shape.out_h(), shape.out_w()];
        self
    }

    /// ReLU (layout-agnostic).
    pub fn relu(mut self, name: &str) -> Self {
        let bottom = self.top.clone();
        self.push(name, LayerKind::ReLU, vec![bottom], name);
        self
    }

    /// Batch normalisation (NCHW).
    pub fn bn(mut self, name: &str) -> Self {
        self.ensure_nchw();
        let bottom = self.top.clone();
        self.push(
            name,
            LayerKind::BatchNorm {
                eps: 1e-5,
                momentum: 0.9,
            },
            vec![bottom],
            name,
        );
        self
    }

    /// LRN (NCHW).
    pub fn lrn(mut self, name: &str) -> Self {
        self.ensure_nchw();
        let bottom = self.top.clone();
        self.push(
            name,
            LayerKind::Lrn {
                local_size: 5,
                alpha: 1e-4,
                beta: 0.75,
                k: 1.0,
            },
            vec![bottom],
            name,
        );
        self
    }

    /// Pooling (NCHW).
    pub fn pool(
        mut self,
        name: &str,
        k: usize,
        stride: usize,
        pad: usize,
        method: PoolKind,
    ) -> Self {
        self.ensure_nchw();
        let bottom = self.top.clone();
        self.push(
            name,
            LayerKind::Pooling {
                kernel: k,
                stride,
                pad,
                method,
            },
            vec![bottom],
            name,
        );
        let (b, c, h, w) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        let p = swdnn::PoolShape {
            batch: b,
            channels: c,
            in_h: h,
            in_w: w,
            k,
            stride,
            pad,
            method: swdnn::PoolMethod::Max,
        };
        self.shape = vec![b, c, p.out_h(), p.out_w()];
        self
    }

    /// Fully-connected layer (flattens; NCHW).
    pub fn fc(mut self, name: &str, num_output: usize) -> Self {
        self.ensure_nchw();
        let bottom = self.top.clone();
        self.push(
            name,
            LayerKind::InnerProduct {
                num_output,
                bias: true,
            },
            vec![bottom],
            name,
        );
        self.shape = vec![self.shape[0], num_output];
        self
    }

    pub fn dropout(mut self, name: &str, ratio: f32) -> Self {
        let bottom = self.top.clone();
        self.push(name, LayerKind::Dropout { ratio }, vec![bottom], name);
        self
    }

    /// Final softmax loss (+ accuracy) against the label input.
    pub fn loss(mut self) -> NetDef {
        self.ensure_nchw();
        let scores = self.top.clone();
        let def = std::mem::replace(&mut self.def, NetDef::new(""));
        def.layer(
            "loss",
            LayerKind::SoftmaxWithLoss,
            &[&scores, "label"],
            &["loss"],
        )
        .layer(
            "accuracy",
            LayerKind::Accuracy { top_k: 1 },
            &[&scores, "label"],
            &["accuracy"],
        )
        .layer(
            "accuracy_top5",
            LayerKind::Accuracy { top_k: 5 },
            &[&scores, "label"],
            &["accuracy_top5"],
        )
    }

    /// Access the raw definition for DAG-structured models (ResNet /
    /// GoogLeNet), which wire branches manually.
    pub fn into_parts(mut self) -> (NetDef, String, Vec<usize>) {
        self.ensure_nchw();
        let def = std::mem::replace(&mut self.def, NetDef::new(""));
        (def, self.top.clone(), self.shape.clone())
    }
}

/// [`tiny_cnn`] plus a dropout layer: the checkpoint/restore tests use
/// it because the dropout RNG stream is exactly the piece of state a
/// naive weights-only snapshot forgets.
pub fn tiny_dropout_cnn(batch: usize, classes: usize) -> NetDef {
    NetBuilder::new("tiny_dropout_cnn", batch, 3, 8)
        .force_nchw()
        .conv("conv1", 4, 3, 1, 1)
        .bn("bn1")
        .relu("relu1")
        .fc("fc1", 16)
        .relu("relu2")
        .dropout("drop1", 0.3)
        .fc("fc", classes)
        .loss()
}

/// A small CNN for tests and the quickstart example: conv-bn-relu-pool x2,
/// fc, loss — every common layer family in a functional-scale package.
pub fn tiny_cnn(batch: usize, classes: usize) -> NetDef {
    NetBuilder::new("tiny_cnn", batch, 3, 16)
        .force_nchw()
        .conv("conv1", 8, 3, 1, 1)
        .bn("bn1")
        .relu("relu1")
        .pool("pool1", 2, 2, 0, PoolKind::Max)
        .conv("conv2", 16, 3, 1, 1)
        .relu("relu2")
        .pool("pool2", 2, 2, 0, PoolKind::Max)
        .fc("fc", classes)
        .loss()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cnn_is_valid() {
        tiny_cnn(4, 10).validate().unwrap();
    }

    #[test]
    fn builder_tracks_shapes() {
        let b = NetBuilder::new("t", 2, 3, 32).conv("c1", 8, 3, 1, 1).pool(
            "p1",
            2,
            2,
            0,
            PoolKind::Max,
        );
        assert_eq!(b.shape(), &[2, 8, 16, 16]);
    }
}
