//! Blob: the 4-D tensor (data + gradient) that flows between layers,
//! mirroring Caffe's `Blob<float>`.
//!
//! In timing-only mode blobs carry shape but no storage — a full VGG-16
//! batch-128 activation set is tens of GB, which the performance sweeps
//! never need to materialise.

/// An N-dimensional tensor with a paired gradient buffer.
#[derive(Debug, Clone, Default)]
pub struct Blob {
    shape: Vec<usize>,
    data: Vec<f32>,
    diff: Vec<f32>,
    materialized: bool,
}

impl Blob {
    /// A materialised (functional-mode) blob, zero-filled.
    pub fn new(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Blob {
            shape: shape.to_vec(),
            data: vec![0.0; len],
            diff: vec![0.0; len],
            materialized: true,
        }
    }

    /// A shape-only (timing-mode) blob.
    pub fn shell(shape: &[usize]) -> Self {
        Blob {
            shape: shape.to_vec(),
            data: Vec::new(),
            diff: Vec::new(),
            materialized: false,
        }
    }

    pub fn with_mode(shape: &[usize], materialize: bool) -> Self {
        if materialize {
            Blob::new(shape)
        } else {
            Blob::shell(shape)
        }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn materialized(&self) -> bool {
        self.materialized
    }

    /// Resize, preserving mode. Contents are zeroed.
    pub fn reshape(&mut self, shape: &[usize]) {
        let len: usize = shape.iter().product();
        self.shape = shape.to_vec();
        if self.materialized {
            self.data.clear();
            self.data.resize(len, 0.0);
            self.diff.clear();
            self.diff.resize(len, 0.0);
        }
    }

    /// Leading dimension (mini-batch size for data blobs).
    pub fn num(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Channels (second axis), 1 if absent.
    pub fn channels(&self) -> usize {
        self.shape.get(1).copied().unwrap_or(1)
    }

    /// Product of trailing axes from `axis`.
    pub fn count_from(&self, axis: usize) -> usize {
        self.shape[axis..].iter().product()
    }

    pub fn data(&self) -> &[f32] {
        debug_assert!(self.materialized, "data access on a shell blob");
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        debug_assert!(self.materialized, "data access on a shell blob");
        &mut self.data
    }

    pub fn diff(&self) -> &[f32] {
        debug_assert!(self.materialized, "diff access on a shell blob");
        &self.diff
    }

    pub fn diff_mut(&mut self) -> &mut [f32] {
        debug_assert!(self.materialized, "diff access on a shell blob");
        &mut self.diff
    }

    /// Split borrow: `(data, diff_mut)` — the common backward-pass pattern.
    pub fn data_and_diff_mut(&mut self) -> (&[f32], &mut [f32]) {
        debug_assert!(self.materialized, "access on a shell blob");
        (&self.data, &mut self.diff)
    }

    /// Split borrow the other way: `(diff, data_mut)` — optimizer updates.
    pub fn diff_and_data_mut(&mut self) -> (&[f32], &mut [f32]) {
        debug_assert!(self.materialized, "access on a shell blob");
        (&self.diff, &mut self.data)
    }

    pub fn set_data(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.len(), "set_data length mismatch");
        self.data_mut().copy_from_slice(values);
    }

    pub fn zero_diff(&mut self) {
        if self.materialized {
            self.diff.fill(0.0);
        }
    }

    /// Sum of squared data entries (diagnostics, weight-decay tests).
    pub fn sumsq_data(&self) -> f64 {
        self.data.iter().map(|v| (*v as f64) * (*v as f64)).sum()
    }

    /// L1 norm of the gradient (diagnostics).
    pub fn asum_diff(&self) -> f64 {
        self.diff.iter().map(|v| (*v as f64).abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_blob_is_zeroed() {
        let b = Blob::new(&[2, 3, 4, 5]);
        assert_eq!(b.len(), 120);
        assert_eq!(b.shape(), &[2, 3, 4, 5]);
        assert!(b.data().iter().all(|v| *v == 0.0));
        assert_eq!(b.num(), 2);
        assert_eq!(b.channels(), 3);
        assert_eq!(b.count_from(2), 20);
    }

    #[test]
    fn shell_blob_has_no_storage() {
        let b = Blob::shell(&[128, 3, 224, 224]);
        assert_eq!(b.len(), 128 * 3 * 224 * 224);
        assert!(!b.materialized());
    }

    #[test]
    fn reshape_preserves_mode() {
        let mut b = Blob::new(&[4]);
        b.data_mut()[0] = 5.0;
        b.reshape(&[2, 8]);
        assert_eq!(b.len(), 16);
        assert!(b.materialized());
        assert_eq!(b.data()[0], 0.0);

        let mut s = Blob::shell(&[4]);
        s.reshape(&[32]);
        assert!(!s.materialized());
    }

    #[test]
    fn norms() {
        let mut b = Blob::new(&[3]);
        b.set_data(&[1.0, -2.0, 2.0]);
        b.diff_mut().copy_from_slice(&[0.5, -0.5, 1.0]);
        assert_eq!(b.sumsq_data(), 9.0);
        assert_eq!(b.asum_diff(), 2.0);
    }
}
