//! The network: blobs + layers + the forward/backward schedules
//! (Caffe's `Net`, the second of the three components in Sec. II-C).

use std::cell::RefCell;
use std::collections::HashMap;

use sw26010::{CoreGroup, SimTime};
use swdnn::elementwise as ew;

use crate::blob::Blob;
use crate::layer::{Layer, Phase};
use crate::layers;
use crate::netdef::{LayerKind, NetDef};

/// A runnable network instance.
pub struct Net {
    name: String,
    def: NetDef,
    layers: Vec<Box<dyn Layer>>,
    layer_bottoms: Vec<Vec<usize>>,
    layer_tops: Vec<Vec<usize>>,
    blobs: Vec<RefCell<Blob>>,
    blob_index: HashMap<String, usize>,
    /// Whether each blob needs a gradient (false for Input-layer products).
    needs_grad: Vec<bool>,
    materialize: bool,
    loss_blob: Option<usize>,
}

/// Per-layer timing breakdown of one pass (Figs. 8/9 raw data).
#[derive(Debug, Clone)]
pub struct LayerTimes {
    pub entries: Vec<(String, SimTime)>,
}

/// A gradient-ready event: layer `layer`, whose parameters occupy `span`
/// of the packed gradient vector (the `pack_gradients` layout), finished
/// its backward step at simulated core-group time `ready`.
///
/// Events fire in backward execution order — last layers first — which is
/// exactly the order an overlapped bucketed all-reduce wants to consume
/// them in.
#[derive(Debug, Clone, PartialEq)]
pub struct GradReady {
    pub layer: String,
    pub span: std::ops::Range<usize>,
    pub ready: SimTime,
}

impl LayerTimes {
    pub fn total(&self) -> SimTime {
        self.entries
            .iter()
            .fold(SimTime::ZERO, |acc, (_, t)| acc + *t)
    }
}

impl Net {
    /// Build a network from its definition. `materialize` selects
    /// functional (true) or timing-only (false) blobs; it must match the
    /// mode of the core group the net later runs on.
    pub fn from_def(def: &NetDef, materialize: bool) -> Result<Net, String> {
        Self::from_def_seeded(def, materialize, 0)
    }

    /// Build a network for a specific execution mode (backend): blobs are
    /// materialised exactly when the mode carries data. Equivalent to
    /// `from_def(def, mode.is_functional())`; the same mode must be used
    /// for the core group the net runs on.
    pub fn from_def_mode(def: &NetDef, mode: sw26010::ExecMode) -> Result<Net, String> {
        Self::from_def_seeded(def, mode.is_functional(), 0)
    }

    /// [`Net::from_def_mode`] with an explicit parameter-filler seed.
    pub fn from_def_mode_seeded(
        def: &NetDef,
        mode: sw26010::ExecMode,
        base_seed: u64,
    ) -> Result<Net, String> {
        Self::from_def_seeded(def, mode.is_functional(), base_seed)
    }

    /// Build a network for the process-default backend. The mode comes
    /// from [`swbackend::default_functional_mode`] — the single latched
    /// lookup (`install_default` wins over `SWCAFFE_BACKEND`, which is
    /// read once per process) — so a mid-run environment mutation can
    /// never silently flip the backend under an installed default.
    pub fn from_def_default(def: &NetDef) -> Result<Net, String> {
        Self::from_def_default_seeded(def, 0)
    }

    /// [`Net::from_def_default`] with an explicit parameter-filler seed.
    pub fn from_def_default_seeded(def: &NetDef, base_seed: u64) -> Result<Net, String> {
        Self::from_def_mode_seeded(def, swbackend::default_functional_mode(), base_seed)
    }

    /// Like [`Net::from_def`] with an explicit base seed for every
    /// filler-initialised parameter blob: two nets built from the same
    /// definition and seed are bit-identical, and the seed can be varied
    /// per replica/run without touching the definition.
    pub fn from_def_seeded(def: &NetDef, materialize: bool, base_seed: u64) -> Result<Net, String> {
        def.validate()?;
        // Static shape inference up front: a malformed definition is
        // rejected with a typed, layer-anchored error here instead of a
        // panic (or a late setup error) deep inside layer construction.
        crate::lint::infer_shapes(def).map_err(|v| format!("net lint: {v}"))?;
        let mut net = Net {
            name: def.name.clone(),
            def: def.clone(),
            layers: Vec::new(),
            layer_bottoms: Vec::new(),
            layer_tops: Vec::new(),
            blobs: Vec::new(),
            blob_index: HashMap::new(),
            needs_grad: Vec::new(),
            materialize,
            loss_blob: None,
        };
        for ldef in &def.layers {
            let mut layer = layers::build_seeded(ldef, base_seed);
            let bottom_ids: Vec<usize> = ldef
                .bottoms
                .iter()
                .map(|b| net.blob_index[b.as_str()])
                .collect();
            let bottom_shapes: Vec<Vec<usize>> = bottom_ids
                .iter()
                .map(|&i| net.blobs[i].borrow().shape().to_vec())
                .collect();
            let top_shapes = layer
                .setup(&bottom_shapes, materialize)
                .map_err(|e| format!("layer '{}': {e}", ldef.name))?;
            if top_shapes.len() != ldef.tops.len() {
                return Err(format!(
                    "layer '{}' produced {} tops, definition names {}",
                    ldef.name,
                    top_shapes.len(),
                    ldef.tops.len()
                ));
            }
            let is_input = matches!(ldef.kind, LayerKind::Input { .. });
            let mut top_ids = Vec::new();
            for (name, shape) in ldef.tops.iter().zip(&top_shapes) {
                let id = net.blobs.len();
                net.blobs
                    .push(RefCell::new(Blob::with_mode(shape, materialize)));
                net.blob_index.insert(name.clone(), id);
                net.needs_grad.push(!is_input);
                top_ids.push(id);
            }
            if layer.is_loss() {
                net.loss_blob = Some(top_ids[0]);
            }
            net.layers.push(layer);
            net.layer_bottoms.push(bottom_ids);
            net.layer_tops.push(top_ids);
        }
        Ok(net)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn materialized(&self) -> bool {
        self.materialize
    }

    /// Blob lookup by name.
    pub fn blob(&self, name: &str) -> std::cell::Ref<'_, Blob> {
        self.blobs[self.blob_index[name]].borrow()
    }

    pub fn blob_mut(&self, name: &str) -> std::cell::RefMut<'_, Blob> {
        self.blobs[self.blob_index[name]].borrow_mut()
    }

    pub fn has_blob(&self, name: &str) -> bool {
        self.blob_index.contains_key(name)
    }

    /// Copy input data into a source blob (e.g. "data", "label").
    pub fn set_input(&self, name: &str, values: &[f32]) {
        self.blob_mut(name).set_data(values);
    }

    /// All learnable parameter blobs, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Blob> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    pub fn params(&self) -> Vec<&Blob> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Total learnable parameter count (the paper quotes 232.6 MB for
    /// AlexNet and 97.7 MB for ResNet-50 at 4 bytes each).
    pub fn param_len(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// All persistent layer state vectors (snapshot payload beyond the
    /// learnable parameters).
    pub fn state(&self) -> Vec<&[f32]> {
        self.layers.iter().flat_map(|l| l.state()).collect()
    }

    pub fn state_mut(&mut self) -> Vec<&mut Vec<f32>> {
        self.layers.iter_mut().flat_map(|l| l.state_mut()).collect()
    }

    /// Private RNG streams of randomness-consuming layers (dropout), in
    /// layer order. Part of a full-solver checkpoint: restoring them
    /// makes the replayed mask sequence bit-identical to the sequence an
    /// uninterrupted run would have drawn.
    pub fn rng_streams(&self) -> Vec<u64> {
        self.layers.iter().filter_map(|l| l.rng_state()).collect()
    }

    /// Restore the streams captured by [`Net::rng_streams`]. The stream
    /// count must match the net's randomness-consuming layer count.
    pub fn set_rng_streams(&mut self, streams: &[u64]) -> Result<(), String> {
        let holders: Vec<usize> = self
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.rng_state().is_some())
            .map(|(i, _)| i)
            .collect();
        if holders.len() != streams.len() {
            return Err(format!(
                "checkpoint has {} rng streams, network has {} randomness-consuming layers",
                streams.len(),
                holders.len()
            ));
        }
        for (&i, &s) in holders.iter().zip(streams) {
            self.layers[i].set_rng_state(s);
        }
        Ok(())
    }

    pub fn zero_param_diffs(&mut self) {
        for p in self.params_mut() {
            p.zero_diff();
        }
    }

    fn run_layer_forward(&mut self, cg: &mut CoreGroup, i: usize) {
        let bottoms: Vec<std::cell::Ref<'_, Blob>> = self.layer_bottoms[i]
            .iter()
            .map(|&b| self.blobs[b].borrow())
            .collect();
        let bottom_refs: Vec<&Blob> = bottoms.iter().map(|r| &**r).collect();
        let mut tops: Vec<std::cell::RefMut<'_, Blob>> = self.layer_tops[i]
            .iter()
            .map(|&t| self.blobs[t].borrow_mut())
            .collect();
        let mut top_refs: Vec<&mut Blob> = tops.iter_mut().map(|r| &mut **r).collect();
        self.layers[i].forward(cg, &bottom_refs, &mut top_refs);
    }

    /// Forward pass; returns the loss (0 in timing mode or for loss-less
    /// nets).
    pub fn forward(&mut self, cg: &mut CoreGroup) -> f32 {
        for i in 0..self.layers.len() {
            self.run_layer_forward(cg, i);
        }
        match self.loss_blob {
            Some(b) if self.materialize => self.blobs[b].borrow().data()[0],
            _ => 0.0,
        }
    }

    /// Forward pass with a per-layer time breakdown.
    pub fn forward_with_times(&mut self, cg: &mut CoreGroup) -> (f32, LayerTimes) {
        let mut entries = Vec::with_capacity(self.layers.len());
        for i in 0..self.layers.len() {
            let before = cg.elapsed();
            self.run_layer_forward(cg, i);
            entries.push((self.layers[i].name().to_string(), cg.elapsed() - before));
        }
        let loss = match self.loss_blob {
            Some(b) if self.materialize => self.blobs[b].borrow().data()[0],
            _ => 0.0,
        };
        (loss, LayerTimes { entries })
    }

    fn run_layer_backward(&mut self, cg: &mut CoreGroup, i: usize, diff_written: &mut [bool]) {
        // Skip layers whose outputs never received a gradient and which do
        // not originate one (e.g. Accuracy).
        let originates = self.layers[i].is_loss();
        let receives = self.layer_tops[i].iter().any(|&t| diff_written[t]);
        if !originates && !receives {
            return;
        }
        let pd: Vec<bool> = self.layer_bottoms[i]
            .iter()
            .map(|&b| self.needs_grad[b])
            .collect();

        // Gradient fan-in: if some bottom's diff was already written by a
        // later consumer, stash it, let this layer overwrite, then add the
        // stash back (the Caffe split-layer sum, expressed as an AXPY).
        let mut stashes: Vec<(usize, Option<Vec<f32>>)> = Vec::new();
        for (slot, &b) in self.layer_bottoms[i].iter().enumerate() {
            if pd[slot] && diff_written[b] {
                let stash = self
                    .materialize
                    .then(|| self.blobs[b].borrow().diff().to_vec());
                stashes.push((b, stash));
            }
        }

        {
            let tops: Vec<std::cell::Ref<'_, Blob>> = self.layer_tops[i]
                .iter()
                .map(|&t| self.blobs[t].borrow())
                .collect();
            let top_refs: Vec<&Blob> = tops.iter().map(|r| &**r).collect();
            let mut bottoms: Vec<std::cell::RefMut<'_, Blob>> = self.layer_bottoms[i]
                .iter()
                .map(|&b| self.blobs[b].borrow_mut())
                .collect();
            let mut bottom_refs: Vec<&mut Blob> = bottoms.iter_mut().map(|r| &mut **r).collect();
            self.layers[i].backward(cg, &top_refs, &mut bottom_refs, &pd);
        }

        for (b, stash) in stashes {
            let len = self.blobs[b].borrow().len();
            if let Some(stash) = stash {
                let mut blob = self.blobs[b].borrow_mut();
                ew::axpy(cg, len, 1.0, Some((&stash, blob.diff_mut())));
            } else {
                ew::axpy(cg, len, 1.0, None);
            }
        }
        for (slot, &b) in self.layer_bottoms[i].iter().enumerate() {
            if pd[slot] {
                diff_written[b] = true;
            }
        }
    }

    /// Backward pass (assumes `forward` ran).
    pub fn backward(&mut self, cg: &mut CoreGroup) {
        let mut diff_written = vec![false; self.blobs.len()];
        for i in (0..self.layers.len()).rev() {
            self.run_layer_backward(cg, i, &mut diff_written);
        }
    }

    /// Per-layer spans of the packed parameter/gradient vector, in layer
    /// (== `params()` / `pack_gradients`) order. Parameter-less layers
    /// are omitted; the spans partition `0..param_len()`.
    pub fn param_layout(&self) -> Vec<(String, std::ops::Range<usize>)> {
        let mut offset = 0;
        let mut out = Vec::new();
        for l in &self.layers {
            let len: usize = l.params().iter().map(|p| p.len()).sum();
            if len > 0 {
                out.push((l.name().to_string(), offset..offset + len));
            }
            offset += len;
        }
        out
    }

    /// Backward pass invoking `hook` whenever a parameterised layer's
    /// gradient becomes ready, with the layer's packed span and the
    /// simulated time on `cg` at that moment. The hook is observation
    /// only — the pass itself is identical to [`Net::backward`].
    pub fn backward_with_hook(&mut self, cg: &mut CoreGroup, mut hook: impl FnMut(GradReady)) {
        let mut spans: Vec<Option<std::ops::Range<usize>>> = Vec::with_capacity(self.layers.len());
        let mut offset = 0;
        for l in &self.layers {
            let len: usize = l.params().iter().map(|p| p.len()).sum();
            spans.push((len > 0).then(|| offset..offset + len));
            offset += len;
        }
        let mut diff_written = vec![false; self.blobs.len()];
        for i in (0..self.layers.len()).rev() {
            self.run_layer_backward(cg, i, &mut diff_written);
            if let Some(span) = spans[i].clone() {
                hook(GradReady {
                    layer: self.layers[i].name().to_string(),
                    span,
                    ready: cg.elapsed(),
                });
            }
        }
    }

    /// Backward pass collecting the gradient-ready events (emission
    /// order: backward execution order, i.e. output layers first).
    pub fn backward_with_events(&mut self, cg: &mut CoreGroup) -> Vec<GradReady> {
        let mut events = Vec::new();
        self.backward_with_hook(cg, |e| events.push(e));
        events
    }

    /// Backward pass with per-layer times (in execution order, i.e.
    /// reversed topological order).
    pub fn backward_with_times(&mut self, cg: &mut CoreGroup) -> LayerTimes {
        let mut diff_written = vec![false; self.blobs.len()];
        let mut entries = Vec::with_capacity(self.layers.len());
        for i in (0..self.layers.len()).rev() {
            let before = cg.elapsed();
            self.run_layer_backward(cg, i, &mut diff_written);
            entries.push((self.layers[i].name().to_string(), cg.elapsed() - before));
        }
        LayerTimes { entries }
    }

    /// Human-readable network summary: layer table with shapes and
    /// parameter counts (the `caffe net summary` analogue).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "network '{}' — {} layers, {} parameters",
            self.name,
            self.layers.len(),
            self.param_len()
        );
        let _ = writeln!(
            out,
            "{:<24}{:<16}{:>20}{:>12}",
            "layer", "type", "output shape", "params"
        );
        for (i, layer) in self.layers.iter().enumerate() {
            let shape = self.layer_tops[i]
                .first()
                .map(|&t| format!("{:?}", self.blobs[t].borrow().shape()))
                .unwrap_or_default();
            let params: usize = layer.params().iter().map(|p| p.len()).sum();
            let _ = writeln!(
                out,
                "{:<24}{:<16}{:>20}{:>12}",
                layer.name(),
                layer.layer_type(),
                shape,
                params
            );
        }
        out
    }

    /// Switch every layer between training and inference behaviour.
    pub fn set_phase(&mut self, phase: Phase) {
        for l in &mut self.layers {
            l.set_phase(phase);
        }
    }

    /// Layer count (diagnostics).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Layer names in topological order.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Freeze hook: capture every layer's learnable parameters and
    /// persistent state by layer name. `swserve` uses this to carry
    /// trained weights (and BN running statistics) from a training net
    /// into an optimized inference graph whose layer set differs.
    pub fn layer_snapshots(&self) -> Vec<LayerSnapshot> {
        self.layers
            .iter()
            .map(|l| LayerSnapshot {
                name: l.name().to_string(),
                layer_type: l.layer_type().to_string(),
                params: l.params().iter().map(|p| p.data().to_vec()).collect(),
                state: l.state().iter().map(|s| s.to_vec()).collect(),
            })
            .collect()
    }

    /// Freeze hook: restore parameters/state captured by
    /// [`Net::layer_snapshots`], matched by layer name. Every layer of
    /// `self` that owns parameters or state must have a snapshot with
    /// matching vector lengths; snapshots for layers this net does not
    /// contain are ignored (they were optimized away).
    pub fn load_layer_snapshots(&mut self, snaps: &[LayerSnapshot]) -> Result<(), String> {
        let by_name: HashMap<&str, &LayerSnapshot> =
            snaps.iter().map(|s| (s.name.as_str(), s)).collect();
        for layer in &mut self.layers {
            let has_payload = !layer.params().is_empty() || !layer.state().is_empty();
            if !has_payload {
                continue;
            }
            let name = layer.name().to_string();
            let snap = by_name
                .get(name.as_str())
                .ok_or_else(|| format!("no snapshot for layer '{name}'"))?;
            let params = layer.params_mut();
            if params.len() != snap.params.len() {
                return Err(format!(
                    "layer '{name}': snapshot has {} param blobs, layer has {}",
                    snap.params.len(),
                    params.len()
                ));
            }
            for (blob, data) in params.into_iter().zip(&snap.params) {
                if blob.len() != data.len() {
                    return Err(format!(
                        "layer '{name}': param length {} != snapshot {}",
                        blob.len(),
                        data.len()
                    ));
                }
                blob.set_data(data);
            }
            let state = layer.state_mut();
            if state.len() != snap.state.len() {
                return Err(format!(
                    "layer '{name}': snapshot has {} state vectors, layer has {}",
                    snap.state.len(),
                    state.len()
                ));
            }
            for (vec, data) in state.into_iter().zip(&snap.state) {
                if vec.len() != data.len() {
                    return Err(format!(
                        "layer '{name}': state length {} != snapshot {}",
                        vec.len(),
                        data.len()
                    ));
                }
                vec.copy_from_slice(data);
            }
        }
        Ok(())
    }

    /// Resolved per-layer descriptors (kind + actual blob shapes) — the
    /// interface external cost models (the GPU/CPU baselines) consume.
    pub fn ops(&self) -> Vec<LayerOp> {
        self.def
            .layers
            .iter()
            .enumerate()
            .map(|(i, ldef)| LayerOp {
                name: ldef.name.clone(),
                kind: ldef.kind.clone(),
                in_shapes: self.layer_bottoms[i]
                    .iter()
                    .map(|&b| self.blobs[b].borrow().shape().to_vec())
                    .collect(),
                out_shapes: self.layer_tops[i]
                    .iter()
                    .map(|&t| self.blobs[t].borrow().shape().to_vec())
                    .collect(),
            })
            .collect()
    }
}

/// One layer's frozen payload: parameters and persistent state, keyed by
/// layer name (see [`Net::layer_snapshots`]).
#[derive(Debug, Clone)]
pub struct LayerSnapshot {
    pub name: String,
    pub layer_type: String,
    pub params: Vec<Vec<f32>>,
    pub state: Vec<Vec<f32>>,
}

/// One resolved layer: its definition plus concrete bottom/top shapes.
#[derive(Debug, Clone)]
pub struct LayerOp {
    pub name: String,
    pub kind: LayerKind,
    pub in_shapes: Vec<Vec<usize>>,
    pub out_shapes: Vec<Vec<usize>>,
}

#[cfg(test)]
mod event_tests {
    use super::*;
    use crate::models;
    use sw26010::ExecMode;

    #[test]
    fn param_layout_partitions_packed_vector() {
        let def = models::alexnet_bn(2);
        let net = Net::from_def(&def, false).unwrap();
        let layout = net.param_layout();
        assert!(!layout.is_empty());
        let mut offset = 0;
        for (name, span) in &layout {
            assert_eq!(span.start, offset, "gap before layer {name}");
            assert!(span.end > span.start, "empty span for layer {name}");
            offset = span.end;
        }
        assert_eq!(offset, net.param_len());
    }

    #[test]
    fn backward_events_cover_every_param_and_are_causally_ordered() {
        let def = models::tiny_cnn(2, 4);
        let mut net = Net::from_def(&def, true).unwrap();
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let x: Vec<f32> = (0..net.blob("data").len())
            .map(|i| ((i * 37 % 11) as f32 - 5.0) / 7.0)
            .collect();
        net.set_input("data", &x);
        net.set_input("label", &[1.0, 2.0]);
        net.forward(&mut cg);
        let start = cg.elapsed();
        let events = net.backward_with_events(&mut cg);
        // Backward order: last parameterised layer's gradient first.
        let layout = net.param_layout();
        let reversed: Vec<&str> = layout.iter().rev().map(|(n, _)| n.as_str()).collect();
        let emitted: Vec<&str> = events.iter().map(|e| e.layer.as_str()).collect();
        assert_eq!(emitted, reversed);
        // Spans match the packed layout and ready times never decrease.
        let mut prev = start;
        for e in &events {
            let (_, span) = layout.iter().find(|(n, _)| *n == e.layer).unwrap();
            assert_eq!(&e.span, span, "span mismatch for {}", e.layer);
            assert!(e.ready.seconds() >= prev.seconds());
            prev = e.ready;
        }
    }

    #[test]
    fn backward_with_events_matches_plain_backward() {
        let def = models::tiny_cnn(2, 4);
        let mut a = Net::from_def_seeded(&def, true, 7).unwrap();
        let mut b = Net::from_def_seeded(&def, true, 7).unwrap();
        let mut cga = CoreGroup::new(ExecMode::Functional);
        let mut cgb = CoreGroup::new(ExecMode::Functional);
        let x: Vec<f32> = (0..a.blob("data").len())
            .map(|i| ((i * 13 % 23) as f32 - 11.0) / 9.0)
            .collect();
        for (net, cg) in [(&mut a, &mut cga), (&mut b, &mut cgb)] {
            net.set_input("data", &x);
            net.set_input("label", &[0.0, 3.0]);
            net.forward(cg);
        }
        a.backward(&mut cga);
        b.backward_with_events(&mut cgb);
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.diff(), pb.diff());
        }
        assert_eq!(cga.elapsed().seconds(), cgb.elapsed().seconds());
    }
}

#[cfg(test)]
mod seed_tests {
    use super::*;
    use crate::models;

    fn weights(net: &Net) -> Vec<f32> {
        net.params()
            .iter()
            .flat_map(|p| p.data().to_vec())
            .collect()
    }

    #[test]
    fn same_seed_builds_identical_weights() {
        let def = models::alexnet_bn(2);
        let a = Net::from_def_seeded(&def, true, 42).unwrap();
        let b = Net::from_def_seeded(&def, true, 42).unwrap();
        assert_eq!(weights(&a), weights(&b));
    }

    #[test]
    fn different_seeds_diverge() {
        let def = models::alexnet_bn(2);
        let a = Net::from_def_seeded(&def, true, 1).unwrap();
        let b = Net::from_def_seeded(&def, true, 2).unwrap();
        assert_ne!(weights(&a), weights(&b));
    }

    #[test]
    fn from_def_is_seed_zero() {
        let def = models::vgg16(1);
        let a = Net::from_def(&def, true).unwrap();
        let b = Net::from_def_seeded(&def, true, 0).unwrap();
        assert_eq!(weights(&a), weights(&b));
    }
}
