//! Deterministic pseudo-random numbers for weight initialisation.
//!
//! A tiny SplitMix64 generator — the same family `swio`'s synthetic
//! dataset uses — so every filler draw is reproducible from an explicit
//! `u64` seed with no external dependencies. Not cryptographic; it only
//! has to be well-distributed and byte-stable across runs and platforms.

/// SplitMix64 (Steele, Lea & Flood 2014). Passes BigCrush, one `u64` of
/// state, trivially seedable.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` — safe to feed into `ln()`.
    pub fn next_f64_open0(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform in `[lo, hi]`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

/// Derive a per-layer filler seed from a run-level base seed and the
/// layer name: FNV-1a over the name, one SplitMix64 scramble to mix in
/// the base. Distinct names get uncorrelated streams (unlike a byte sum,
/// which collides on anagrams like `conv12`/`conv21`), and the whole
/// initialisation is reproducible from the one base seed.
pub fn layer_seed(base: u64, name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::new(h ^ base).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // First outputs for seed 1234567 from the published reference
        // implementation; pins cross-platform byte-stability.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            let o = r.next_f64_open0();
            assert!(o > 0.0 && o <= 1.0);
        }
    }

    #[test]
    fn layer_seeds_separate_names_and_bases() {
        // Anagram names must not collide (the old byte-sum did).
        assert_ne!(layer_seed(0, "conv12"), layer_seed(0, "conv21"));
        // The base seed shifts every layer's stream.
        assert_ne!(layer_seed(0, "conv1"), layer_seed(1, "conv1"));
        // And the derivation is pure.
        assert_eq!(layer_seed(7, "fc6"), layer_seed(7, "fc6"));
    }

    #[test]
    fn uniform_spread() {
        let mut r = SplitMix64::new(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.uniform(-1.0, 1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
