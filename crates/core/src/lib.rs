//! # swcaffe-core — the swCaffe framework
//!
//! Caffe's three components (layers / net / solvers, Sec. II-C of the
//! paper) re-hosted on the simulated SW26010: layers wrap the `swdnn`
//! kernel library, the net schedules forward/backward over a DAG of
//! blobs, and the SGD solver exposes the hooks the distributed trainer
//! (`swtrain`) uses for synchronous data-parallel training.
//!
//! Networks are declared as JSON-serialisable [`netdef::NetDef`] values;
//! [`models`] provides the five networks the paper evaluates (AlexNet-BN,
//! VGG-16, VGG-19, ResNet-50, GoogLeNet) with their Table III batch sizes.

pub mod blob;
pub mod filler;
pub mod layer;
pub mod layers;
pub mod lint;
pub mod models;
pub mod net;
pub mod netdef;
pub mod rng;
pub mod snapshot;
pub mod solver;

pub use blob::Blob;
pub use layer::{Layer, Phase};
pub use lint::{infer_shapes, lint_def, GraphViolation};
pub use net::{GradReady, LayerOp, LayerSnapshot, LayerTimes, Net};
pub use netdef::{ConvFormat, LayerDef, LayerKind, NetDef, PoolKind, TransDir};
pub use solver::{LrPolicy, SgdSolver, SolverConfig};
