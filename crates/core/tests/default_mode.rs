//! Regression: `Net::from_def_default` routes through the single
//! latched `swbackend::default_functional_mode()` lookup, so a mid-run
//! `SWCAFFE_BACKEND` mutation cannot silently flip which backend a net
//! materialises for.
//!
//! Single test function: the default-backend state is process-global
//! and this integration-test binary owns its process.

use swcaffe_core::{models, Net};

#[test]
fn from_def_default_uses_the_latched_backend() {
    std::env::remove_var("SWCAFFE_BACKEND");
    let def = models::tiny_cnn(2, 4);

    // Default backend (Sw26010) -> functional, materialised blobs.
    let net = Net::from_def_default(&def).unwrap();
    assert!(net.materialized());
    assert_eq!(
        swbackend::default_functional_mode(),
        sw26010::ExecMode::Functional
    );

    // Mutating the environment mid-run changes nothing: the lookup was
    // latched at first use.
    std::env::set_var("SWCAFFE_BACKEND", "host:5");
    let net = Net::from_def_default(&def).unwrap();
    assert!(net.materialized());
    assert_eq!(
        swbackend::default_functional_mode(),
        sw26010::ExecMode::Functional
    );

    // An explicit install is the only way to change the default, and
    // from_def_default follows it (host-native also materialises).
    swbackend::install_default(&swbackend::HostNative { threads: 2 });
    assert_eq!(
        swbackend::default_functional_mode(),
        sw26010::ExecMode::HostNative { threads: 2 }
    );
    let net = Net::from_def_default_seeded(&def, 7).unwrap();
    assert!(net.materialized());
}
