//! End-to-end framework tests: functional training convergence, gradient
//! sanity, and timing-mode execution of the full model zoo.

use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::models;
use swcaffe_core::{Net, SgdSolver, SolverConfig};

/// Deterministic, linearly-separable-ish synthetic dataset: class k images
/// have elevated intensity in stripe k.
fn synth_batch(
    batch: usize,
    classes: usize,
    len_per_img: usize,
    seed: usize,
) -> (Vec<f32>, Vec<f32>) {
    let mut data = vec![0.0f32; batch * len_per_img];
    let mut labels = vec![0.0f32; batch];
    for b in 0..batch {
        let class = (b + seed) % classes;
        labels[b] = class as f32;
        for i in 0..len_per_img {
            let noise = (((b * 131 + i * 31 + seed * 17) % 97) as f32 / 97.0 - 0.5) * 0.2;
            let stripe = (i * classes / len_per_img) == class;
            data[b * len_per_img + i] = noise + if stripe { 1.0 } else { 0.0 };
        }
    }
    (data, labels)
}

#[test]
fn tiny_cnn_trains_to_lower_loss() {
    let classes = 4;
    let batch = 8;
    let def = models::tiny_cnn(batch, classes);
    let mut net = Net::from_def(&def, true).unwrap();
    let mut cg = CoreGroup::new(ExecMode::Functional);
    let mut solver = SgdSolver::new(SolverConfig {
        base_lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        ..Default::default()
    });

    let img = 3 * 16 * 16;
    let (data, labels) = synth_batch(batch, classes, img, 0);
    net.set_input("data", &data);
    net.set_input("label", &labels);
    let first_loss = net.forward(&mut cg);
    assert!(
        first_loss.is_finite() && first_loss > 0.5,
        "initial loss {first_loss}"
    );

    let mut last_loss = first_loss;
    for iter in 0..25 {
        let (data, labels) = synth_batch(batch, classes, img, iter % 3);
        net.set_input("data", &data);
        net.set_input("label", &labels);
        net.zero_param_diffs();
        last_loss = net.forward(&mut cg);
        net.backward(&mut cg);
        solver.step(&mut cg, &mut net);
    }
    assert!(
        last_loss < 0.6 * first_loss,
        "training failed to reduce loss: {first_loss} -> {last_loss}"
    );
    // Accuracy on the training distribution should be well above chance.
    let (data, labels) = synth_batch(batch, classes, img, 0);
    net.set_input("data", &data);
    net.set_input("label", &labels);
    net.forward(&mut cg);
    let acc = net.blob("accuracy").data()[0];
    assert!(acc >= 0.5, "accuracy {acc} not above chance");
    // The simulated clock advanced.
    assert!(cg.elapsed().seconds() > 0.0);
}

#[test]
fn gradients_flow_to_every_parameter() {
    let def = models::tiny_cnn(4, 3);
    let mut net = Net::from_def(&def, true).unwrap();
    let mut cg = CoreGroup::new(ExecMode::Functional);
    let (data, labels) = synth_batch(4, 3, 3 * 16 * 16, 1);
    net.set_input("data", &data);
    net.set_input("label", &labels);
    net.zero_param_diffs();
    net.forward(&mut cg);
    net.backward(&mut cg);
    for (i, p) in net.params().iter().enumerate() {
        assert!(
            p.asum_diff() > 0.0,
            "parameter blob {i} received no gradient"
        );
        assert!(
            p.diff().iter().all(|v| v.is_finite()),
            "parameter blob {i} has NaN grads"
        );
    }
}

#[test]
fn timing_mode_runs_all_five_networks() {
    // Shrunk batches: timing models are closed-form so batch only scales
    // the numbers; this keeps the test quick while touching every layer.
    let nets: Vec<(&str, swcaffe_core::NetDef)> = vec![
        ("alexnet", models::alexnet_bn(16)),
        ("vgg16", models::vgg16(8)),
        ("vgg19", models::vgg19(8)),
        ("resnet50", models::resnet50(8)),
        ("googlenet", models::googlenet(8)),
    ];
    for (name, def) in nets {
        let mut net = Net::from_def(&def, false).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let (_, fwd) = net.forward_with_times(&mut cg);
        let bwd = net.backward_with_times(&mut cg);
        let f = fwd.total().seconds();
        let b = bwd.total().seconds();
        assert!(f > 0.0 && f.is_finite(), "{name}: bad forward time {f}");
        assert!(b > 0.0 && b.is_finite(), "{name}: bad backward time {b}");
        // Backward is roughly 1.5-3x forward for conv nets.
        assert!(
            b > 0.8 * f,
            "{name}: backward {b} implausibly small vs forward {f}"
        );
        assert_eq!(fwd.entries.len(), net.layer_count());
    }
}

#[test]
fn functional_and_timing_modes_charge_identically() {
    // The central simulator invariant at framework level: a full training
    // iteration charges the same simulated time in both modes.
    let def = models::tiny_cnn(4, 3);

    let run = |materialize: bool| -> f64 {
        let mode = if materialize {
            ExecMode::Functional
        } else {
            ExecMode::TimingOnly
        };
        let mut net = Net::from_def(&def, materialize).unwrap();
        let mut cg = CoreGroup::new(mode);
        if materialize {
            let (data, labels) = synth_batch(4, 3, 3 * 16 * 16, 2);
            net.set_input("data", &data);
            net.set_input("label", &labels);
        }
        net.forward(&mut cg);
        net.backward(&mut cg);
        cg.elapsed().seconds()
    };

    let functional = run(true);
    let timing = run(false);
    let rel = (functional - timing).abs() / functional;
    // Mesh execution vs closed-form models: small drift allowed.
    assert!(
        rel < 0.12,
        "mode mismatch: functional {functional} vs timing {timing} (rel {rel})"
    );
}

#[test]
fn netdef_json_roundtrip_preserves_execution() {
    let def = models::tiny_cnn(4, 3);
    let json = def.to_json();
    let def2 = swcaffe_core::NetDef::from_json(&json).unwrap();
    let mut net1 = Net::from_def(&def, true).unwrap();
    let mut net2 = Net::from_def(&def2, true).unwrap();
    let mut cg = CoreGroup::new(ExecMode::Functional);
    let (data, labels) = synth_batch(4, 3, 3 * 16 * 16, 3);
    for net in [&mut net1, &mut net2] {
        net.set_input("data", &data);
        net.set_input("label", &labels);
    }
    let l1 = net1.forward(&mut cg);
    let l2 = net2.forward(&mut cg);
    assert_eq!(l1, l2, "identical nets with identical seeds must agree");
}
