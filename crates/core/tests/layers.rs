//! Direct layer-level tests: each framework layer exercised in isolation
//! through a minimal two-layer net, checked against hand-computed or
//! finite-difference oracles, plus phase (train/test) behaviour.

use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{ConvFormat, LayerKind, Net, NetDef, Phase, PoolKind, TransDir};

fn cg() -> CoreGroup {
    CoreGroup::new(ExecMode::Functional)
}

fn single_layer_net(kind: LayerKind, in_shape: Vec<usize>) -> Net {
    let def = NetDef::new("t")
        .layer(
            "data",
            LayerKind::Input {
                shape: in_shape,
                with_labels: false,
            },
            &[],
            &["data"],
        )
        .layer("l", kind, &["data"], &["out"]);
    Net::from_def(&def, true).unwrap()
}

#[test]
fn relu_layer_forward() {
    let mut net = single_layer_net(LayerKind::ReLU, vec![1, 1, 2, 2]);
    net.set_input("data", &[-1.0, 2.0, 0.0, -0.5]);
    net.forward(&mut cg());
    assert_eq!(net.blob("out").data(), &[0.0, 2.0, 0.0, 0.0]);
}

#[test]
fn pooling_layer_forward() {
    let mut net = single_layer_net(
        LayerKind::Pooling {
            kernel: 2,
            stride: 2,
            pad: 0,
            method: PoolKind::Max,
        },
        vec![1, 1, 2, 2],
    );
    net.set_input("data", &[1.0, 3.0, 2.0, 0.0]);
    net.forward(&mut cg());
    assert_eq!(net.blob("out").data(), &[3.0]);
}

#[test]
fn conv_layer_1x1_is_channel_mix() {
    // A 1x1 convolution with hand-set weights is a per-pixel matrix
    // multiply over channels.
    let def = NetDef::new("t")
        .layer(
            "data",
            LayerKind::Input {
                shape: vec![1, 2, 2, 2],
                with_labels: false,
            },
            &[],
            &["data"],
        )
        .layer(
            "conv",
            LayerKind::Convolution {
                num_output: 1,
                kernel: 1,
                stride: 1,
                pad: 0,
                bias: false,
                format: ConvFormat::Nchw,
            },
            &["data"],
            &["out"],
        );
    let mut net = Net::from_def(&def, true).unwrap();
    // weights (1, 2, 1, 1) = [2, -1].
    net.params_mut()[0].set_data(&[2.0, -1.0]);
    // channel0 = [1,2,3,4], channel1 = [10,20,30,40].
    net.set_input("data", &[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
    net.forward(&mut cg());
    assert_eq!(net.blob("out").data(), &[-8.0, -16.0, -24.0, -32.0]);
}

#[test]
fn eltwise_and_concat_layers() {
    let def = NetDef::new("t")
        .layer(
            "data",
            LayerKind::Input {
                shape: vec![1, 1, 2, 2],
                with_labels: false,
            },
            &[],
            &["a"],
        )
        .layer(
            "data2",
            LayerKind::Input {
                shape: vec![1, 1, 2, 2],
                with_labels: false,
            },
            &[],
            &["b"],
        )
        .layer("sum", LayerKind::EltwiseSum, &["a", "b"], &["sum"])
        .layer("cat", LayerKind::Concat, &["a", "sum"], &["cat"]);
    let mut net = Net::from_def(&def, true).unwrap();
    net.set_input("a", &[1.0, 2.0, 3.0, 4.0]);
    net.set_input("b", &[10.0, 10.0, 10.0, 10.0]);
    net.forward(&mut cg());
    assert_eq!(net.blob("sum").data(), &[11.0, 12.0, 13.0, 14.0]);
    assert_eq!(net.blob("cat").shape(), &[1, 2, 2, 2]);
    assert_eq!(
        net.blob("cat").data(),
        &[1.0, 2.0, 3.0, 4.0, 11.0, 12.0, 13.0, 14.0]
    );
}

#[test]
fn transform_layer_roundtrip_through_net() {
    let def = NetDef::new("t")
        .layer(
            "data",
            LayerKind::Input {
                shape: vec![2, 3, 2, 2],
                with_labels: false,
            },
            &[],
            &["data"],
        )
        .layer(
            "to",
            LayerKind::TensorTransform {
                dir: TransDir::NchwToRcnb,
            },
            &["data"],
            &["rcnb"],
        )
        .layer(
            "back",
            LayerKind::TensorTransform {
                dir: TransDir::RcnbToNchw,
            },
            &["rcnb"],
            &["out"],
        );
    let mut net = Net::from_def(&def, true).unwrap();
    let input: Vec<f32> = (0..24).map(|i| i as f32).collect();
    net.set_input("data", &input);
    net.forward(&mut cg());
    assert_eq!(net.blob("out").data(), &input[..]);
    assert_ne!(net.blob("rcnb").data(), &input[..]);
}

#[test]
fn dropout_respects_phase() {
    let mut net = single_layer_net(LayerKind::Dropout { ratio: 0.5 }, vec![1, 1, 10, 10]);
    let input = vec![1.0f32; 100];
    net.set_input("data", &input);
    let mut c = cg();

    net.set_phase(Phase::Train);
    net.forward(&mut c);
    let train_out: Vec<f32> = net.blob("out").data().to_vec();
    let zeros = train_out.iter().filter(|v| **v == 0.0).count();
    assert!(zeros > 20 && zeros < 80, "dropout zeroed {zeros}/100");
    // Survivors are scaled by 1/(1-p) = 2.
    assert!(train_out
        .iter()
        .all(|v| *v == 0.0 || (*v - 2.0).abs() < 1e-6));

    net.set_phase(Phase::Test);
    net.forward(&mut c);
    assert_eq!(
        net.blob("out").data(),
        &input[..],
        "inference must be the identity"
    );
}

#[test]
fn batchnorm_respects_phase() {
    let mut net = single_layer_net(
        LayerKind::BatchNorm {
            eps: 1e-5,
            momentum: 0.5,
        },
        vec![2, 1, 2, 2],
    );
    let mut c = cg();
    // Train on a biased batch so running stats move away from (0, 1).
    let input = vec![5.0f32, 5.0, 5.0, 5.0, 7.0, 7.0, 7.0, 7.0];
    net.set_input("data", &input);
    net.set_phase(Phase::Train);
    net.forward(&mut c);
    // Training output is batch-normalised: mean 0.
    let train_out: Vec<f32> = net.blob("out").data().to_vec();
    let mean: f32 = train_out.iter().sum::<f32>() / 8.0;
    assert!(mean.abs() < 1e-4);

    // In test phase the same input normalises with the *running* stats,
    // which have only moved halfway (momentum 0.5 from init (0,1)):
    // mean 3, var ~1 (0.5*1 + 0.5*1): output stays far from zero-mean.
    net.set_phase(Phase::Test);
    net.forward(&mut c);
    let test_out: Vec<f32> = net.blob("out").data().to_vec();
    let tmean: f32 = test_out.iter().sum::<f32>() / 8.0;
    assert!(
        tmean > 1.0,
        "test-phase output mean {tmean} should reflect running stats"
    );
    assert_ne!(train_out, test_out);
}

#[test]
fn inner_product_gradient_check() {
    // Drive the layer directly (bypassing the Net, which only backprops
    // from loss layers): d(sum of outputs)/d(weights) by finite
    // differences.
    use swcaffe_core::layers::InnerProductLayer;
    use swcaffe_core::{Blob, Layer};

    let input_data = [0.5f32, -1.0, 2.0, 1.5, 0.0, -0.5];
    let forward_sum = |w: &[f32]| -> f64 {
        let mut layer = InnerProductLayer::new("fc", 2, true);
        layer.setup(&[vec![2, 3]], true).unwrap();
        layer.params_mut()[0].set_data(w);
        let mut bottom = Blob::new(&[2, 3]);
        bottom.set_data(&input_data);
        let mut top = Blob::new(&[2, 2]);
        layer.forward(&mut cg(), &[&bottom], &mut [&mut top]);
        let total: f64 = top.data().iter().map(|v| *v as f64).sum();
        total
    };

    let mut layer = InnerProductLayer::new("fc", 2, true);
    layer.setup(&[vec![2, 3]], true).unwrap();
    let w0: Vec<f32> = layer.params()[0].data().to_vec();
    let mut bottom = Blob::new(&[2, 3]);
    bottom.set_data(&input_data);
    let mut top = Blob::new(&[2, 2]);
    layer.forward(&mut cg(), &[&bottom], &mut [&mut top]);
    top.diff_mut().fill(1.0);
    layer.backward(&mut cg(), &[&top], &mut [&mut bottom], &[true]);
    let dw: Vec<f32> = layer.params()[0].diff().to_vec();
    let db: Vec<f32> = layer.params()[1].diff().to_vec();

    // Bias gradient of sum-loss is the batch size per output.
    assert!(db.iter().all(|v| (*v - 2.0).abs() < 1e-4), "db = {db:?}");

    let eps = 1e-2f32;
    for wi in [0usize, 2, 5] {
        let mut wp = w0.clone();
        wp[wi] += eps;
        let up = forward_sum(&wp);
        wp[wi] = w0[wi] - eps;
        let down = forward_sum(&wp);
        let fd = (up - down) / (2.0 * eps as f64);
        assert!(
            (fd - dw[wi] as f64).abs() < 2e-2 * fd.abs().max(1.0),
            "dW[{wi}]: fd {fd} vs analytic {}",
            dw[wi]
        );
    }
}

#[test]
fn lrn_layer_runs_in_net() {
    let mut net = single_layer_net(
        LayerKind::Lrn {
            local_size: 3,
            alpha: 1e-4,
            beta: 0.75,
            k: 1.0,
        },
        vec![1, 4, 2, 2],
    );
    let input: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
    net.set_input("data", &input);
    net.forward(&mut cg());
    let out = net.blob("out").data().to_vec();
    // LRN shrinks magnitudes (scale >= k = 1) but preserves signs/zeros.
    for (o, i) in out.iter().zip(&input) {
        assert!(o.abs() <= i.abs() + 1e-6);
        assert_eq!(o.signum(), i.signum());
    }
}

#[test]
fn branched_dag_gradient_fan_in() {
    // A blob consumed by two branches (ResNet shortcut pattern): the
    // bottom's gradient must be the *sum* of both consumers' gradients.
    // Verified against finite differences through the loss.
    use swcaffe_core::models::NetBuilder;
    let def = {
        // data -> conv -> relu -> (branch A: conv2) + (shortcut) -> sum -> fc -> loss
        let b = NetBuilder::new("branchy", 2, 2, 6).force_nchw();
        let (def, _, _) = b.conv("conv1", 4, 3, 1, 1).relu("relu1").into_parts();
        def.layer(
            "conv2",
            LayerKind::Convolution {
                num_output: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
                bias: false,
                format: ConvFormat::Nchw,
            },
            &["relu1"],
            &["conv2"],
        )
        .layer(
            "join",
            LayerKind::EltwiseSum,
            &["conv2", "relu1"],
            &["join"],
        )
        .layer(
            "fc",
            LayerKind::InnerProduct {
                num_output: 3,
                bias: false,
            },
            &["join"],
            &["fc"],
        )
        .layer(
            "loss",
            LayerKind::SoftmaxWithLoss,
            &["fc", "label"],
            &["loss"],
        )
    };
    def.validate().unwrap();

    let input: Vec<f32> = (0..2 * 2 * 36)
        .map(|i| ((i * 7) % 13) as f32 * 0.1 - 0.6)
        .collect();
    let labels = [0.0f32, 2.0];

    let loss_of = |data: &[f32]| -> f64 {
        let mut net = Net::from_def(&def, true).unwrap();
        net.set_input("data", data);
        net.set_input("label", &labels);
        net.forward(&mut cg()) as f64
    };

    // Analytic gradient w.r.t. the *data* blob requires propagating into
    // an input... instead check the first conv's weight gradient, which
    // receives contributions through BOTH branches.
    let mut net = Net::from_def(&def, true).unwrap();
    net.set_input("data", &input);
    net.set_input("label", &labels);
    net.zero_param_diffs();
    net.forward(&mut cg());
    net.backward(&mut cg());
    let w0: Vec<f32> = net.params()[0].data().to_vec();
    let dw: Vec<f32> = net.params()[0].diff().to_vec();
    assert!(dw.iter().any(|v| *v != 0.0), "conv1 got no gradient");

    let loss_with_w = |w: &[f32]| -> f64 {
        let mut net = Net::from_def(&def, true).unwrap();
        net.params_mut()[0].set_data(w);
        net.set_input("data", &input);
        net.set_input("label", &labels);
        net.forward(&mut cg()) as f64
    };
    let _ = loss_of;
    let eps = 5e-3f32;
    for wi in [0usize, 7, 31, 50] {
        let mut wp = w0.clone();
        wp[wi] += eps;
        let up = loss_with_w(&wp);
        wp[wi] = w0[wi] - eps;
        let down = loss_with_w(&wp);
        let fd = (up - down) / (2.0 * eps as f64);
        assert!(
            (fd - dw[wi] as f64).abs() < 5e-2 * fd.abs().max(0.05),
            "dW[{wi}] through branched DAG: fd {fd} vs analytic {}",
            dw[wi]
        );
    }
}

#[test]
fn inception_module_trains_functionally() {
    // A miniature GoogLeNet inception module (4 branches + concat) must
    // run forward/backward and learn — exercising Concat's gradient split
    // and the 4-way fan-out of the module input.
    let mk_conv = |n: usize| LayerKind::Convolution {
        num_output: n,
        kernel: 1,
        stride: 1,
        pad: 0,
        bias: true,
        format: ConvFormat::Nchw,
    };
    let def = NetDef::new("mini_inception")
        .layer(
            "data",
            LayerKind::Input {
                shape: vec![4, 6, 6, 6],
                with_labels: true,
            },
            &[],
            &["data", "label"],
        )
        .layer("b1", mk_conv(3), &["data"], &["b1"])
        .layer("b3r", mk_conv(2), &["data"], &["b3r"])
        .layer(
            "b3",
            LayerKind::Convolution {
                num_output: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
                bias: true,
                format: ConvFormat::Nchw,
            },
            &["b3r"],
            &["b3"],
        )
        .layer(
            "pool",
            LayerKind::Pooling {
                kernel: 3,
                stride: 1,
                pad: 1,
                method: PoolKind::Max,
            },
            &["data"],
            &["pool"],
        )
        .layer("bp", mk_conv(2), &["pool"], &["bp"])
        .layer("cat", LayerKind::Concat, &["b1", "b3", "bp"], &["cat"])
        .layer("relu", LayerKind::ReLU, &["cat"], &["relu"])
        .layer(
            "fc",
            LayerKind::InnerProduct {
                num_output: 3,
                bias: true,
            },
            &["relu"],
            &["fc"],
        )
        .layer(
            "loss",
            LayerKind::SoftmaxWithLoss,
            &["fc", "label"],
            &["loss"],
        );
    def.validate().unwrap();

    let mut net = Net::from_def(&def, true).unwrap();
    assert_eq!(net.blob("cat").shape(), &[4, 9, 6, 6]);

    let mut solver = swcaffe_core::SgdSolver::new(swcaffe_core::SolverConfig {
        base_lr: 0.1,
        ..Default::default()
    });
    let mut c = cg();
    let img = 6 * 6 * 6;
    let data: Vec<f32> = (0..4 * img)
        .map(|i| {
            let b = i / img;
            let pos = i % img;
            let stripe = pos * 3 / img == b % 3;
            ((i * 17 % 23) as f32 / 23.0 - 0.5) * 0.2 + if stripe { 1.0 } else { 0.0 }
        })
        .collect();
    let labels: Vec<f32> = (0..4).map(|b| (b % 3) as f32).collect();
    net.set_input("data", &data);
    net.set_input("label", &labels);
    let first = net.forward(&mut c);
    let mut last = first;
    for _ in 0..20 {
        net.zero_param_diffs();
        last = net.forward(&mut c);
        net.backward(&mut c);
        solver.step(&mut c, &mut net);
        // Every conv branch must receive gradient.
        for (i, p) in net.params().iter().enumerate() {
            assert!(p.diff().iter().all(|v| v.is_finite()), "param {i} NaN");
        }
    }
    assert!(
        last < 0.5 * first,
        "inception module failed to learn: {first} -> {last}"
    );
}
