//! Regression tests over the reproduced experiments: the *shapes* of
//! every table and figure (who wins, by roughly what factor, where the
//! crossovers fall) are pinned here so a model change that silently
//! breaks an experiment fails CI. EXPERIMENTS.md records the exact
//! paper-vs-measured values.

use baselines::{cpu_e5_2680v3, gpu_k40m, throughput_img_per_sec};
use sw26010::{dma, ExecMode};
use swcaffe_core::{models, Net, NetDef, SolverConfig};
use swdnn::{conv_explicit, conv_implicit, ConvShape};
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};
use swtrain::{ChipTrainer, ScalingModel};

fn sw_img_per_sec(cg_def: &NetDef, chip_batch: usize) -> f64 {
    let mut t = ChipTrainer::new(cg_def, SolverConfig::default(), ExecMode::TimingOnly).unwrap();
    let r = t.iteration(None);
    chip_batch as f64 / ChipTrainer::iteration_time(&r).seconds()
}

// ---- Fig. 2 ----------------------------------------------------------

#[test]
fn fig2_dma_bandwidth_shape() {
    // 64-CPE continuous saturates near 28 GB/s and small transfers lose
    // most of it; strided 4 B blocks are catastrophic.
    let sat = dma::continuous_aggregate_bandwidth(32 << 10, 64);
    assert!(sat > 25.0e9 && sat <= 28.0e9);
    assert!(dma::continuous_aggregate_bandwidth(128, 64) < 0.4 * sat);
    assert!(dma::strided_aggregate_bandwidth(4, 32 << 10, 64) < 0.1 * sat);
    assert!(dma::strided_aggregate_bandwidth(256, 32 << 10, 64) > 0.3 * sat);
}

// ---- Fig. 6 ----------------------------------------------------------

#[test]
fn fig6_p2p_shape() {
    let sw = NetParams::sunway(ReduceEngine::Mpe);
    let ib = NetParams::infiniband();
    // SW saturates at ~12 GB/s; over-subscribed is a quarter.
    let bw = sw.p2p_bandwidth(4 << 20, false);
    assert!((bw - 12.0e9).abs() / 12.0e9 < 0.05);
    assert!((sw.p2p_bandwidth(4 << 20, true) - bw / 4.0).abs() / bw < 0.05);
    // SW latency worse than IB beyond 2 KB, comparable below.
    assert!(sw.p2p_latency(64 << 10).seconds() > ib.p2p_latency(64 << 10).seconds());
}

// ---- Table II --------------------------------------------------------

#[test]
fn table2_strategy_availability_matches_paper() {
    let vgg = |ni, no, hw| ConvShape {
        batch: 128,
        in_c: ni,
        in_h: hw,
        in_w: hw,
        out_c: no,
        k: 3,
        stride: 1,
        pad: 1,
    };
    // Forward: implicit unavailable only for conv1_1.
    assert!(!conv_implicit::supports_forward(&vgg(3, 64, 224)));
    assert!(conv_implicit::supports_forward(&vgg(64, 64, 224)));
    // Backward: unavailable through conv2_1, available from conv2_2 on.
    assert!(!conv_implicit::supports_backward(&vgg(64, 128, 112)));
    assert!(conv_implicit::supports_backward(&vgg(128, 128, 112)));
}

#[test]
fn table2_gflops_hierarchy() {
    // Achieved Gflops must climb from conv1_1 (tens) to conv4/5 (~380,
    // paper: 270-387) and never exceed the 742.4 peak.
    let rate = |ni, no, hw| {
        let s = ConvShape {
            batch: 128,
            in_c: ni,
            in_h: hw,
            in_w: hw,
            out_c: no,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let t = if conv_implicit::supports_forward(&s) {
            conv_implicit::forward_time(&s)
                .seconds()
                .min(conv_explicit::forward_time(&s).seconds())
        } else {
            conv_explicit::forward_time(&s).seconds()
        };
        s.forward_flops() as f64 / t / 1e9
    };
    let conv1_1 = rate(3, 64, 224);
    let conv3_1 = rate(128, 256, 56);
    let conv5_1 = rate(512, 512, 14);
    assert!(conv1_1 < 120.0, "conv1_1 at {conv1_1:.0} Gflops");
    assert!(conv3_1 > 250.0, "conv3_1 at {conv3_1:.0} Gflops");
    assert!(
        conv5_1 > 300.0 && conv5_1 < 742.4,
        "conv5_1 at {conv5_1:.0}"
    );
    assert!(conv1_1 < conv3_1 && conv3_1 < conv5_1 * 1.2);
}

// ---- Table III -------------------------------------------------------

#[test]
fn table3_throughput_shape() {
    // The pivotal orderings: SW beats the GPU only on AlexNet; SW beats
    // the CPU everywhere; ResNet-50 is SW's weakest network vs the GPU.
    let gpu = gpu_k40m();
    let cpu = cpu_e5_2680v3();
    let ratios: Vec<(&str, f64, f64)> = vec![
        (
            "alexnet",
            sw_img_per_sec(&models::alexnet_bn(64), 256),
            256.0,
        ),
        ("vgg16", sw_img_per_sec(&models::vgg16(16), 64), 64.0),
        ("resnet50", sw_img_per_sec(&models::resnet50(8), 32), 32.0),
    ]
    .into_iter()
    .map(|(name, sw, batch)| {
        let def: NetDef = match name {
            "alexnet" => models::alexnet_bn(256),
            "vgg16" => models::vgg16(64),
            _ => models::resnet50(32),
        };
        let net = Net::from_def(&def, false).unwrap();
        let g = throughput_img_per_sec(&net, &gpu, batch as usize);
        let c = throughput_img_per_sec(&net, &cpu, batch as usize);
        (name, sw / g, sw / c)
    })
    .collect();

    let (alex_nv, alex_cpu) = (ratios[0].1, ratios[0].2);
    let (vgg_nv, _) = (ratios[1].1, ratios[1].2);
    let (res_nv, res_cpu) = (ratios[2].1, ratios[2].2);
    assert!(
        alex_nv > 1.0,
        "SW must beat the K40m on AlexNet: {alex_nv:.2}"
    );
    assert!(
        vgg_nv < 1.0 && vgg_nv > 0.3,
        "VGG-16 SW/NV {vgg_nv:.2} (paper 0.45)"
    );
    assert!(res_nv < vgg_nv, "ResNet must be SW's weakest vs GPU");
    assert!(alex_cpu > 3.0 && res_cpu > 1.5, "SW several times the CPU");
}

// ---- Fig. 7 / all-reduce ---------------------------------------------

#[test]
fn fig7_improved_allreduce_wins() {
    let topo = Topology::new(1024);
    let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
    let elems = 58_150_000; // AlexNet
    let nat = allreduce(
        &topo,
        &params,
        RankMap::Natural,
        Algorithm::RecursiveHalvingDoubling,
        elems,
        None,
    );
    let rr = allreduce(
        &topo,
        &params,
        RankMap::RoundRobin,
        Algorithm::RecursiveHalvingDoubling,
        elems,
        None,
    );
    let ring = allreduce(
        &topo,
        &params,
        RankMap::Natural,
        Algorithm::Ring,
        elems,
        None,
    );
    assert!(
        rr.elapsed.seconds() < 0.5 * nat.elapsed.seconds(),
        "remap {} vs natural {}",
        rr.elapsed.seconds(),
        nat.elapsed.seconds()
    );
    assert!(
        ring.elapsed.seconds() > nat.elapsed.seconds(),
        "ring must lose at scale"
    );
    // Calibration anchor: ~1 s to all-reduce AlexNet over 1024 nodes
    // (back-derived from the paper's Fig. 11 fractions).
    assert!(
        (0.6..1.6).contains(&rr.elapsed.seconds()),
        "allreduce calibration drifted: {}",
        rr.elapsed.seconds()
    );
}

// ---- Figs. 10/11 -----------------------------------------------------

#[test]
fn fig10_fig11_scaling_shape() {
    let model = |node_seconds: f64, params: usize| ScalingModel {
        node_time: sw26010::SimTime::from_seconds(node_seconds),
        param_elems: params,
        net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
        rank_map: RankMap::RoundRobin,
        algorithm: Algorithm::RecursiveHalvingDoubling,
        supernode_size: swnet::SUPERNODE_SIZE,
        io: None,
    };
    // AlexNet configurations (compute times from Table III throughput).
    let alex = 58_150_000;
    let a64 = model(0.68, alex).point(1024);
    let a128 = model(1.29, alex).point(1024);
    let a256 = model(2.72, alex).point(1024);
    // Paper: 409.50, 561.58, 715.45.
    assert!(
        (a64.speedup - 409.5).abs() / 409.5 < 0.25,
        "B=64 {:.0}",
        a64.speedup
    );
    assert!(
        (a128.speedup - 561.6).abs() / 561.6 < 0.25,
        "B=128 {:.0}",
        a128.speedup
    );
    assert!(
        (a256.speedup - 715.5).abs() / 715.5 < 0.25,
        "B=256 {:.0}",
        a256.speedup
    );
    // Fig. 11: comm fractions ordered by batch, ~30-60%.
    assert!(a64.comm_fraction > a128.comm_fraction && a128.comm_fraction > a256.comm_fraction);
    assert!((0.2..0.7).contains(&a64.comm_fraction));
    // ResNet-50 B=32 reaches ~928x with ~10% communication.
    let r32 = model(5.75, 25_600_000).point(1024);
    assert!(
        (r32.speedup - 928.0).abs() / 928.0 < 0.15,
        "ResNet {:.0}",
        r32.speedup
    );
    assert!(r32.comm_fraction < 0.2);
}
