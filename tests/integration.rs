//! Cross-crate integration tests: the full pipeline from the synthetic
//! dataset through the prefetcher, the four-core-group trainer, the
//! topology-aware all-reduce and the solver, all running functionally on
//! the simulated hardware.

use sw26010::arch::CORE_GROUPS;
use sw26010::ExecMode;
use swcaffe_core::{models, SolverConfig};
use swio::{IoModel, Layout, Prefetcher, SyntheticImageNet};
use swtrain::{ChipTrainer, ClusterConfig, ClusterTrainer};

/// Dataset -> prefetch threads -> 4-CG chip trainer, end to end.
#[test]
fn full_pipeline_single_node_training() {
    let classes = 4;
    let cg_batch = 2;
    let def = models::tiny_cnn(cg_batch, classes);
    let mut trainer = ChipTrainer::new(
        &def,
        SolverConfig {
            base_lr: 0.05,
            ..Default::default()
        },
        ExecMode::Functional,
    )
    .unwrap();

    let dataset = SyntheticImageNet::new(2048);
    let io = IoModel::taihulight(Layout::paper_striped());
    let chip_batch = trainer.chip_batch();
    let prefetcher = Prefetcher::spawn(dataset, io, 1, chip_batch, 3, 16, 16, 7);

    let per_img = 3 * 16 * 16;
    let mut first = f32::NAN;
    let mut last = f32::NAN;
    for iter in 0..12 {
        let batch = prefetcher.next().expect("dataset read failed");
        assert!(batch.io_time.seconds() > 0.0);
        let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..CORE_GROUPS)
            .map(|cg| {
                let d = batch.data[cg * cg_batch * per_img..][..cg_batch * per_img].to_vec();
                let mut l = batch.labels[cg * cg_batch..][..cg_batch].to_vec();
                for v in l.iter_mut() {
                    *v %= classes as f32;
                }
                (d, l)
            })
            .collect();
        let r = trainer.iteration(Some(&inputs));
        assert!(r.loss.is_finite(), "loss diverged at iter {iter}");
        if iter == 0 {
            first = r.loss;
        }
        last = r.loss;
    }
    // Random-sampled batches: be lenient, but learning must be visible.
    assert!(last < first, "no learning: {first} -> {last}");
}

/// Timing-only cluster run touches every subsystem's cost model and
/// produces a coherent breakdown.
#[test]
fn timing_cluster_breakdown_is_coherent() {
    let def = models::tiny_cnn(8, 10);
    let mut cluster = ClusterTrainer::new(
        &def,
        SolverConfig::default(),
        ClusterConfig {
            supernode_size: 8,
            ..ClusterConfig::swcaffe(16)
        },
        ExecMode::TimingOnly,
    )
    .unwrap();
    let r = cluster.iteration(None);
    let total = r.total().seconds();
    assert!(total > 0.0 && total.is_finite());
    let parts = r.compute.seconds() + r.comm.seconds() + r.intra.seconds() + r.update.seconds();
    assert!(
        (parts - total).abs() < 1e-12,
        "breakdown does not sum to total"
    );
    assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
}

/// The simulator's central invariant, at the largest assembled scope:
/// a functional chip iteration charges the same simulated time as the
/// timing-only path.
#[test]
fn chip_iteration_mode_invariance() {
    let classes = 3;
    let cg_batch = 2;
    let def = models::tiny_cnn(cg_batch, classes);

    let time_of = |mode: ExecMode| -> (f64, f64) {
        let mut trainer = ChipTrainer::new(&def, SolverConfig::default(), mode).unwrap();
        let inputs: Option<Vec<(Vec<f32>, Vec<f32>)>> = mode.is_functional().then(|| {
            (0..CORE_GROUPS)
                .map(|cg| {
                    let data: Vec<f32> = (0..cg_batch * 3 * 16 * 16)
                        .map(|i| ((i * 13 + cg * 7) % 19) as f32 * 0.1 - 0.9)
                        .collect();
                    let labels: Vec<f32> =
                        (0..cg_batch).map(|b| ((b + cg) % classes) as f32).collect();
                    (data, labels)
                })
                .collect()
        });
        let r = trainer.iteration(inputs.as_deref());
        (
            r.compute.seconds(),
            ChipTrainer::iteration_time(&r).seconds(),
        )
    };

    let (fc, ft) = time_of(ExecMode::Functional);
    let (tc, tt) = time_of(ExecMode::TimingOnly);
    let rel_c = (fc - tc).abs() / fc;
    let rel_t = (ft - tt).abs() / ft;
    assert!(rel_c < 0.12, "compute: functional {fc} vs timing {tc}");
    assert!(rel_t < 0.12, "total: functional {ft} vs timing {tt}");
}

/// NetDef JSON round-trips through disk and still trains (the swCaffe
/// "prototxt" path).
#[test]
fn netdef_roundtrips_through_disk() {
    let def = models::vgg16(4);
    let json = def.to_json();
    let path = std::env::temp_dir().join("swcaffe_vgg16_test.json");
    std::fs::write(&path, &json).unwrap();
    let loaded = swcaffe_core::NetDef::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    let net = swcaffe_core::Net::from_def(&loaded, false).unwrap();
    assert_eq!(
        net.param_len(),
        swcaffe_core::Net::from_def(&def, false)
            .unwrap()
            .param_len()
    );
}

/// All five model-zoo networks run a full timing-mode iteration through
/// the whole-chip trainer.
#[test]
fn model_zoo_runs_whole_chip() {
    let defs = vec![
        models::alexnet_bn(8),
        models::vgg16(4),
        models::vgg19(4),
        models::resnet50(4),
        models::googlenet(4),
    ];
    for def in defs {
        let name = def.name.clone();
        let mut trainer =
            ChipTrainer::new(&def, SolverConfig::default(), ExecMode::TimingOnly).unwrap();
        let r = trainer.iteration(None);
        let t = ChipTrainer::iteration_time(&r).seconds();
        assert!(t > 0.0 && t.is_finite(), "{name}: bad iteration time {t}");
        assert!(
            r.compute.seconds() > r.update.seconds(),
            "{name}: update dominates compute, implausible"
        );
    }
}
