//! Distributed synchronous SGD across simulated TaihuLight nodes
//! (Sec. V): every node runs Algorithm 1 on its four core groups, packed
//! gradients travel through the topology-aware all-reduce, and the data
//! pipeline prefetches mini-batches from the striped shared filesystem.
//!
//! The functional 4-node run really trains (gradients are exact — the
//! tests prove distributed == centralised); the scaling projection then
//! extends the same configuration to 1024 nodes.
//!
//! Run with: `cargo run --release -p swcaffe-bench --example distributed_training`

use sw26010::ExecMode;
use swcaffe_core::{models, SolverConfig};
use swio::{IoModel, Layout, Prefetcher, SyntheticImageNet};
use swnet::{Algorithm, NetParams, RankMap, ReduceEngine};
use swtrain::{ClusterConfig, ClusterTrainer, ScalingModel};

fn main() {
    let nodes = 4;
    let classes = 5;
    let cg_batch = 2; // per core group; chip batch = 8, job batch = 32
    let def = models::tiny_cnn(cg_batch, classes);

    let mut cluster = ClusterTrainer::new(
        &def,
        SolverConfig {
            base_lr: 0.05,
            ..Default::default()
        },
        ClusterConfig {
            supernode_size: 2,
            ..ClusterConfig::swcaffe(nodes)
        },
        ExecMode::Functional,
    )
    .expect("valid net");

    // One prefetch pipeline per node against the striped filesystem.
    let dataset = SyntheticImageNet::new(10_000);
    let io = IoModel::taihulight(Layout::paper_striped());
    let prefetchers: Vec<Prefetcher> = (0..nodes)
        .map(|n| Prefetcher::spawn(dataset, io, nodes, 4 * cg_batch, 3, 16, 16, n as u64 * 1000))
        .collect();

    println!(
        "training {} nodes x chip-batch {} = job batch {}:",
        nodes,
        4 * cg_batch,
        nodes * 4 * cg_batch
    );
    for iter in 0..10 {
        // Pull one chip mini-batch per node and slice it across the CGs.
        let per_img = 3 * 16 * 16;
        let inputs: Vec<Vec<(Vec<f32>, Vec<f32>)>> = prefetchers
            .iter()
            .map(|p| {
                let batch = p.next().expect("dataset read failed");
                (0..4)
                    .map(|cg| {
                        let d =
                            batch.data[cg * cg_batch * per_img..][..cg_batch * per_img].to_vec();
                        let mut l = batch.labels[cg * cg_batch..][..cg_batch].to_vec();
                        for v in l.iter_mut() {
                            *v %= classes as f32;
                        }
                        (d, l)
                    })
                    .collect()
            })
            .collect();
        let r = cluster.iteration(Some(&inputs));
        println!(
            "  iter {iter}: loss {:.4}  (compute {:.2} ms, all-reduce {:.2} ms, comm share {:.1}%)",
            r.loss,
            r.compute.seconds() * 1e3,
            r.comm.seconds() * 1e3,
            100.0 * r.comm_fraction()
        );
    }

    // Project the same recipe to production scale for AlexNet.
    println!("\nscaling projection, AlexNet B=256 (Fig. 10/11 configuration):");
    let model = ScalingModel {
        node_time: sw26010::SimTime::from_seconds(2.7),
        param_elems: 58_150_000,
        net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
        rank_map: RankMap::RoundRobin,
        algorithm: Algorithm::RecursiveHalvingDoubling,
        supernode_size: swnet::SUPERNODE_SIZE,
        io: Some((io, 192 << 20)),
    };
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>9}",
        "nodes", "iter (s)", "speedup", "comm %", "io stall"
    );
    for p in model.curve(1024) {
        println!(
            "{:>7} {:>10.3} {:>10.1} {:>10.1} {:>9.3}",
            p.nodes,
            p.iter_time.seconds(),
            p.speedup,
            100.0 * p.comm_fraction,
            p.io_stall.seconds()
        );
    }
}
