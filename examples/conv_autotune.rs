//! The mixed convolution strategy in action (Sec. VI-A): swCaffe runs
//! both convolution plans for the first training iterations, measures
//! them, and locks in the faster one per layer — reproduced here with the
//! simulator as the measurement device.
//!
//! Run with: `cargo run --release -p swcaffe-bench --example conv_autotune`

use sw26010::{CoreGroup, ExecMode};
use swdnn::conv::{AutoTuner, Strategy};
use swdnn::{conv_explicit, conv_implicit, ConvShape};

fn measure(cg: &mut CoreGroup, shape: &ConvShape, s: Strategy) -> sw26010::SimTime {
    match s {
        Strategy::Explicit => conv_explicit::forward(cg, shape, None).elapsed,
        Strategy::Implicit => conv_implicit::forward(cg, shape, None).elapsed,
    }
}

fn main() {
    let layers = [
        ("conv1_1", 3usize, 64usize, 224usize),
        ("conv1_2", 64, 64, 224),
        ("conv3_1", 128, 256, 56),
        ("conv5_1", 512, 512, 14),
    ];
    let mut cg = CoreGroup::new(ExecMode::TimingOnly);
    println!("online autotuning of VGG-16 layers, batch 128 (2 trial iterations each):");
    for (name, ni, no, hw) in layers {
        let shape = ConvShape {
            batch: 128,
            in_c: ni,
            in_h: hw,
            in_w: hw,
            out_c: no,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut tuner = AutoTuner::new(2, conv_implicit::supports_forward(&shape));
        let mut iters = 0;
        while tuner.locked().is_none() {
            let s = tuner.next_strategy();
            let elapsed = measure(&mut cg, &shape, s);
            tuner.record(s, elapsed);
            iters += 1;
        }
        let choice = tuner.locked().unwrap();
        let t = measure(&mut cg, &shape, choice);
        println!(
            "  {name}: {ni:>3} -> {no:>3} ch @ {hw:>3}px  =>  {:?} after {iters} trials \
             ({:.2} s/iteration forward)",
            choice,
            t.seconds(),
        );
    }
}
