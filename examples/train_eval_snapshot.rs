//! The full practitioner workflow: train with the 4-core-group SSGD of
//! Algorithm 1, evaluate in inference mode (running BN statistics,
//! dropout off), snapshot the weights to disk, and restore them into a
//! fresh network — the swCaffe equivalent of prototxt + caffemodel.
//!
//! Run with: `cargo run --release -p swcaffe-bench --example train_eval_snapshot`

use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{models, snapshot, Net, Phase, SolverConfig};
use swtrain::{evaluate, ChipTrainer};

fn make_batch(cg_batch: usize, classes: usize, seed: usize) -> (Vec<f32>, Vec<f32>) {
    let img = 3 * 16 * 16;
    let mut data = vec![0.0f32; cg_batch * img];
    let mut labels = vec![0.0f32; cg_batch];
    for b in 0..cg_batch {
        let class = (b + seed) % classes;
        labels[b] = class as f32;
        for i in 0..img {
            let noise = (((b * 131 + i * 31 + seed * 13) % 89) as f32 / 89.0 - 0.5) * 0.2;
            let stripe = (i * classes / img) == class;
            data[b * img + i] = noise + if stripe { 1.0 } else { 0.0 };
        }
    }
    (data, labels)
}

fn main() {
    let classes = 4;
    let cg_batch = 2;
    let def = models::tiny_cnn(cg_batch, classes);
    let mut trainer = ChipTrainer::new(
        &def,
        SolverConfig {
            base_lr: 0.05,
            lars_trust: Some(0.02),
            ..Default::default()
        },
        ExecMode::Functional,
    )
    .expect("valid net");

    println!("{}", trainer.net().summary());

    let eval_set: Vec<(Vec<f32>, Vec<f32>)> =
        (0..6).map(|s| make_batch(cg_batch, classes, s)).collect();
    let (loss0, acc0) = evaluate(&mut trainer, &eval_set);
    println!("before training: eval loss {loss0:.4}, accuracy {acc0:.2}");

    for it in 0..25 {
        let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..4)
            .map(|cg| make_batch(cg_batch, classes, it + cg))
            .collect();
        let r = trainer.iteration(Some(&inputs));
        if it % 8 == 0 {
            println!("iter {it:>2}: train loss {:.4}", r.loss);
        }
    }
    let (loss1, acc1) = evaluate(&mut trainer, &eval_set);
    println!("after training:  eval loss {loss1:.4}, accuracy {acc1:.2}");

    // Snapshot to disk and restore into a brand-new network.
    let path = std::env::temp_dir().join("swcaffe_example_snapshot.bin");
    snapshot::save(trainer.net(), &path).expect("snapshot written");
    println!(
        "\nsnapshot: {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );

    let mut restored = Net::from_def(&def, true).expect("valid net");
    snapshot::load(&mut restored, &path).expect("snapshot read");
    std::fs::remove_file(&path).ok();

    // The restored net must reproduce the trained net's inference outputs.
    restored.set_phase(Phase::Test);
    let mut cg = CoreGroup::new(ExecMode::Functional);
    let (data, labels) = &eval_set[0];
    restored.set_input("data", data);
    restored.set_input("label", labels);
    let loss_restored = restored.forward(&mut cg);
    println!(
        "restored network eval-batch loss: {loss_restored:.4} (snapshots carry BN running stats)"
    );
}
