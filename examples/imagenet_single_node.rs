//! Single-node ImageNet training the way the paper runs it (Sec. VI-B):
//! one SW26010 processor, four core groups splitting the mini-batch
//! (Algorithm 1), timing-only mode at the paper's batch sizes.
//!
//! Prints the per-layer breakdown behind Fig. 8 plus the Table III
//! throughput for the chosen network.
//!
//! Run with:
//!   cargo run --release -p swcaffe-bench --example imagenet_single_node [alexnet|vgg16|resnet50|googlenet]

use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{models, Net, NetDef, SolverConfig};
use swtrain::ChipTrainer;

fn pick(name: &str) -> (NetDef, NetDef, usize) {
    match name {
        "alexnet" => (models::alexnet_bn(64), models::alexnet_bn(256), 256),
        "vgg16" => (models::vgg16(16), models::vgg16(64), 64),
        "resnet50" => (models::resnet50(8), models::resnet50(32), 32),
        "googlenet" => (models::googlenet(32), models::googlenet(128), 128),
        other => panic!("unknown network '{other}'"),
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "alexnet".into());
    let (cg_def, _full_def, chip_batch) = pick(&name);
    println!(
        "{name}: chip batch {chip_batch} (per core group: {})",
        chip_batch / 4
    );

    // Per-layer breakdown on one core group.
    let mut net = Net::from_def(&cg_def, false).expect("valid net");
    let mut cg = CoreGroup::new(ExecMode::TimingOnly);
    let (_, fwd) = net.forward_with_times(&mut cg);
    let bwd = net.backward_with_times(&mut cg);
    println!("\nper-layer time on one core group (ms):");
    println!("{:<20}{:>10}{:>10}", "layer", "forward", "backward");
    for (lname, t) in &fwd.entries {
        let b = bwd
            .entries
            .iter()
            .find(|(n, _)| n == lname)
            .map(|(_, t)| t.seconds())
            .unwrap_or(0.0);
        if t.seconds() + b > 1e-6 {
            println!("{:<20}{:>10.2}{:>10.2}", lname, t.seconds() * 1e3, b * 1e3);
        }
    }

    // Whole-chip iteration via Algorithm 1 (4 CGs + gradient sum + SGD).
    let mut trainer = ChipTrainer::new(&cg_def, SolverConfig::default(), ExecMode::TimingOnly)
        .expect("valid net");
    let report = trainer.iteration(None);
    let iter = ChipTrainer::iteration_time(&report);
    println!("\nwhole-chip iteration:");
    println!(
        "  compute (slowest CG):   {:.3} s",
        report.compute.seconds()
    );
    println!("  intra-chip gather/bcast:{:.3} s", report.intra.seconds());
    println!("  SGD update:             {:.3} s", report.update.seconds());
    println!("  total:                  {:.3} s", iter.seconds());
    println!(
        "  throughput:             {:.2} img/s (Table III, SW column)",
        chip_batch as f64 / iter.seconds()
    );
    println!(
        "  gradient size:          {:.1} MB",
        trainer.param_bytes() as f64 / 1e6
    );
}
