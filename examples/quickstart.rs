//! Quickstart: build a small CNN with the swCaffe API, train it
//! functionally on the simulated SW26010 core group, and inspect both the
//! learning curve and the hardware counters the simulator collected.
//!
//! Run with: `cargo run --release -p swcaffe-bench --example quickstart`

use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{models, Net, SgdSolver, SolverConfig};
use swio::SyntheticImageNet;

fn main() {
    // A conv-bn-relu-pool x2 + fc classifier on 16x16 images, 10 classes.
    let classes = 4;
    let batch = 8;
    let def = models::tiny_cnn(batch, classes);
    println!("network '{}' ({} layers):", def.name, def.layers.len());
    for l in &def.layers {
        println!("  {:<8} <- {:?}", l.name, l.bottoms);
    }

    let mut net = Net::from_def(&def, true).expect("valid net");
    println!(
        "\nparameters: {} floats ({:.1} KB)",
        net.param_len(),
        net.param_len() as f64 * 4.0 / 1024.0
    );

    // One simulated core group, functional mode: the math really runs.
    let mut cg = CoreGroup::new(ExecMode::Functional);
    let mut solver = SgdSolver::new(SolverConfig {
        base_lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        ..Default::default()
    });

    // Synthetic dataset (stands in for ImageNet; see DESIGN.md).
    let dataset = SyntheticImageNet::new(4096);
    let mut data = vec![0.0f32; batch * 3 * 16 * 16];
    let mut labels = vec![0.0f32; batch];

    println!("\ntraining:");
    for iter in 0..60 {
        // Cap labels at the model's class count for this small demo.
        dataset.fill_batch((iter % 4) as u64, batch, 3, 16, 16, &mut data, &mut labels);
        for l in labels.iter_mut() {
            *l %= classes as f32;
        }
        net.set_input("data", &data);
        net.set_input("label", &labels);
        net.zero_param_diffs();
        let loss = net.forward(&mut cg);
        net.backward(&mut cg);
        solver.step(&mut cg, &mut net);
        if iter % 10 == 0 || iter == 59 {
            let acc = net.blob("accuracy").data()[0];
            println!("  iter {iter:>3}: loss {loss:.4}  accuracy {acc:.2}");
        }
    }

    println!("\nsimulated hardware activity:");
    println!("{}", cg.stats());
    println!(
        "total simulated time: {:.3} ms  (the chip needs 26.5 flops/B to be compute-bound)",
        cg.elapsed().seconds() * 1e3
    );
}
